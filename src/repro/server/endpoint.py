"""The Endpoint: Hyper-Q's kdb+-side plugin (paper Section 3.1).

A QIPC socket server that impersonates kdb+: it performs the
``user:password<N>\\0`` handshake, reads sync/async query messages, hands
the raw query text to a per-connection handler, and ships results (or
kdb+-style error responses) back as QIPC objects.

"Hyper-Q takes over kdb+ server by listening to incoming messages on the
port used by the original kdb+ server.  Q applications run unchanged."
"""

from __future__ import annotations

import socket
import time
from typing import Callable

from repro.errors import AuthenticationError, QError, ReproError
from repro.obs import get_logger, metrics
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_error, encode_value
from repro.qipc.handshake import Authenticator, AllowAll, parse_hello, server_ack
from repro.qipc.messages import MessageType, QipcMessage, frame, read_message
from repro.qlang.qtypes import QType
from repro.qlang.values import QList, QValue, QVector
from repro.server.common import BufferedSocketReader, TcpServer

#: server-level telemetry, labelled server=qipc (the PG-wire server
#: reports the same families with server=pgwire)
ACTIVE_SESSIONS = metrics.gauge(
    "server_active_sessions", "Connections currently being served"
)
QUERIES_TOTAL = metrics.counter(
    "server_queries_total", "Queries served, by message kind"
)
ERRORS_TOTAL = metrics.counter(
    "server_errors_total", "Query errors, by exception class"
)
QUERY_SECONDS = metrics.histogram(
    "server_query_seconds", "End-to-end per-query latency at the server"
)

_log = get_logger("server.endpoint")

#: a handler receives query text and returns a QValue (or None)
QueryHandler = Callable[[str], QValue | None]

#: a handler factory builds one handler per connection (session isolation)
HandlerFactory = Callable[[], "ConnectionHandler"]


class ConnectionHandler:
    """Per-connection query processing; close() runs at disconnect."""

    def execute(self, query: str) -> QValue | None:
        raise NotImplementedError

    def close(self) -> None:
        return None


class _CallableHandler(ConnectionHandler):
    def __init__(self, fn: QueryHandler):
        self.fn = fn

    def execute(self, query: str) -> QValue | None:
        return self.fn(query)


class QipcEndpoint(TcpServer):
    """Generic QIPC server; Hyper-Q and the mini-kdb+ demo both use it."""

    def __init__(
        self,
        handler_factory: HandlerFactory,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__(host, port)
        self.handler_factory = handler_factory
        self.authenticator = authenticator or AllowAll()

    @classmethod
    def from_function(
        cls,
        fn: QueryHandler,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "QipcEndpoint":
        """Endpoint whose every connection shares one query function."""
        return cls(lambda: _CallableHandler(fn), authenticator, host, port)

    def handle(self, conn: socket.socket) -> None:
        reader = BufferedSocketReader(conn)
        hello = _read_hello(reader)
        credentials = parse_hello(hello)
        try:
            self.authenticator.authenticate(credentials)
        except AuthenticationError:
            return  # close immediately, as kdb+ does
        conn.sendall(server_ack(credentials.capability))

        handler = self.handler_factory()
        ACTIVE_SESSIONS.inc(server="qipc")
        try:
            while True:
                message = read_message(reader.recv_exact)
                started = time.perf_counter()
                try:
                    query = _extract_query(message.payload)
                    result = handler.execute(query)
                except QError as exc:
                    ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                    _log.warning(
                        "query_error", signal=exc.signal, message=str(exc)
                    )
                    payload = encode_error(exc.signal)
                    if message.msg_type == MessageType.SYNC:
                        conn.sendall(
                            frame(QipcMessage(MessageType.RESPONSE, payload))
                        )
                    continue
                except ReproError as exc:
                    ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                    _log.warning("query_error", message=str(exc))
                    if message.msg_type == MessageType.SYNC:
                        conn.sendall(
                            frame(
                                QipcMessage(
                                    MessageType.RESPONSE,
                                    encode_error(str(exc)[:200]),
                                )
                            )
                        )
                    continue
                finally:
                    QUERIES_TOTAL.inc(
                        kind=message.msg_type.name.lower(), server="qipc"
                    )
                    QUERY_SECONDS.observe(
                        time.perf_counter() - started, server="qipc"
                    )
                if message.msg_type == MessageType.SYNC:
                    payload = encode_value(
                        result if result is not None else QList([])
                    )
                    conn.sendall(
                        frame(QipcMessage(MessageType.RESPONSE, payload))
                    )
        finally:
            ACTIVE_SESSIONS.dec(server="qipc")
            try:
                handler.close()
            except Exception as exc:
                # session teardown runs backend SQL (temp-table drops,
                # promotion); a pooled/network backend failing here must
                # not kill the server's connection thread
                ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                _log.warning("handler_close_error", message=str(exc))


def _read_hello(reader: BufferedSocketReader) -> bytes:
    return reader.take_until(b"\x00", limit=1024)


def _extract_query(payload: bytes) -> str:
    """Queries arrive as char vectors (raw text), per the paper."""
    value = decode_value(payload)
    if isinstance(value, QVector) and value.qtype == QType.CHAR:
        return "".join(value.items)
    raise QError("query message must be a string", signal="type")
