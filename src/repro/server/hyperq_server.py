"""Deployable server assemblies (Figure 1 end to end).

* :class:`KdbServer` — the "before" picture: a QIPC server over the
  reference interpreter, i.e. the kdb+ a Q application originally talked
  to (serial execution, just like kdb+'s main loop).
* :class:`HyperQServer` — the "after" picture: the same QIPC surface, but
  every query runs through Hyper-Q's translation pipeline against a
  PG-compatible backend (in-process engine or a remote PG-wire server via
  the network gateway).

Because both speak identical QIPC, a Q application connects to either
without changes — the paper's central claim.
"""

from __future__ import annotations

import threading

from repro.analysis.concurrency.locks import make_lock
from repro.cache import ResultCache
from repro.config import HyperQConfig
from repro.core.backends import PooledBackend
from repro.core.metadata import BackendPort, MetadataInterface
from repro.core.pipeline import TranslationCache
from repro.core.platform import DirectGateway
from repro.core.plugins import default_registry
from repro.core.scopes import ServerScope
from repro.core.session import HyperQSession
from repro.obs import configure as obs_configure
from repro.obs import metrics
from repro.qipc.handshake import Authenticator
from repro.qlang.interp import Interpreter
from repro.qlang.values import QValue
from repro.server.endpoint import ConnectionHandler, QipcEndpoint
from repro.sqlengine.engine import Engine
from repro.wlm import Deadline, WorkloadManager

#: concurrently executing Hyper-Q queries (the "configurable
#: concurrency" knob made observable)
ACTIVE_QUERIES = metrics.gauge(
    "hyperq_active_queries", "Queries executing inside HyperQServer"
)


class KdbServer(QipcEndpoint):
    """QIPC over the reference interpreter; one global interpreter state
    and a lock, matching kdb+'s single-threaded main loop."""

    def __init__(
        self,
        interpreter: Interpreter | None = None,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.interpreter = interpreter or Interpreter()
        self._lock = make_lock("server.kdb_interp")

        def handler_factory() -> ConnectionHandler:
            return _KdbHandler(self)

        super().__init__(handler_factory, authenticator, host, port)

    def run_query(self, query: str) -> QValue | None:
        with self._lock:
            return self.interpreter.eval_text(query)


class _KdbHandler(ConnectionHandler):
    def __init__(self, server: KdbServer):
        self.server = server

    def execute(self, query: str) -> QValue | None:
        return self.server.run_query(query)


class HyperQServer(QipcEndpoint):
    """QIPC in front, PG-compatible SQL behind: the Hyper-Q deployment.

    Each connection gets its own :class:`HyperQSession` (local/session
    scopes per Figure 3) over a shared server scope and backend.
    """

    def __init__(
        self,
        backend: BackendPort | None = None,
        engine: Engine | None = None,
        config: HyperQConfig | None = None,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.config = config or HyperQConfig()
        obs_configure(self.config.observability)
        if backend is None:
            engine = engine or Engine()
            backend = DirectGateway(engine)
        # the workload manager is server-wide: all sessions share one
        # admission domain, one retry budget and one breaker per backend,
        # and the backend is wrapped before the MDI so metadata reads get
        # the same recovery policies as query execution (docs/WLM.md)
        self.wlm = (
            WorkloadManager(self.config.wlm)
            if self.config.wlm.enabled
            else None
        )
        if self.wlm is not None:
            backend = self.wlm.wrap_backend(backend)
        self.backend = backend
        self.engine = engine
        self.server_scope = ServerScope()
        self.mdi = MetadataInterface(backend, self.config.metadata_cache)
        # repeat statements across all sessions hit one shared cache
        self.translation_cache = TranslationCache(self.config.translation_cache)
        # one shared result cache: dashboards re-issuing the same reads
        # from different connections share entries (docs/CACHING.md)
        self.result_cache = ResultCache(self.config.result_cache)
        # "configurable concurrency" (paper Section 5): kdb+ is strictly
        # serial; Hyper-Q lets the operator pick the concurrency level
        self._concurrency = (
            threading.BoundedSemaphore(self.config.max_concurrency)
            if self.config.max_concurrency > 0
            else None
        )
        # hq: guarded-by(self._stats_lock) — written by every worker
        self.active_queries = 0
        # hq: guarded-by(self._stats_lock) — read-modify-write of the max
        self.peak_concurrency = 0
        self._stats_lock = make_lock("server.hyperq_stats")

        def handler_factory() -> ConnectionHandler:
            return _HyperQHandler(self)

        super().__init__(
            handler_factory, authenticator, host, port,
            server_config=self.config.server,
        )

    def request_deadline(self) -> Deadline | None:
        """The WLM default deadline, armed as a reactor timer per query.

        The worker installs the same :class:`Deadline` in a
        ``request_scope`` before executing, so the session's cooperative
        checks and the loop timer agree on one expiry; whichever notices
        first answers the client (docs/WLM.md, docs/ARCHITECTURE.md).
        """
        if self.wlm is None:
            return None
        default = self.config.wlm.default_deadline
        if default > 0:
            return Deadline.after(default)
        return None

    def run_with_concurrency(self, fn):
        if self._concurrency is not None:
            with self._concurrency:
                return self._tracked(fn)
        return self._tracked(fn)

    def _tracked(self, fn):
        with self._stats_lock:
            self.active_queries += 1
            self.peak_concurrency = max(self.peak_concurrency, self.active_queries)
        ACTIVE_QUERIES.inc()
        try:
            return fn()
        finally:
            ACTIVE_QUERIES.dec()
            with self._stats_lock:
                self.active_queries -= 1

    def create_session(self) -> HyperQSession:
        return HyperQSession(
            self.backend,
            server_scope=self.server_scope,
            config=self.config,
            mdi=self.mdi,
            translation_cache=self.translation_cache,
            wlm=self.wlm,
            result_cache=self.result_cache,
        )

    @classmethod
    def pooled(
        cls,
        connection_factory,
        config: HyperQConfig | None = None,
        **kwargs,
    ) -> "HyperQServer":
        """A server whose sessions share a bounded connection pool.

        ``connection_factory`` builds one connected
        :class:`~repro.core.backends.ExecutionBackend` (typically a
        :class:`~repro.server.gateway.NetworkGateway`); pool sizing comes
        from ``config.backend_pool``.
        """
        config = config or HyperQConfig()
        pool = PooledBackend(
            connection_factory,
            size=config.backend_pool.size,
            checkout_timeout=config.backend_pool.checkout_timeout,
        )
        return cls(backend=pool, config=config, **kwargs)


class _HyperQHandler(ConnectionHandler):
    def __init__(self, server: HyperQServer):
        self.server = server
        self.session = server.create_session()

    def execute(self, query: str) -> QValue | None:
        return self.server.run_with_concurrency(
            lambda: self.session.execute(query)
        )

    def close(self) -> None:
        self.session.close()


# plugin registrations: the kdb endpoint and the PG gateways
default_registry.register(
    "kdb", "*", "endpoint", lambda *a, **kw: QipcEndpoint(*a, **kw)
)
default_registry.register(
    "postgres", "*", "gateway",
    lambda *a, **kw: _make_network_gateway(*a, **kw),
)
default_registry.register(
    "postgres", "in-process", "gateway", lambda engine: DirectGateway(engine)
)


def _make_network_gateway(*args, **kwargs):
    from repro.server.gateway import NetworkGateway

    return NetworkGateway(*args, **kwargs)
