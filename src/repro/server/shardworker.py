"""Shard worker entrypoint: one partition engine in one child process.

Spawned by :mod:`repro.core.procshard` as
``python -m repro.server.shardworker --shard N``.  The worker hosts a
single partition :class:`~repro.sqlengine.engine.Engine` behind a
minimal :class:`~repro.server.endpoint.QipcEndpoint` bound to an
ephemeral port, prints ``HQ-SHARD-READY <port>`` on stdout once the
endpoint accepts connections (the coordinator's handshake barrier), and
then serves until a ``shutdown`` op arrives.

Requests are JSON op envelopes carried as QIPC char-vector queries:

``{"op": "sql", "sql": ..., "deadline_ms": ...}``
    execute a statement; the optional remaining-budget field re-arms
    the coordinator's request deadline inside this process, so a
    worker-side overrun raises the same ``DeadlineExceededError`` a
    thread-mode shard would;
``{"op": "load", "table": ..., "blob": ..., "seq": ...}``
    (re)create a partition table from a pickled column/row payload;
    ``seq`` > 0 appends a continuation chunk (wide partitions are split
    coordinator-side so no frame nears the endpoint's message limit);
``{"op": "ping"}`` / ``{"op": "version"}``
    liveness and catalog-version probes;
``{"op": "shutdown"}``
    graceful drain (sent async by the coordinator's ``close()``).

Replies use the tagged envelopes from :mod:`repro.core.procshard`, and
every exception is caught *here* and encoded with its class name and
SQLSTATE — the endpoint's generic error path collapses errors to a
signal string, which would defeat the coordinator's transient/permanent
classification.

This file and ``procshard.py`` are the only modules allowed to touch
process-spawning APIs (lint rule HQ010).
"""

from __future__ import annotations

import argparse
import json
import os
import threading

from repro.core.procshard import (
    READY_PREFIX,
    encode_exception,
    encode_result,
    encode_scalar,
    unpack_load,
)
from repro.qlang.values import QValue
from repro.server.endpoint import ConnectionHandler, QipcEndpoint
from repro.sqlengine.engine import Engine
from repro.wlm.deadline import Deadline, request_scope

#: how often the serve loop re-checks that the coordinator still exists
ORPHAN_POLL_SECONDS = 1.0


class ShardWorkerHandler(ConnectionHandler):
    """Per-connection handler; the engine is shared (its reentrant lock
    serializes statements) and ``shutdown`` trips the process event."""

    def __init__(self, engine: Engine, shutdown: threading.Event):
        self.engine = engine
        self.shutdown = shutdown

    def execute(self, query: str) -> QValue | None:
        try:
            return self._dispatch(json.loads(query))
        except Exception as exc:  # noqa: HQ002 - crosses the wire as data
            return encode_exception(exc)

    def _dispatch(self, envelope: dict) -> QValue | None:
        op = envelope.get("op")
        if op == "sql":
            return self._run_sql(envelope)
        if op == "load":
            columns, rows = unpack_load(envelope["blob"])
            table = envelope["table"]
            if envelope.get("seq", 0) == 0:
                self.engine.catalog.drop(table, if_exists=True)
                self.engine.create_table_from_columns(table, columns, rows)
            else:
                # continuation chunk: wide partitions are split so no
                # single load frame nears the endpoint's message limit
                self.engine.catalog.table(table).rows.extend(
                    list(r) for r in rows
                )
            return encode_scalar("loaded")
        if op == "ping":
            return encode_scalar("pong")
        if op == "version":
            return encode_scalar(self.engine.catalog.version)
        if op == "shutdown":
            self.shutdown.set()
            return encode_scalar("bye")
        raise ValueError(f"unknown shard worker op {op!r}")

    def _run_sql(self, envelope: dict) -> QValue:
        deadline_ms = envelope.get("deadline_ms")
        if deadline_ms is not None:
            deadline = Deadline.after(max(deadline_ms, 0.0) / 1000.0)
            with request_scope(deadline):
                deadline.check("shardworker.execute")
                result = self.engine.execute(envelope["sql"])
        else:
            result = self.engine.execute(envelope["sql"])
        return encode_result(result)


def serve(shard_index: int, parent_pid: int | None = None) -> None:
    """Run the worker until the coordinator sends ``shutdown`` — or
    disappears: a coordinator that dies without draining (SIGKILL, OOM)
    re-parents this process, and an orphaned shard must exit rather
    than hold its port and any inherited pipes open forever.

    ``parent_pid`` is the coordinator's declared pid (passed on the
    command line); comparing it against the live ``getppid`` also
    covers the boot race where the coordinator dies before this
    process gets as far as sampling its parent."""
    engine = Engine()
    shutdown = threading.Event()
    parent = parent_pid if parent_pid is not None else os.getppid()
    server = QipcEndpoint(
        lambda: ShardWorkerHandler(engine, shutdown), port=0
    )
    server.start()
    try:
        # the handshake line the coordinator's barrier waits for
        print(f"{READY_PREFIX} {server.port}", flush=True)
        while not shutdown.wait(ORPHAN_POLL_SECONDS):
            if os.getppid() != parent:
                break
    finally:
        server.stop()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shard", type=int, required=True, help="shard index (for logs)"
    )
    parser.add_argument(
        "--parent", type=int, default=None,
        help="coordinator pid; the worker exits if reparented away",
    )
    args = parser.parse_args(argv)
    serve(args.shard, parent_pid=args.parent)


if __name__ == "__main__":
    main()
