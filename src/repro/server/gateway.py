"""The Gateway: Hyper-Q's PG-side plugin (paper Section 3.1).

``NetworkGateway`` opens a PG v3 connection, drives start-up and
authentication, sends SQL, and accumulates RowDescription/DataRow traffic
into a columnar :class:`~repro.sqlengine.executor.ResultSet` — "Hyper-Q
buffers the query result messages received from the PG database until an
end-of-content message is received" (Section 4.2).

The result path is streaming and vectorized: frames come off a
:class:`~repro.pgwire.codec.PgFrameStream` (many frames sliced out of
each ``recv`` chunk), RowDescription resolves one type-specialized text
decoder per column, and DataRow cells are appended straight into
per-column lists — no per-cell type dispatch, no row-tuple
intermediates, and no transpose later in ``pivot_result``.
"""

from __future__ import annotations

import socket

from repro.analysis.concurrency.locks import make_lock
from repro.core.backends import ExecutionBackend
from repro.errors import (
    AuthenticationError,
    BackendSqlError,
    DeadlineExceededError,
    ProtocolError,
)
from repro.pgwire import kernels
from repro.pgwire import messages as m
from repro.pgwire.auth import AuthContext, AuthMechanism, TrustAuth
from repro.pgwire.codec import PgFrameStream, decode_backend, encode_frontend
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType, text_decoder
from repro.wlm.deadline import DEADLINE_EXCEEDED, current_deadline

#: reverse OID -> SqlType mapping for result metadata
_OID_TYPES = {
    16: SqlType.BOOLEAN,
    20: SqlType.BIGINT,
    21: SqlType.SMALLINT,
    23: SqlType.INTEGER,
    25: SqlType.TEXT,
    700: SqlType.REAL,
    701: SqlType.DOUBLE,
    1042: SqlType.CHAR,
    1043: SqlType.VARCHAR,
    1082: SqlType.DATE,
    1083: SqlType.TIME,
    1114: SqlType.TIMESTAMP,
    1186: SqlType.INTERVAL,
    1700: SqlType.NUMERIC,
    2950: SqlType.UUID,
}


def collect_result(stream: PgFrameStream) -> tuple[
    list[Column], list[list], str, "m.ErrorResponse | None", bool
]:
    """Drain one statement's response into columnar form.

    Reads frames until ReadyForQuery and returns
    ``(columns, column_data, command_tag, error, saw_ddl)``.  DataRow
    frames bypass message-object construction entirely: the raw body is
    split into cells and each cell appended through the column's resolved
    decoder.  This is the production result path — the data-plane
    benchmark drives this exact function over a canned byte stream.
    """
    columns: list[Column] = []
    decoders: list = []
    column_data: list[list] = []
    command = ""
    error: m.ErrorResponse | None = None
    saw_ddl = False
    while True:
        type_byte, body = stream.read_frame()
        if type_byte == b"D":  # hot path: one frame per result row
            cells = kernels.unpack_data_row(body)
            for cell, out, decode in zip(cells, column_data, decoders):
                out.append(None if cell is None else decode(cell))
            continue
        message = decode_backend(type_byte, body)
        if isinstance(message, m.RowDescription):
            columns = [
                Column(f.name, _OID_TYPES.get(f.type_oid, SqlType.TEXT))
                for f in message.fields
            ]
            decoders = [text_decoder(c.sql_type) for c in columns]
            column_data = [[] for __ in columns]
        elif isinstance(message, m.CommandComplete):
            command = message.tag
            if _is_ddl(command):
                saw_ddl = True
        elif isinstance(message, m.EmptyQueryResponse):
            command = "EMPTY"
        elif isinstance(message, m.ErrorResponse):
            error = message
        elif isinstance(message, m.ReadyForQuery):
            break
    stream.flush()  # end of statement: publish batched wire telemetry
    return columns, column_data, command, error, saw_ddl


class NetworkGateway(ExecutionBackend):
    """An execution backend over a live PG v3 connection.

    Timeouts are configurable (``WlmConfig.gateway_timeouts()`` plumbs
    them from :class:`~repro.config.HyperQConfig`): ``connect_timeout``
    bounds connection establishment, ``read_timeout`` every blocking
    read.  When a request :class:`~repro.wlm.deadline.Deadline` is
    active, the remaining time additionally caps every read — a stalled
    backend read cannot outlive its request.  A deadline that fires
    mid-statement closes the connection (the unread result would poison
    the next statement) and surfaces as
    :class:`~repro.errors.DeadlineExceededError`; a pool replaces the
    dead connection on the next checkout.
    """

    name = "pg-wire"

    def __init__(
        self,
        host: str,
        port: int,
        user: str = "hyperq",
        password: str = "",
        database: str = "analytics",
        auth: AuthMechanism | None = None,
        connect_timeout: float = 10.0,
        read_timeout: float | None = None,
    ):
        self.host = host
        self.port = port
        self.user = user
        self.password = password
        self.database = database
        self.auth = auth or TrustAuth()
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._sock: socket.socket | None = None
        self._stream: PgFrameStream | None = None
        self._lock = make_lock("server.gateway")
        self._catalog_version = 0

    # -- connection ------------------------------------------------------------

    def connect(self) -> "NetworkGateway":
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.read_timeout)
        self._sock = sock
        self._stream = PgFrameStream.over(sock)
        self._send(m.StartupMessage(self.user, self.database))
        ctx = AuthContext(self.user)
        while True:
            message = self._read()
            if isinstance(message, m.AuthenticationRequest):
                if message.code == 0:
                    break
                ctx.salt = message.salt
                response = self.auth.client_response(ctx, self.password)
                self._send(m.PasswordMessage(response))
                continue
            if isinstance(message, m.ErrorResponse):
                raise AuthenticationError(message.message)
            raise ProtocolError(
                f"unexpected message during start-up: {type(message).__name__}"
            )
        # drain ParameterStatus / BackendKeyData until ReadyForQuery
        while True:
            message = self._read()
            if isinstance(message, m.ReadyForQuery):
                self._stream.flush()
                return self
            if isinstance(message, m.ErrorResponse):
                raise ProtocolError(message.message)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._send(m.Terminate())
            except OSError:
                pass
            self._sock.close()
            self._sock = None
            self._stream = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info):
        self.close()

    # -- BackendPort -------------------------------------------------------------

    def run_sql(self, sql: str) -> ResultSet:
        if self._sock is None or self._stream is None:
            raise ProtocolError("gateway is not connected")
        with self._lock:
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("gateway.send")
                self._sock.settimeout(deadline.cap(self.read_timeout))
            try:
                self._send(m.Query(sql))
                return self._collect_result(sql)
            except (socket.timeout, TimeoutError):
                # a timed-out read leaves an unread result on the wire:
                # the connection is dirty either way, so close it and let
                # the pool replace it on the next checkout
                self.close()
                if deadline is not None and deadline.expired:
                    DEADLINE_EXCEEDED.inc(what="gateway.read")
                    raise DeadlineExceededError(
                        "request deadline exceeded at gateway.read "
                        "(socket timeout on backend read)",
                        what="gateway.read",
                    ) from None
                raise
            finally:
                if self._sock is not None and deadline is not None:
                    self._sock.settimeout(self.read_timeout)

    def catalog_version(self) -> int:
        # DDL through this gateway bumps a local counter; remote DDL by
        # other clients is covered by the TTL policy
        return self._catalog_version

    def ping(self) -> bool:
        """Cheap liveness probe (socket-level; the pool calls this at
        checkout, and transport errors mid-statement catch the rest)."""
        return self._sock is not None

    # -- internals ----------------------------------------------------------------

    def _send(self, message: m.FrontendMessage) -> None:
        assert self._sock is not None
        self._sock.sendall(encode_frontend(message))

    def _read(self) -> m.BackendMessage:
        assert self._stream is not None
        return self._stream.read_message(decode_backend)

    def _collect_result(self, sql: str) -> ResultSet:
        assert self._stream is not None
        columns, column_data, command, error, saw_ddl = collect_result(
            self._stream
        )
        if saw_ddl:
            self._catalog_version += 1
        if error is not None:
            # surface the backend's ErrorResponse details (SQLSTATE code
            # + message), not a generic failure
            raise BackendSqlError(
                error.message, code=error.code, severity=error.severity
            )
        return ResultSet.from_columns(
            columns, column_data, command=command or "SELECT"
        )


def _is_ddl(tag: str) -> bool:
    head = tag.split(" ", 1)[0].upper()
    return head in ("CREATE", "DROP", "ALTER", "TRUNCATE")
