"""QIPC client library — what a Q application uses to talk to a server.

Works identically against a real kdb+-style server (the mini-kdb+ demo in
:mod:`repro.server.hyperq_server`) and against Hyper-Q, which is the whole
point of the paper: the application cannot tell the difference.
"""

from __future__ import annotations

import socket

from repro.analysis.concurrency.locks import make_lock
from repro.errors import AuthenticationError, ProtocolError
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_value
from repro.qipc.handshake import Credentials, client_hello
from repro.qipc.messages import MessageType, QipcMessage, frame, read_message
from repro.qlang.qtypes import QType
from repro.qlang.values import QValue, QVector
from repro.server.common import BufferedSocketReader


class QConnection:
    """A synchronous QIPC client connection."""

    def __init__(
        self,
        host: str,
        port: int,
        username: str = "user",
        password: str = "",
        connect_timeout: float = 10.0,
        read_timeout: float | None = None,
    ):
        self.host = host
        self.port = port
        self.credentials = Credentials(username, password)
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._sock: socket.socket | None = None
        self._reader: BufferedSocketReader | None = None
        self._lock = make_lock("server.qconnection")

    def connect(self) -> "QConnection":
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.sendall(client_hello(self.credentials))
        ack = sock.recv(1)
        if not ack:
            sock.close()
            raise AuthenticationError(
                f"server at {self.host}:{self.port} rejected the credentials"
            )
        sock.settimeout(self.read_timeout)
        self._sock = sock
        self._reader = BufferedSocketReader(sock)
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
            self._reader = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info):
        self.close()

    # -- queries -----------------------------------------------------------------

    def query(self, q_text: str, timeout: float | None = None) -> QValue:
        """Synchronous query: send text, block for the response object.

        ``timeout`` caps this one exchange (seconds); the connection's
        ``read_timeout`` is restored afterwards.  On expiry the socket
        raises ``TimeoutError`` and the stream is left mid-message — the
        caller must reconnect before reusing the connection.
        """
        if self._sock is None or self._reader is None:
            raise ProtocolError("connection is not open")
        payload = encode_value(QVector(QType.CHAR, list(q_text)))
        with self._lock:
            if timeout is not None:
                self._sock.settimeout(timeout)
            try:
                self._sock.sendall(
                    frame(QipcMessage(MessageType.SYNC, payload))
                )
                response = read_message(self._reader.recv_exact)
            finally:
                if timeout is not None and self._sock is not None:
                    self._sock.settimeout(self.read_timeout)
        if response.msg_type != MessageType.RESPONSE:
            raise ProtocolError(
                f"expected a response message, got {response.msg_type.name}"
            )
        return decode_value(response.payload)

    def query_async(self, q_text: str) -> None:
        """Fire-and-forget message (QIPC async type 0)."""
        if self._sock is None:
            raise ProtocolError("connection is not open")
        payload = encode_value(QVector(QType.CHAR, list(q_text)))
        with self._lock:
            self._sock.sendall(frame(QipcMessage(MessageType.ASYNC, payload)))
