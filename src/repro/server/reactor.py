"""The connection core: a non-blocking event loop plus a worker pool.

The paper's Hyper-Q front end is built on Erlang actor FSMs precisely so
one gateway process can hold thousands of concurrent client connections
(Section 3.4).  The previous substitution here was thread-per-connection,
which caps a server at a few hundred clients; this module replaces it
with the same shape the paper describes:

* a :class:`Reactor` — one thread driving a ``selectors`` loop: it
  accepts, reads whatever the kernel has ready, drains write buffers as
  sockets allow, and fires loop *timers* (the WLM deadline mechanism in
  the async world);
* per-connection :class:`Protocol` objects — pure event handlers that
  receive bytes and produce bytes, never touching a socket (lint rule
  HQ006 enforces this); the QIPC and PG protocols drive
  :class:`repro.core.fsm.Fsm` state machines off these events;
* a bounded :class:`WorkerPool` — the *only* place blocking work is
  allowed: query execution (admission, retries, backend reads) runs
  here, so a stalled backend can never stall the accept/read loop.

Idle connections cost one registered selector key and one reusable read
buffer — no thread, no stack — which is what makes the C10k connection
scale bench (`benchmarks/bench_connection_scale.py`) hold 1k+ clients in
one process with near-flat memory.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable

from repro.analysis.concurrency.locks import make_lock
from repro.config import ServerConfig
from repro.obs import get_logger, metrics

#: connections currently registered with a server's reactor, by server
#: kind (qipc / pgwire) — the live C10k gauge
CONNECTIONS_OPEN = metrics.gauge(
    "server_connections_open", "Connections registered with the event loop"
)
#: how late loop timers fire versus their schedule; a loaded or blocked
#: loop shows up here long before clients notice
LOOP_LAG_MS = metrics.histogram(
    "server_loop_lag_ms",
    "Milliseconds between a timer's schedule and its actual firing",
    buckets=(0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0),
)
#: jobs waiting for a worker thread (queries the loop has parsed but the
#: pool has not started)
WORKER_QUEUE_DEPTH = metrics.gauge(
    "server_worker_queue_depth", "Jobs queued for the worker pool"
)

_log = get_logger("server.reactor")


class TimerHandle:
    """One scheduled loop callback; ``cancel()`` is loop-thread-safe."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class Protocol:
    """Per-connection event handler; subclasses own a state machine.

    Protocols run entirely on the loop thread and communicate with it
    only through their :class:`Transport` — they never see a socket.
    Blocking work must be handed to the server's worker pool, with the
    result posted back via ``reactor.call_soon_threadsafe``.
    """

    transport: "Transport | None" = None

    def connection_made(self, transport: "Transport") -> None:
        self.transport = transport

    def data_received(self, data: bytes) -> None:
        raise NotImplementedError

    def connection_lost(self, exc: Exception | None) -> None:
        return None


class Transport:
    """One accepted connection: non-blocking reads in, buffered writes out.

    All methods are loop-thread-only; cross-thread senders go through
    ``reactor.call_soon_threadsafe``.
    """

    __slots__ = ("reactor", "sock", "protocol", "_out", "_want_write",
                 "_closing", "closed")

    def __init__(self, reactor: "Reactor", sock: socket.socket,
                 protocol: Protocol):
        self.reactor = reactor
        self.sock = sock
        self.protocol = protocol
        self._out = bytearray()
        self._want_write = False
        self._closing = False
        self.closed = False

    # -- outbound ----------------------------------------------------------

    def write(self, data: bytes) -> None:
        """Queue bytes; send immediately as far as the kernel allows."""
        if self.closed or self._closing:
            return
        if not self._out:
            try:
                sent = self.sock.send(data)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError as exc:
                self._teardown(exc)
                return
            if sent == len(data):
                return
            data = memoryview(data)[sent:]
        self._out += data
        self._update_interest()

    def close(self) -> None:
        """Close once the write buffer drains (responses flush first)."""
        if self.closed:
            return
        self._closing = True
        if not self._out:
            self._teardown(None)
        else:
            self._update_interest()

    def abort(self, exc: Exception | None = None) -> None:
        """Close immediately, discarding unwritten bytes."""
        self._teardown(exc)

    # -- loop callbacks ----------------------------------------------------

    def _on_events(self, mask: int) -> None:
        if mask & selectors.EVENT_READ and not self.closed:
            self._on_readable()
        if mask & selectors.EVENT_WRITE and not self.closed:
            self._on_writable()

    def _on_readable(self) -> None:
        try:
            data = self.sock.recv(self.reactor.recv_size)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._teardown(exc)
            return
        if not data:
            self._teardown(None)
            return
        try:
            self.protocol.data_received(data)
        except Exception as exc:
            # a protocol error on one connection (bad hello, oversized
            # frame, codec failure) drops that connection only
            _log.warning(
                "connection_error", error=type(exc).__name__,
                message=str(exc)[:200],
            )
            self._teardown(exc)

    def _on_writable(self) -> None:
        if self._out:
            try:
                sent = self.sock.send(self._out)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._teardown(exc)
                return
            del self._out[:sent]
        if not self._out:
            if self._closing:
                self._teardown(None)
            else:
                self._update_interest()

    def _update_interest(self) -> None:
        want = bool(self._out) or self._closing
        if want == self._want_write:
            return
        self._want_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        try:
            self.reactor._selector.modify(self.sock, events, self)
        except (KeyError, ValueError, OSError) as exc:
            self._teardown(exc)

    def _teardown(self, exc: Exception | None) -> None:
        if self.closed:
            return
        self.closed = True
        self.reactor._forget(self)
        try:
            self.sock.close()
        except OSError as close_exc:
            _log.warning("socket_close_error", message=str(close_exc))
        try:
            self.protocol.connection_lost(exc)
        except Exception as lost_exc:
            _log.warning(
                "connection_lost_error", error=type(lost_exc).__name__,
                message=str(lost_exc)[:200],
            )


class _Acceptor:
    """The listening socket's event handler: drains accept(2)."""

    __slots__ = ("reactor", "sock", "protocol_factory")

    def __init__(self, reactor: "Reactor", sock: socket.socket,
                 protocol_factory: Callable[[], Protocol]):
        self.reactor = reactor
        self.sock = sock
        self.protocol_factory = protocol_factory

    def _on_events(self, mask: int) -> None:
        while True:
            try:
                conn, __ = self.sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listening socket closed mid-stop
            conn.setblocking(False)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError as exc:
                _log.warning("nodelay_failed", message=str(exc))
            self.reactor._adopt(conn, self.protocol_factory())


class Reactor:
    """One event-loop thread: selector + timers + cross-thread callbacks."""

    def __init__(self, label: str = "server",
                 config: ServerConfig | None = None):
        self.label = label
        self.config = config or ServerConfig()
        self.recv_size = self.config.recv_size
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, self)
        self._lock = make_lock("server.reactor")
        self._callbacks: deque[Callable[[], None]] = deque()
        self._timers: list[TimerHandle] = []
        self._timer_seq = itertools.count()
        self._connections: set[Transport] = set()
        self._acceptors: list[_Acceptor] = []
        self._thread: threading.Thread | None = None
        self._running = threading.Event()

    # -- wiring (called before start / from the loop) ----------------------

    def add_acceptor(self, sock: socket.socket,
                     protocol_factory: Callable[[], Protocol]) -> None:
        acceptor = _Acceptor(self, sock, protocol_factory)
        self._acceptors.append(acceptor)
        self._selector.register(sock, selectors.EVENT_READ, acceptor)

    def _adopt(self, sock: socket.socket, protocol: Protocol) -> None:
        transport = Transport(self, sock, protocol)
        self._connections.add(transport)
        self._selector.register(sock, selectors.EVENT_READ, transport)
        CONNECTIONS_OPEN.inc(server=self.label)
        try:
            protocol.connection_made(transport)
        except Exception as exc:
            _log.warning(
                "connection_made_error", error=type(exc).__name__,
                message=str(exc)[:200],
            )
            transport.abort(exc)

    def _forget(self, transport: Transport) -> None:
        if transport in self._connections:
            self._connections.discard(transport)
            CONNECTIONS_OPEN.dec(server=self.label)
        try:
            self._selector.unregister(transport.sock)
        except (KeyError, ValueError):
            pass  # already unregistered (selector torn down)

    @property
    def connections_open(self) -> int:
        return len(self._connections)

    # -- cross-thread API --------------------------------------------------

    def call_soon_threadsafe(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on the loop thread as soon as possible."""
        with self._lock:
            self._callbacks.append(callback)
        self._wake()

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` on the loop thread after ``delay`` s."""
        handle = TimerHandle(
            time.monotonic() + max(delay, 0.0),
            next(self._timer_seq), callback,
        )
        # hq: allow(CC003) — O(log n) heap push, never blocks or calls out
        with self._lock:
            heapq.heappush(self._timers, handle)
        self._wake()
        return handle

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # a pending wake byte is as good as two

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._running.set()
        self._thread = threading.Thread(
            target=self._run, name=f"reactor-{self.label}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._running.clear()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=self.config.stop_join_timeout)
            self._thread = None

    def _run(self) -> None:
        self._schedule_heartbeat()
        try:
            while self._running.is_set():
                timeout = self._next_timeout()
                events = self._selector.select(timeout)
                for key, mask in events:
                    handler = key.data
                    if handler is self:
                        self._drain_wake()
                    else:
                        handler._on_events(mask)
                self._run_timers()
                self._run_callbacks()
        finally:
            self._shutdown()

    def _next_timeout(self) -> float | None:
        # hq: allow(CC003) — timer-heap peek, bounded by cancelled entries
        with self._lock:
            while self._timers and self._timers[0].cancelled:
                heapq.heappop(self._timers)
            if not self._timers:
                return None
            return max(self._timers[0].when - time.monotonic(), 0.0)

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass  # drained
        except OSError:
            pass  # wake pipe closed during stop

    def _run_timers(self) -> None:
        now = time.monotonic()
        while True:
            # hq: allow(CC003) — pops one timer per hold; callback runs unlocked
            with self._lock:
                if not self._timers or self._timers[0].when > now:
                    return
                handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            LOOP_LAG_MS.observe(
                (now - handle.when) * 1e3, server=self.label
            )
            try:
                handle.callback()
            except Exception as exc:
                _log.warning(
                    "timer_error", error=type(exc).__name__,
                    message=str(exc)[:200],
                )

    def _run_callbacks(self) -> None:
        while True:
            # hq: allow(CC003) — pops one callback per hold; runs it unlocked
            with self._lock:
                if not self._callbacks:
                    return
                callback = self._callbacks.popleft()
            try:
                callback()
            except Exception as exc:
                _log.warning(
                    "callback_error", error=type(exc).__name__,
                    message=str(exc)[:200],
                )

    def _schedule_heartbeat(self) -> None:
        """A recurring no-op timer so loop lag is sampled continuously."""
        interval = self.config.heartbeat_seconds
        if interval <= 0:
            return

        def tick() -> None:
            if self._running.is_set():
                self.call_later(interval, tick)

        self.call_later(interval, tick)

    def _shutdown(self) -> None:
        for transport in list(self._connections):
            transport.abort(None)
        for acceptor in self._acceptors:
            try:
                self._selector.unregister(acceptor.sock)
            except (KeyError, ValueError):
                pass  # never registered / already gone
            try:
                acceptor.sock.close()
            except OSError:
                pass  # already closed
        try:
            self._selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass  # selector already closed
        self._wake_r.close()
        self._wake_w.close()
        self._selector.close()


class WorkerPool:
    """Bounded threads for blocking work (the one legal place for it).

    Jobs are plain callables responsible for posting their results back
    to the loop via ``reactor.call_soon_threadsafe``; a job that raises
    is logged and never kills its worker.
    """

    _STOP = object()

    def __init__(self, size: int, label: str = "server"):
        self.label = label
        self._queue: queue.Queue = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"worker-{label}-{i}", daemon=True
            )
            for i in range(max(size, 1))
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, job: Callable[[], None]) -> None:
        self._queue.put(job)
        WORKER_QUEUE_DEPTH.set(self._queue.qsize(), server=self.label)

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            WORKER_QUEUE_DEPTH.set(self._queue.qsize(), server=self.label)
            if job is self._STOP:
                return
            try:
                job()
            except Exception as exc:
                _log.warning(
                    "worker_job_error", error=type(exc).__name__,
                    message=str(exc)[:200],
                )

    def shutdown(self, join_timeout: float) -> None:
        for __ in self._threads:
            self._queue.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout=join_timeout)


class ReactorServer:
    """Base class for event-loop servers; replaces thread-per-connection.

    Subclasses implement :meth:`build_protocol` returning one
    :class:`Protocol` per accepted connection.  The public surface
    (``start``/``stop``/``port``/``address``/context manager) matches the
    old threaded ``TcpServer`` exactly, so deployments and tests are
    unchanged.
    """

    #: metric label for this server kind (qipc / pgwire)
    label = "server"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 server_config: ServerConfig | None = None):
        self.host = host
        self._requested_port = port
        self.server_config = server_config or ServerConfig()
        self._listen_sock: socket.socket | None = None
        self.reactor: Reactor | None = None
        self.workers: WorkerPool | None = None

    @property
    def port(self) -> int:
        if self._listen_sock is None:
            raise RuntimeError("server not started")
        return self._listen_sock.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ReactorServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(self.server_config.accept_backlog)
        sock.setblocking(False)
        self._listen_sock = sock
        self.reactor = Reactor(self.label, self.server_config)
        self.workers = WorkerPool(
            self.server_config.worker_threads, self.label
        )
        self.reactor.add_acceptor(sock, self.build_protocol)
        self.reactor.start()
        return self

    def stop(self) -> None:
        if self.reactor is not None:
            self.reactor.stop()
            self.reactor = None
        if self.workers is not None:
            self.workers.shutdown(self.server_config.stop_join_timeout)
            self.workers = None
        self._listen_sock = None  # closed by the reactor's shutdown

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def build_protocol(self) -> Protocol:
        raise NotImplementedError
