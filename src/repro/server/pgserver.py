"""A PG v3 wire server wrapping the in-memory SQL engine.

This is the Greenplum stand-in: it speaks enough of the protocol for
Hyper-Q's gateway (and any simple-query PG client) — start-up with
pluggable authentication, simple query with RowDescription/DataRow
streaming, CommandComplete, ReadyForQuery, and error reporting.

Like the QIPC endpoint, every connection is an FSM-driven protocol on
the reactor: the loop thread polls complete frames out of a detached
:class:`~repro.pgwire.codec.PgFrameStream` and statement execution runs
on the worker pool, serialized across connections by ``_query_lock``
(the engine, like kdb+, executes one statement at a time).
"""

from __future__ import annotations

import itertools
import time
from collections import deque

from repro.analysis.concurrency.locks import make_lock
from repro.core.fsm import Fsm
from repro.errors import (
    AuthenticationError,
    MetadataError,
    ReproError,
    SqlCatalogError,
    SqlSyntaxError,
    SqlTypeError,
)
from repro.obs import get_logger, metrics
from repro.pgwire import messages as m
from repro.pgwire.auth import AuthContext, AuthMechanism, TrustAuth
from repro.pgwire.codec import (
    PgFrameStream,
    decode_frontend,
    encode_backend,
    encode_data_rows,
)
from repro.server.reactor import Protocol, ReactorServer
from repro.sqlengine.engine import Engine
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import render_value

#: same metric families as the QIPC endpoint, labelled server=pgwire
ACTIVE_SESSIONS = metrics.gauge(
    "server_active_sessions", "Connections currently being served"
)
QUERIES_TOTAL = metrics.counter(
    "server_queries_total", "Queries served, by message kind"
)
ERRORS_TOTAL = metrics.counter(
    "server_errors_total", "Query errors, by exception class"
)
QUERY_SECONDS = metrics.histogram(
    "server_query_seconds", "End-to-end per-query latency at the server"
)

_log = get_logger("server.pgwire")

#: engine error class -> SQLSTATE, so clients (and Hyper-Q's gateway)
#: see *why* a statement failed, not a generic XX000
_SQLSTATE_BY_ERROR = (
    (SqlSyntaxError, "42601"),  # syntax_error
    (SqlCatalogError, "42P01"),  # undefined_table (closest family)
    (SqlTypeError, "42804"),  # datatype_mismatch
    (MetadataError, "42P01"),
)


def _sqlstate_for(exc: Exception) -> str:
    for klass, code in _SQLSTATE_BY_ERROR:
        if isinstance(exc, klass):
            return code
    return "XX000"  # internal_error


class PgProtocol(Protocol):
    """One PG v3 connection as a reactor-driven state machine.

    ``startup`` (waiting for the StartupMessage) -> ``auth`` (password
    exchange, skipped under trust) -> ``ready`` <-> ``executing`` ->
    ``closed``.
    """

    def __init__(self, server: "PgWireServer"):
        self.server = server
        self.stream = PgFrameStream.detached()
        self.ctx: AuthContext | None = None
        self._inbox: deque[m.FrontendMessage] = deque()
        self._executing = False
        self._session_open = False
        fsm = Fsm("pg-conn", "startup")
        fsm.add_state("auth", on_enter=lambda f, p: self._begin_auth())
        fsm.add_state("ready", on_enter=lambda f, p: self._on_ready())
        fsm.add_state("executing")
        fsm.add_state("closed")
        fsm.add_transition("startup", "started", "auth")
        fsm.add_transition("auth", "authenticated", "ready")
        fsm.add_transition(
            "ready", "query", "executing",
            action=lambda f, sql: self._dispatch(sql),
        )
        fsm.add_transition("executing", "finished", "ready")
        for state in ("startup", "auth", "ready", "executing"):
            fsm.add_transition(state, "disconnect", "closed")
        self.fsm = fsm

    # -- loop-thread event handlers ----------------------------------------

    def data_received(self, data: bytes) -> None:
        self.stream.feed(data)
        self._pump()

    def _pump(self) -> None:
        while True:
            state = self.fsm.state
            if state == "closed" or self.transport.closed:
                return
            if state == "startup":
                startup = self.stream.poll_startup()
                if startup is None:
                    return
                self.ctx = AuthContext(startup.user)
                self.fsm.fire("started")
                continue
            pending = self.stream.poll_frame()
            if pending is None:
                return
            message = decode_frontend(*pending)
            if state == "auth":
                self._check_password(message)
                continue
            self._inbox.append(message)
            self._maybe_dispatch()

    def _begin_auth(self) -> None:
        """auth entry: trust connections pass straight through, others
        get their mechanism's challenge."""
        if self.server.auth.request_code == 0:
            self.fsm.fire("authenticated")
            return
        salt = self.server.auth.challenge(self.ctx)
        self._send(m.AuthenticationRequest(self.server.auth.request_code, salt))

    def _check_password(self, message: m.FrontendMessage) -> None:
        if not isinstance(message, m.PasswordMessage):
            self._send(m.ErrorResponse(message="expected a password message"))
            self.transport.close()
            return
        try:
            self.server.auth.verify(self.ctx, message.password)
        except AuthenticationError as exc:
            self._send(m.ErrorResponse(message=str(exc), code="28P01"))
            self.transport.close()
            return
        self.fsm.fire("authenticated")

    def _on_ready(self) -> None:
        if not self._session_open:
            # first entry: the welcome sequence ends the startup phase
            self._session_open = True
            self._send(m.AuthenticationRequest(0))
            self._send(m.ParameterStatus("server_version", "9.2-repro"))
            self._send(m.BackendKeyData(self.server.next_pid(), 0xC0FFEE))
            self._send(m.ReadyForQuery("I"))
            ACTIVE_SESSIONS.inc(server="pgwire")
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        while self._inbox and self.fsm.can_fire("query"):
            message = self._inbox.popleft()
            if isinstance(message, m.Terminate):
                self._inbox.clear()
                self.transport.close()
                return
            if not isinstance(message, m.Query):
                self._send(m.ErrorResponse(message="unsupported message"))
                self._send(m.ReadyForQuery("I"))
                continue
            self.fsm.fire("query", message.sql)

    def _dispatch(self, sql: str) -> None:
        self.server.workers.submit(lambda: self._run_query(sql))

    def _job_done(self, response: bytes, fatal: bool) -> None:
        if self.fsm.state == "closed" or self.transport.closed:
            return
        self.transport.write(response)
        if fatal:
            self.transport.close()
            return
        # fire (not can_fire-guarded): a synchronous worker completes
        # inside the dispatch transition, and the FSM's event queue is
        # exactly the re-entrance mechanism that makes that safe
        self.fsm.fire("finished")

    def connection_lost(self, exc: Exception | None) -> None:
        if self.fsm.can_fire("disconnect"):
            self.fsm.fire("disconnect")
        self.stream.flush()
        if self._session_open:
            self._session_open = False
            ACTIVE_SESSIONS.dec(server="pgwire")

    def _send(self, message: m.BackendMessage) -> None:
        self.transport.write(encode_backend(message))

    # -- worker thread -----------------------------------------------------

    def _run_query(self, sql: str) -> None:
        fatal = False
        if not sql.strip():
            response = encode_backend(m.EmptyQueryResponse()) + encode_backend(
                m.ReadyForQuery("I")
            )
        else:
            started = time.perf_counter()
            QUERIES_TOTAL.inc(kind="simple", server="pgwire")
            try:
                try:
                    # like the paper's kdb+, the engine runs serially
                    with self.server._query_lock:
                        results = self.server.engine.execute_all(sql)
                except ReproError as exc:
                    ERRORS_TOTAL.inc(
                        error=type(exc).__name__, server="pgwire"
                    )
                    _log.warning("query_error", message=str(exc))
                    response = encode_backend(
                        m.ErrorResponse(
                            message=str(exc), code=_sqlstate_for(exc)
                        )
                    ) + encode_backend(m.ReadyForQuery("I"))
                except Exception as exc:
                    ERRORS_TOTAL.inc(
                        error=type(exc).__name__, server="pgwire"
                    )
                    _log.warning(
                        "query_crash", error=type(exc).__name__,
                        message=str(exc)[:200],
                    )
                    response = encode_backend(
                        m.ErrorResponse(message="internal error")
                    )
                    fatal = True
                else:
                    # one write per statement batch: every result's
                    # messages plus the trailing ReadyForQuery together
                    parts = [
                        self.server._result_bytes(result)
                        for result in results
                    ]
                    parts.append(encode_backend(m.ReadyForQuery("I")))
                    response = b"".join(parts)
            finally:
                QUERY_SECONDS.observe(
                    time.perf_counter() - started, server="pgwire"
                )
        self.transport.reactor.call_soon_threadsafe(
            lambda: self._job_done(response, fatal)
        )


class PgWireServer(ReactorServer):
    """Serves the engine over PG v3; one session per connection."""

    label = "pgwire"

    def __init__(
        self,
        engine: Engine | None = None,
        auth: AuthMechanism | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        server_config=None,
    ):
        super().__init__(host, port, server_config)
        self.engine = engine or Engine()
        self.auth = auth or TrustAuth()
        # like the paper's kdb+, requests are executed serially
        self._query_lock = make_lock("server.pg_query")
        self._next_pid = itertools.count(1000)

    def build_protocol(self) -> PgProtocol:
        return PgProtocol(self)

    def next_pid(self) -> int:
        # called on the reactor thread (_on_ready -> BackendKeyData);
        # a count step is a single GIL-atomic op, so no lock is held
        # on the event loop (CC003)
        return next(self._next_pid)

    def _result_bytes(self, result: ResultSet) -> bytes:
        if result.columns:
            fields = [
                m.FieldDescription(
                    column.name,
                    m.TYPE_OIDS.get(column.sql_type.value, 25),
                )
                for column in result.columns
            ]
            column_types = [column.sql_type for column in result.columns]
            # the PG side of Figure 5: one DataRow message per row, all
            # framed in one batched pass
            row_cells = [
                [
                    None
                    if value is None
                    else render_value(value, sql_type).encode("utf-8")
                    for value, sql_type in zip(row, column_types)
                ]
                for row in result.rows
            ]
            tag = f"SELECT {len(row_cells)}"
            return b"".join(
                (
                    encode_backend(m.RowDescription(fields)),
                    encode_data_rows(row_cells),
                    encode_backend(m.CommandComplete(tag)),
                )
            )
        return encode_backend(m.CommandComplete(result.command))
