"""A PG v3 wire server wrapping the in-memory SQL engine.

This is the Greenplum stand-in: it speaks enough of the protocol for
Hyper-Q's gateway (and any simple-query PG client) — start-up with
pluggable authentication, simple query with RowDescription/DataRow
streaming, CommandComplete, ReadyForQuery, and error reporting.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import AuthenticationError, ReproError
from repro.pgwire import messages as m
from repro.pgwire.auth import AuthContext, AuthMechanism, TrustAuth
from repro.pgwire.codec import (
    decode_frontend,
    encode_backend,
    read_message,
    read_startup,
)
from repro.server.common import TcpServer, recv_exact
from repro.sqlengine.engine import Engine
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import render_value


class PgWireServer(TcpServer):
    """Serves the engine over PG v3; one session per connection."""

    def __init__(
        self,
        engine: Engine | None = None,
        auth: AuthMechanism | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__(host, port)
        self.engine = engine or Engine()
        self.auth = auth or TrustAuth()
        # like the paper's kdb+, requests are executed serially
        self._query_lock = threading.Lock()
        self._next_pid = 1000

    def handle(self, conn: socket.socket) -> None:
        def rx(n: int) -> bytes:
            return recv_exact(conn, n)

        def send(message: m.BackendMessage) -> None:
            conn.sendall(encode_backend(message))

        startup = read_startup(rx)
        ctx = AuthContext(startup.user)
        if not self._authenticate(ctx, rx, send):
            return
        send(m.AuthenticationRequest(0))
        send(m.ParameterStatus("server_version", "9.2-repro"))
        send(m.BackendKeyData(self._next_pid, 0xC0FFEE))
        self._next_pid += 1
        send(m.ReadyForQuery("I"))

        while True:
            message = read_message(rx, decode_frontend)
            if isinstance(message, m.Terminate):
                return
            if not isinstance(message, m.Query):
                send(m.ErrorResponse(message="unsupported message"))
                send(m.ReadyForQuery("I"))
                continue
            self._run_query(message.sql, send)

    def _authenticate(self, ctx: AuthContext, rx, send) -> bool:
        if self.auth.request_code == 0:
            return True
        salt = self.auth.challenge(ctx)
        send(m.AuthenticationRequest(self.auth.request_code, salt))
        response = read_message(rx, decode_frontend)
        if not isinstance(response, m.PasswordMessage):
            send(m.ErrorResponse(message="expected a password message"))
            return False
        try:
            self.auth.verify(ctx, response.password)
        except AuthenticationError as exc:
            send(m.ErrorResponse(message=str(exc), code="28P01"))
            return False
        return True

    def _run_query(self, sql: str, send) -> None:
        if not sql.strip():
            send(m.EmptyQueryResponse())
            send(m.ReadyForQuery("I"))
            return
        try:
            with self._query_lock:
                results = self.engine.execute_all(sql)
        except ReproError as exc:
            send(m.ErrorResponse(message=str(exc)))
            send(m.ReadyForQuery("I"))
            return
        for result in results:
            self._send_result(result, send)
        send(m.ReadyForQuery("I"))

    def _send_result(self, result: ResultSet, send) -> None:
        if result.columns:
            fields = [
                m.FieldDescription(
                    column.name,
                    m.TYPE_OIDS.get(column.sql_type.value, 25),
                )
                for column in result.columns
            ]
            send(m.RowDescription(fields))
            # the PG side of Figure 5: one message per row
            for row in result.rows:
                cells: list[bytes | None] = []
                for value, column in zip(row, result.columns):
                    if value is None:
                        cells.append(None)
                    else:
                        cells.append(
                            render_value(value, column.sql_type).encode("utf-8")
                        )
                send(m.DataRow(cells))
            tag = f"SELECT {len(result.rows)}"
        else:
            tag = result.command
        send(m.CommandComplete(tag))
