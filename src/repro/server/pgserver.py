"""A PG v3 wire server wrapping the in-memory SQL engine.

This is the Greenplum stand-in: it speaks enough of the protocol for
Hyper-Q's gateway (and any simple-query PG client) — start-up with
pluggable authentication, simple query with RowDescription/DataRow
streaming, CommandComplete, ReadyForQuery, and error reporting.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import (
    AuthenticationError,
    MetadataError,
    ReproError,
    SqlCatalogError,
    SqlSyntaxError,
    SqlTypeError,
)
from repro.obs import get_logger, metrics
from repro.pgwire import messages as m
from repro.pgwire.auth import AuthContext, AuthMechanism, TrustAuth
from repro.pgwire.codec import (
    PgFrameStream,
    decode_frontend,
    encode_backend,
    encode_data_rows,
)
from repro.server.common import TcpServer
from repro.sqlengine.engine import Engine
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import render_value

#: same metric families as the QIPC endpoint, labelled server=pgwire
ACTIVE_SESSIONS = metrics.gauge(
    "server_active_sessions", "Connections currently being served"
)
QUERIES_TOTAL = metrics.counter(
    "server_queries_total", "Queries served, by message kind"
)
ERRORS_TOTAL = metrics.counter(
    "server_errors_total", "Query errors, by exception class"
)
QUERY_SECONDS = metrics.histogram(
    "server_query_seconds", "End-to-end per-query latency at the server"
)

_log = get_logger("server.pgwire")

#: engine error class -> SQLSTATE, so clients (and Hyper-Q's gateway)
#: see *why* a statement failed, not a generic XX000
_SQLSTATE_BY_ERROR = (
    (SqlSyntaxError, "42601"),  # syntax_error
    (SqlCatalogError, "42P01"),  # undefined_table (closest family)
    (SqlTypeError, "42804"),  # datatype_mismatch
    (MetadataError, "42P01"),
)


def _sqlstate_for(exc: Exception) -> str:
    for klass, code in _SQLSTATE_BY_ERROR:
        if isinstance(exc, klass):
            return code
    return "XX000"  # internal_error


class PgWireServer(TcpServer):
    """Serves the engine over PG v3; one session per connection."""

    def __init__(
        self,
        engine: Engine | None = None,
        auth: AuthMechanism | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__(host, port)
        self.engine = engine or Engine()
        self.auth = auth or TrustAuth()
        # like the paper's kdb+, requests are executed serially
        self._query_lock = threading.Lock()
        self._next_pid = 1000

    def handle(self, conn: socket.socket) -> None:
        stream = PgFrameStream.over(conn)

        def send(message: m.BackendMessage) -> None:
            conn.sendall(encode_backend(message))

        startup = stream.read_startup()
        ctx = AuthContext(startup.user)
        if not self._authenticate(ctx, stream, send):
            return
        send(m.AuthenticationRequest(0))
        send(m.ParameterStatus("server_version", "9.2-repro"))
        send(m.BackendKeyData(self._next_pid, 0xC0FFEE))
        self._next_pid += 1
        send(m.ReadyForQuery("I"))

        ACTIVE_SESSIONS.inc(server="pgwire")
        try:
            while True:
                message = stream.read_message(decode_frontend)
                if isinstance(message, m.Terminate):
                    return
                if not isinstance(message, m.Query):
                    send(m.ErrorResponse(message="unsupported message"))
                    send(m.ReadyForQuery("I"))
                    continue
                self._run_query(message.sql, conn)
        finally:
            stream.flush()
            ACTIVE_SESSIONS.dec(server="pgwire")

    def _authenticate(
        self, ctx: AuthContext, stream: PgFrameStream, send
    ) -> bool:
        if self.auth.request_code == 0:
            return True
        salt = self.auth.challenge(ctx)
        send(m.AuthenticationRequest(self.auth.request_code, salt))
        response = stream.read_message(decode_frontend)
        if not isinstance(response, m.PasswordMessage):
            send(m.ErrorResponse(message="expected a password message"))
            return False
        try:
            self.auth.verify(ctx, response.password)
        except AuthenticationError as exc:
            send(m.ErrorResponse(message=str(exc), code="28P01"))
            return False
        return True

    def _run_query(self, sql: str, conn: socket.socket) -> None:
        def send(message: m.BackendMessage) -> None:
            conn.sendall(encode_backend(message))

        if not sql.strip():
            send(m.EmptyQueryResponse())
            send(m.ReadyForQuery("I"))
            return
        started = time.perf_counter()
        QUERIES_TOTAL.inc(kind="simple", server="pgwire")
        try:
            with self._query_lock:
                results = self.engine.execute_all(sql)
        except ReproError as exc:
            ERRORS_TOTAL.inc(error=type(exc).__name__, server="pgwire")
            _log.warning("query_error", message=str(exc))
            send(m.ErrorResponse(message=str(exc), code=_sqlstate_for(exc)))
            send(m.ReadyForQuery("I"))
            return
        finally:
            QUERY_SECONDS.observe(time.perf_counter() - started, server="pgwire")
        # one sendall per statement batch: every result's messages plus
        # the trailing ReadyForQuery leave in a single syscall
        parts = [self._result_bytes(result) for result in results]
        parts.append(encode_backend(m.ReadyForQuery("I")))
        conn.sendall(b"".join(parts))

    def _result_bytes(self, result: ResultSet) -> bytes:
        if result.columns:
            fields = [
                m.FieldDescription(
                    column.name,
                    m.TYPE_OIDS.get(column.sql_type.value, 25),
                )
                for column in result.columns
            ]
            column_types = [column.sql_type for column in result.columns]
            # the PG side of Figure 5: one DataRow message per row, all
            # framed in one batched pass
            row_cells = [
                [
                    None
                    if value is None
                    else render_value(value, sql_type).encode("utf-8")
                    for value, sql_type in zip(row, column_types)
                ]
                for row in result.rows
            ]
            tag = f"SELECT {len(row_cells)}"
            return b"".join(
                (
                    encode_backend(m.RowDescription(fields)),
                    encode_data_rows(row_cells),
                    encode_backend(m.CommandComplete(tag)),
                )
            )
        return encode_backend(m.CommandComplete(result.command))
