"""Volcano-lite executor for the SQL subset.

The executor interprets :mod:`repro.sqlengine.sqlast` trees directly over
row-major in-memory tables.  A hash-join fast path handles the equality
part of join conditions (the shape Hyper-Q emits for as-of joins: symbol
equality plus a time-range residual), everything else falls back to a
nested loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlExecutionError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.catalog import Catalog, Column, Table, View
from repro.sqlengine.expr import EvalContext, Scope, evaluate, infer_type
from repro.sqlengine.functions import compute_aggregate, is_aggregate
from repro.sqlengine.types import SqlType, promote
from repro.sqlengine.window import compute_window_values


@dataclass
class RelColumn:
    table: str | None
    name: str
    sql_type: SqlType


@dataclass
class Relation:
    """An intermediate result: column metadata plus row tuples."""

    columns: list[RelColumn]
    rows: list[tuple]
    _by_qualified: dict = field(default=None, repr=False)  # type: ignore[assignment]
    _by_name: dict = field(default=None, repr=False)  # type: ignore[assignment]
    _ambiguous: set = field(default=None, repr=False)  # type: ignore[assignment]

    def _build_lookup(self) -> None:
        by_qualified: dict[tuple[str, str], int] = {}
        by_name: dict[str, int] = {}
        ambiguous: set[str] = set()
        for i, col in enumerate(self.columns):
            if col.table is not None:
                by_qualified.setdefault((col.table, col.name), i)
            if col.name in by_name:
                ambiguous.add(col.name)
            else:
                by_name[col.name] = i
        self._by_qualified = by_qualified
        self._by_name = by_name
        self._ambiguous = ambiguous

    def scope(self, row: tuple, parent: Scope | None = None) -> Scope:
        if self._by_qualified is None:
            self._build_lookup()
        return Scope(self._by_qualified, self._by_name, self._ambiguous, row, parent)

    def can_resolve(self, ref: sa.ColumnRef) -> bool:
        if self._by_qualified is None:
            self._build_lookup()
        if ref.table is not None:
            return (ref.table, ref.name) in self._by_qualified
        return ref.name in self._by_name and ref.name not in self._ambiguous

    def column_type(self, ref: sa.ColumnRef) -> SqlType:
        if self._by_qualified is None:
            self._build_lookup()
        if ref.table is not None:
            index = self._by_qualified.get((ref.table, ref.name))
        else:
            index = self._by_name.get(ref.name)
        return self.columns[index].sql_type if index is not None else SqlType.NULL


class ResultSet:
    """What a query returns: column metadata plus the data, in either
    row-major or column-major form.

    The in-memory engine produces row tuples; the network gateway
    accumulates columnar lists straight off the wire (one list per
    column), which is the layout the Cross Compiler's pivot consumes.
    Whichever form a result was built with, the other is materialized
    lazily on first access — so ``pivot_result`` never transposes a
    gateway result, while row-oriented consumers (``sqlengine``,
    ``testing``) keep their ``.rows`` view unchanged.
    """

    __slots__ = ("columns", "command", "_rows", "_column_data")

    def __init__(
        self,
        columns: list[Column],
        rows: list[tuple] | None = None,
        command: str = "SELECT",
        column_data: list[list] | None = None,
    ):
        self.columns = columns
        self.command = command
        if rows is None and column_data is None:
            rows = []
        self._rows = rows
        self._column_data = column_data

    @classmethod
    def from_columns(
        cls, columns: list[Column], column_data: list[list],
        command: str = "SELECT",
    ) -> "ResultSet":
        """A columnar result (one payload list per column)."""
        return cls(columns, command=command, column_data=column_data)

    @property
    def rows(self) -> list[tuple]:
        """Row-tuple view; materialized from columns on first access."""
        if self._rows is None:
            self._rows = list(zip(*self._column_data))
        return self._rows

    @rows.setter
    def rows(self, rows: list[tuple]) -> None:
        # rebinding rows (LIMIT/OFFSET slicing, sorting) invalidates any
        # derived columnar view
        self._rows = rows
        self._column_data = None

    @property
    def column_data(self) -> list[list]:
        """Column-major view; transposed from rows only when the result
        was not built columnar in the first place."""
        if self._column_data is None:
            if self._rows:
                self._column_data = [list(col) for col in zip(*self._rows)]
            else:
                self._column_data = [[] for __ in self.columns]
        return self._column_data

    @property
    def is_columnar(self) -> bool:
        """Whether the result natively carries column-major data."""
        return self._column_data is not None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def scalar(self):
        """The single value of a 1x1 result (convenience for tests)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError("result is not a single scalar")
        return self.rows[0][0]

    def __repr__(self) -> str:
        return (
            f"ResultSet(columns={len(self.columns)}, rows={len(self.rows)}, "
            f"command={self.command!r})"
        )


@dataclass
class _RowState:
    """A pre-projection row: scope payload plus precomputed node values."""

    row: tuple
    replacements: dict


class Executor:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- entry ------------------------------------------------------------------

    def execute_select(
        self,
        select: sa.Select,
        outer: Scope | None = None,
        limit_hint: int | None = None,
    ) -> ResultSet:
        result = self._execute_core(select, outer)
        if select.set_op is not None and select.set_right is not None:
            right = self.execute_select(select.set_right, outer)
            result = _apply_set_op(result, select.set_op, right)
            if select.order_by:
                result = self._sort_result(result, select.order_by)
        if select.offset is not None:
            offset = int(self._const(select.offset))
            result.rows = result.rows[offset:]
        if select.limit is not None:
            limit = int(self._const(select.limit))
            result.rows = result.rows[:limit]
        if limit_hint is not None:
            result.rows = result.rows[:limit_hint]
        return result

    def _const(self, expr: sa.Expr):
        return evaluate(expr, EvalContext(None, executor=self))

    # -- core SELECT --------------------------------------------------------------

    def _execute_core(self, select: sa.Select, outer: Scope | None) -> ResultSet:
        relation = (
            self._execute_from(select.from_clause, outer)
            if select.from_clause is not None
            else Relation([], [()])
        )

        # WHERE
        if select.where is not None:
            kept = []
            for row in relation.rows:
                ctx = EvalContext(relation.scope(row, outer), executor=self)
                if evaluate(select.where, ctx) is True:
                    kept.append(row)
            relation = Relation(relation.columns, kept)

        aggregates = _collect_aggregates(select)
        windows = _collect_windows(select)
        grouped = bool(select.group_by) or bool(aggregates)

        if grouped:
            states = self._grouped_states(select, relation, aggregates, outer)
        else:
            states = [_RowState(row, {}) for row in relation.rows]

        # HAVING (evaluated with aggregate replacements)
        if select.having is not None:
            filtered = []
            for state in states:
                ctx = EvalContext(
                    relation.scope(state.row, outer),
                    replacements=state.replacements,
                    executor=self,
                )
                if evaluate(select.having, ctx) is True:
                    filtered.append(state)
            states = filtered

        # window functions over the (possibly grouped) row states
        for node in windows:
            self._compute_window(node, states, relation, outer)

        # projection
        items = self._expand_stars(select.items, relation)
        self._validate_column_refs(select, items, relation, outer)
        out_columns = self._output_columns(items, relation)
        out_rows: list[tuple] = []
        order_keys: list[tuple] = []
        alias_index = {c.name: i for i, c in enumerate(out_columns)}

        for state in states:
            ctx = EvalContext(
                relation.scope(state.row, outer),
                replacements=state.replacements,
                executor=self,
            )
            projected = tuple(evaluate(item.expr, ctx) for item in items)
            out_rows.append(projected)
            if select.order_by:
                order_keys.append(
                    self._order_key_for_row(
                        select.order_by, ctx, projected, alias_index
                    )
                )

        if select.order_by and select.set_op is None:
            paired = sorted(zip(order_keys, range(len(out_rows))), key=lambda p: p[0])
            out_rows = [out_rows[i] for __, i in paired]

        if select.distinct:
            out_rows = _dedupe(out_rows)

        return ResultSet(out_columns, out_rows)

    def _order_key_for_row(self, order_by, ctx, projected, alias_index):
        from repro.sqlengine.window import _order_key

        key = []
        for item in order_by:
            value = self._order_value(item.expr, ctx, projected, alias_index)
            key.append(_order_key(value, item.descending, item.nulls_first))
        return tuple(key)

    def _order_value(self, expr, ctx, projected, alias_index):
        if isinstance(expr, sa.Literal) and isinstance(expr.value, int):
            ordinal = expr.value - 1
            if 0 <= ordinal < len(projected):
                return projected[ordinal]
        if isinstance(expr, sa.ColumnRef) and expr.table is None:
            if ctx.scope is not None and ctx.scope.find(expr) is not None:
                return evaluate(expr, ctx)
            if expr.name in alias_index:
                return projected[alias_index[expr.name]]
        return evaluate(expr, ctx)

    def _sort_result(self, result: ResultSet, order_by) -> ResultSet:
        relation = Relation(
            [RelColumn(None, c.name, c.sql_type) for c in result.columns],
            result.rows,
        )
        keyed = []
        alias_index = {c.name: i for i, c in enumerate(result.columns)}
        for row in result.rows:
            ctx = EvalContext(relation.scope(row), executor=self)
            keyed.append(self._order_key_for_row(order_by, ctx, row, alias_index))
        paired = sorted(zip(keyed, range(len(result.rows))), key=lambda p: p[0])
        result.rows = [result.rows[i] for __, i in paired]
        return result

    # -- grouping -------------------------------------------------------------------

    def _grouped_states(
        self,
        select: sa.Select,
        relation: Relation,
        aggregates: list[sa.FuncCall],
        outer: Scope | None,
    ) -> list[_RowState]:
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        if select.group_by:
            for row in relation.rows:
                ctx = EvalContext(relation.scope(row, outer), executor=self)
                key = tuple(
                    _hashable(evaluate(e, ctx)) for e in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            # implicit single group (may be empty)
            groups[()] = list(relation.rows)
            order.append(())

        states: list[_RowState] = []
        for key in order:
            rows = groups[key]
            if not rows and select.group_by:
                continue
            replacements: dict[int, object] = {}
            for agg in aggregates:
                replacements[id(agg)] = self._compute_group_aggregate(
                    agg, rows, relation, outer
                )
            representative = rows[0] if rows else tuple([None] * len(relation.columns))
            states.append(_RowState(representative, replacements))
        return states

    def _compute_group_aggregate(
        self, agg: sa.FuncCall, rows: list[tuple], relation: Relation, outer
    ):
        if agg.star:
            if agg.name != "count":
                raise SqlExecutionError(f"{agg.name}(*) is not defined")
            return len(rows)
        from repro.sqlengine.functions import NULL_KEEPING_AGGREGATES

        keep_nulls = agg.name in NULL_KEEPING_AGGREGATES
        values = []
        extra_args: list = []
        for row in rows:
            ctx = EvalContext(relation.scope(row, outer), executor=self)
            value = evaluate(agg.args[0], ctx)
            if value is not None or keep_nulls:
                values.append(value)
            if agg.name == "string_agg" and len(agg.args) > 1 and not extra_args:
                extra_args.append(evaluate(agg.args[1], ctx))
        if agg.distinct:
            values = _dedupe_values(values)
        return compute_aggregate(agg.name, values, extra_args)

    # -- windows --------------------------------------------------------------------

    def _compute_window(
        self,
        node: sa.WindowFunc,
        states: list[_RowState],
        relation: Relation,
        outer: Scope | None,
    ) -> None:
        def eval_for_row(i: int, expr: sa.Expr):
            state = states[i]
            ctx = EvalContext(
                relation.scope(state.row, outer),
                replacements=state.replacements,
                executor=self,
            )
            return evaluate(expr, ctx)

        values = compute_window_values(node, len(states), eval_for_row)
        for state, value in zip(states, values):
            state.replacements[id(node)] = value

    # -- FROM -----------------------------------------------------------------------

    def _execute_from(self, table_expr: sa.TableExpr, outer: Scope | None) -> Relation:
        if isinstance(table_expr, sa.TableRef):
            return self._scan_table(table_expr)
        if isinstance(table_expr, sa.SubqueryRef):
            result = self.execute_select(table_expr.query, outer)
            columns = [
                RelColumn(table_expr.alias, c.name, c.sql_type)
                for c in result.columns
            ]
            return Relation(columns, result.rows)
        if isinstance(table_expr, sa.Join):
            return self._execute_join(table_expr, outer)
        raise SqlExecutionError(f"unsupported FROM item {type(table_expr).__name__}")

    def _scan_table(self, ref: sa.TableRef) -> Relation:
        relation = self.catalog.resolve(ref.name, ref.schema)
        label = ref.alias or ref.name
        if isinstance(relation, View):
            result = self.execute_select(relation.query)
            columns = [
                RelColumn(label, c.name, c.sql_type) for c in result.columns
            ]
            return Relation(columns, result.rows)
        assert isinstance(relation, Table)
        columns = [
            RelColumn(label, col.name, col.sql_type) for col in relation.columns
        ]
        return Relation(columns, [tuple(row) for row in relation.rows])

    def _execute_join(self, join: sa.Join, outer: Scope | None) -> Relation:
        left = self._execute_from(join.left, outer)
        right = self._execute_from(join.right, outer)
        columns = left.columns + right.columns
        null_right = tuple([None] * len(right.columns))
        null_left = tuple([None] * len(left.columns))

        if join.kind == "cross" or join.condition is None:
            rows = [l + r for l in left.rows for r in right.rows]
            return Relation(columns, rows)

        combined = Relation(columns, [])
        left_keys, right_keys, residual = _split_equi_condition(
            join.condition, left, right
        )

        def matches_for(left_row: tuple, candidates: list[tuple]) -> list[tuple]:
            found = []
            for right_row in candidates:
                if residual is None:
                    found.append(right_row)
                    continue
                ctx = EvalContext(
                    combined.scope(left_row + right_row, outer), executor=self
                )
                if evaluate(residual, ctx) is True:
                    found.append(right_row)
            return found

        if left_keys:
            # hash join on the equality conjuncts
            index: dict[tuple, list[tuple]] = {}
            for right_row in right.rows:
                ctx = EvalContext(right.scope(right_row, outer), executor=self)
                key = tuple(_hashable(evaluate(e, ctx)) for e in right_keys)
                if any(k is None for k in key):
                    continue  # NULL keys never match with '='
                index.setdefault(key, []).append(right_row)
            rows = []
            matched_right: set[int] = set()
            for left_row in left.rows:
                ctx = EvalContext(left.scope(left_row, outer), executor=self)
                key = tuple(_hashable(evaluate(e, ctx)) for e in left_keys)
                candidates = index.get(key, []) if not any(
                    k is None for k in key
                ) else []
                found = matches_for(left_row, candidates)
                if found:
                    for right_row in found:
                        rows.append(left_row + right_row)
                        if join.kind == "full":
                            matched_right.add(id(right_row))
                elif join.kind in ("left", "full"):
                    rows.append(left_row + null_right)
            if join.kind == "right":
                rows = self._right_join_fallback(
                    join, left, right, combined, outer
                )
            if join.kind == "full":
                for right_row in right.rows:
                    if id(right_row) not in matched_right:
                        rows.append(null_left + right_row)
            return Relation(columns, rows)

        # nested loop
        rows = []
        matched_right_idx: set[int] = set()
        for left_row in left.rows:
            any_match = False
            for ri, right_row in enumerate(right.rows):
                ctx = EvalContext(
                    combined.scope(left_row + right_row, outer), executor=self
                )
                if evaluate(join.condition, ctx) is True:
                    rows.append(left_row + right_row)
                    any_match = True
                    matched_right_idx.add(ri)
            if not any_match and join.kind in ("left", "full"):
                rows.append(left_row + null_right)
        if join.kind == "right":
            rows = []
            for ri, right_row in enumerate(right.rows):
                any_match = False
                for left_row in left.rows:
                    ctx = EvalContext(
                        combined.scope(left_row + right_row, outer), executor=self
                    )
                    if evaluate(join.condition, ctx) is True:
                        rows.append(left_row + right_row)
                        any_match = True
                if not any_match:
                    rows.append(null_left + right_row)
        elif join.kind == "full":
            for ri, right_row in enumerate(right.rows):
                if ri not in matched_right_idx:
                    rows.append(null_left + right_row)
        return Relation(columns, rows)

    def _right_join_fallback(self, join, left, right, combined, outer):
        rows = []
        for right_row in right.rows:
            any_match = False
            for left_row in left.rows:
                ctx = EvalContext(
                    combined.scope(left_row + right_row, outer), executor=self
                )
                if evaluate(join.condition, ctx) is True:
                    rows.append(left_row + right_row)
                    any_match = True
            if not any_match:
                rows.append(tuple([None] * len(left.columns)) + right_row)
        return rows

    # -- projection helpers ------------------------------------------------------------

    def _expand_stars(
        self, items: list[sa.SelectItem], relation: Relation
    ) -> list[sa.SelectItem]:
        out: list[sa.SelectItem] = []
        for item in items:
            if isinstance(item.expr, sa.Star):
                for col in relation.columns:
                    if item.expr.table is not None and col.table != item.expr.table:
                        continue
                    out.append(
                        sa.SelectItem(
                            sa.ColumnRef(col.name, table=col.table), alias=col.name
                        )
                    )
            else:
                out.append(item)
        return out

    def _validate_column_refs(
        self,
        select: sa.Select,
        items: list[sa.SelectItem],
        relation: Relation,
        outer: Scope | None,
    ) -> None:
        """Static name resolution, so bad references fail even on empty
        tables (as they do at plan time in PostgreSQL)."""
        exprs: list[sa.Expr] = [item.expr for item in items]
        if select.where is not None:
            exprs.append(select.where)
        exprs.extend(select.group_by)
        if select.having is not None:
            exprs.append(select.having)

        def walk(node) -> None:
            if isinstance(node, sa.ColumnRef):
                if node.table is None and node.name in relation._ambiguous:
                    raise SqlExecutionError(
                        f'column reference "{node.name}" is ambiguous'
                    )
                if relation.can_resolve(node):
                    return
                scope: Scope | None = outer
                probe = sa.ColumnRef(node.name, node.table)
                while scope is not None:
                    try:
                        if scope._local_index(probe) is not None:
                            return
                    except SqlExecutionError:
                        return  # ambiguous in outer scope: defer to runtime
                    scope = scope.parent
                raise SqlExecutionError(
                    f'column "{node.display}" does not exist'
                )
            if isinstance(node, (sa.ScalarSubquery, sa.ExistsSubquery)):
                return  # the subquery validates itself on execution
            if isinstance(node, sa.InSubquery):
                walk(node.operand)
                return
            if isinstance(node, sa.WindowFunc):
                for arg in node.func.args:
                    walk(arg)
                for p in node.window.partition_by:
                    walk(p)
                for item in node.window.order_by:
                    walk(item.expr)
                return
            for attr in ("left", "right", "operand", "low", "high", "pattern"):
                child = getattr(node, attr, None)
                if isinstance(child, sa.Expr):
                    walk(child)
            if isinstance(node, sa.FuncCall):
                for arg in node.args:
                    walk(arg)
            if isinstance(node, sa.InList):
                for item in node.items:
                    walk(item)
            if isinstance(node, sa.Case):
                if node.operand is not None:
                    walk(node.operand)
                for c, r in node.branches:
                    walk(c)
                    walk(r)
                if node.default is not None:
                    walk(node.default)
            if isinstance(node, sa.Cast):
                walk(node.operand)

        if relation._by_qualified is None:
            relation._build_lookup()
        for expr in exprs:
            walk(expr)

    def _output_columns(
        self, items: list[sa.SelectItem], relation: Relation
    ) -> list[Column]:
        columns = []
        for item in items:
            name = item.alias or _derive_name(item.expr)
            sql_type = infer_type(item.expr, relation.column_type)
            columns.append(Column(name, sql_type))
        return columns


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _hashable(value):
    if isinstance(value, float) and value != value:
        return "__nan__"
    if isinstance(value, list):
        return tuple(value)
    return value


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    out = []
    for row in rows:
        key = tuple(_hashable(v) for v in row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _dedupe_values(values: list) -> list:
    seen: set = set()
    out = []
    for v in values:
        key = _hashable(v)
        if key not in seen:
            seen.add(key)
            out.append(v)
    return out


def _derive_name(expr: sa.Expr) -> str:
    if isinstance(expr, sa.ColumnRef):
        return expr.name
    if isinstance(expr, sa.FuncCall):
        return expr.name
    if isinstance(expr, sa.WindowFunc):
        return expr.func.name
    if isinstance(expr, sa.Cast):
        return _derive_name(expr.operand)
    return "?column?"


def _collect_aggregates(select: sa.Select) -> list[sa.FuncCall]:
    found: list[sa.FuncCall] = []

    def walk(node, in_window=False):
        if isinstance(node, sa.WindowFunc):
            for arg in node.func.args:
                walk(arg, in_window=True)
            for e in node.window.partition_by:
                walk(e, in_window=True)
            for item in node.window.order_by:
                walk(item.expr, in_window=True)
            return
        if isinstance(node, sa.FuncCall):
            if not in_window and (is_aggregate(node.name) or node.star):
                found.append(node)
                return  # do not descend: nested aggregates unsupported
            for arg in node.args:
                walk(arg, in_window)
            return
        if isinstance(node, sa.BinaryOp):
            walk(node.left, in_window)
            walk(node.right, in_window)
        elif isinstance(node, sa.UnaryOp):
            walk(node.operand, in_window)
        elif isinstance(node, sa.IsNull):
            walk(node.operand, in_window)
        elif isinstance(node, sa.InList):
            walk(node.operand, in_window)
            for i in node.items:
                walk(i, in_window)
        elif isinstance(node, sa.Between):
            walk(node.operand, in_window)
            walk(node.low, in_window)
            walk(node.high, in_window)
        elif isinstance(node, sa.LikeOp):
            walk(node.operand, in_window)
            walk(node.pattern, in_window)
        elif isinstance(node, sa.Cast):
            walk(node.operand, in_window)
        elif isinstance(node, sa.Case):
            if node.operand:
                walk(node.operand, in_window)
            for c, r in node.branches:
                walk(c, in_window)
                walk(r, in_window)
            if node.default:
                walk(node.default, in_window)

    for item in select.items:
        if not isinstance(item.expr, sa.Star):
            walk(item.expr)
    if select.having is not None:
        walk(select.having)
    for item in select.order_by:
        walk(item.expr)
    return found


def _collect_windows(select: sa.Select) -> list[sa.WindowFunc]:
    found: list[sa.WindowFunc] = []

    def walk(node):
        if isinstance(node, sa.WindowFunc):
            found.append(node)
            return
        if isinstance(node, sa.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, sa.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, sa.UnaryOp):
            walk(node.operand)
        elif isinstance(node, sa.Cast):
            walk(node.operand)
        elif isinstance(node, sa.Case):
            if node.operand:
                walk(node.operand)
            for c, r in node.branches:
                walk(c)
                walk(r)
            if node.default:
                walk(node.default)
        elif isinstance(node, sa.IsNull):
            walk(node.operand)

    for item in select.items:
        if not isinstance(item.expr, sa.Star):
            walk(item.expr)
    for item in select.order_by:
        walk(item.expr)
    return found


def _split_equi_condition(
    condition: sa.Expr, left: Relation, right: Relation
):
    """Split a join condition into hashable equality keys and a residual.

    Returns (left_exprs, right_exprs, residual_expr_or_None).
    """
    conjuncts = _flatten_and(condition)
    left_keys: list[sa.Expr] = []
    right_keys: list[sa.Expr] = []
    residual: list[sa.Expr] = []
    for conjunct in conjuncts:
        pair = _equi_pair(conjunct, left, right)
        if pair is None:
            residual.append(conjunct)
        else:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
    residual_expr: sa.Expr | None = None
    for conjunct in residual:
        residual_expr = (
            conjunct
            if residual_expr is None
            else sa.BinaryOp("AND", residual_expr, conjunct)
        )
    return left_keys, right_keys, residual_expr


def _flatten_and(expr: sa.Expr) -> list[sa.Expr]:
    if isinstance(expr, sa.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _equi_pair(expr: sa.Expr, left: Relation, right: Relation):
    if not isinstance(expr, sa.BinaryOp) or expr.op not in (
        "=",
        "IS NOT DISTINCT FROM",
    ):
        return None
    sides = []
    for operand in (expr.left, expr.right):
        refs = _column_refs(operand)
        if not refs:
            return None
        in_left = all(left.can_resolve(r) for r in refs)
        in_right = all(right.can_resolve(r) for r in refs)
        if in_left and not in_right:
            sides.append(("L", operand))
        elif in_right and not in_left:
            sides.append(("R", operand))
        else:
            return None
    if sides[0][0] == "L" and sides[1][0] == "R":
        return sides[0][1], sides[1][1]
    if sides[0][0] == "R" and sides[1][0] == "L":
        return sides[1][1], sides[0][1]
    return None


def _column_refs(expr: sa.Expr) -> list[sa.ColumnRef]:
    refs: list[sa.ColumnRef] = []

    def walk(node):
        if isinstance(node, sa.ColumnRef):
            refs.append(node)
        elif isinstance(node, sa.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, sa.UnaryOp):
            walk(node.operand)
        elif isinstance(node, sa.Cast):
            walk(node.operand)
        elif isinstance(node, sa.FuncCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return refs


def _apply_set_op(left: ResultSet, op: str, right: ResultSet) -> ResultSet:
    if len(left.columns) != len(right.columns):
        raise SqlExecutionError("set operation inputs differ in column count")
    columns = [
        Column(lc.name, promote_or_left(lc.sql_type, rc.sql_type))
        for lc, rc in zip(left.columns, right.columns)
    ]
    if op == "union all":
        return ResultSet(columns, left.rows + right.rows)
    if op == "union":
        return ResultSet(columns, _dedupe(left.rows + right.rows))
    if op == "intersect":
        right_set = {tuple(_hashable(v) for v in r) for r in right.rows}
        rows = [
            r
            for r in _dedupe(left.rows)
            if tuple(_hashable(v) for v in r) in right_set
        ]
        return ResultSet(columns, rows)
    if op == "except":
        right_set = {tuple(_hashable(v) for v in r) for r in right.rows}
        rows = [
            r
            for r in _dedupe(left.rows)
            if tuple(_hashable(v) for v in r) not in right_set
        ]
        return ResultSet(columns, rows)
    raise SqlExecutionError(f"unsupported set operation {op!r}")


def promote_or_left(left: SqlType, right: SqlType) -> SqlType:
    try:
        return promote(left, right)
    except Exception:
        return left
