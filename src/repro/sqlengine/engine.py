"""Engine facade: parse and execute SQL text against a catalog.

This is the in-process stand-in for the Greenplum/PostgreSQL backend the
paper deploys Hyper-Q against.  Like kdb+ (and unlike a real MPP), it
executes one statement at a time; the PG-wire server in
:mod:`repro.server.pgserver` serializes concurrent clients on top of it.
"""

from __future__ import annotations

from repro.analysis.concurrency.locks import make_rlock
from repro.errors import SqlExecutionError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.catalog import Catalog, Column, Table
from repro.sqlengine.executor import Executor, ResultSet
from repro.sqlengine.expr import EvalContext, evaluate
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.types import cast_value


class Engine:
    """A PostgreSQL-compatible, in-memory SQL engine."""

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog or Catalog()
        self.executor = Executor(self.catalog)
        self._lock = make_rlock("sqlengine.engine")

    # -- public API -----------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Execute one or more ;-separated statements; return the last result."""
        results = self.execute_all(sql)
        return results[-1] if results else ResultSet([], [], command="EMPTY")

    def execute_all(self, sql: str) -> list[ResultSet]:
        statements = parse_sql(sql)
        results = []
        with self._lock:
            for statement in statements:
                results.append(self._run(statement))
        return results

    def create_table_from_columns(
        self, name: str, columns: list[Column], rows: list[list],
        temporary: bool = False,
    ) -> Table:
        """Bulk-load helper used by the workload loader."""
        with self._lock:
            table = self.catalog.create_table(name, columns, temporary=temporary)
            table.rows = [list(r) for r in rows]
            return table

    def end_session(self) -> None:
        """Drop temp tables, mirroring PG's end-of-session cleanup."""
        with self._lock:
            self.catalog.drop_temp_tables()

    # -- statement dispatch ------------------------------------------------------

    def _run(self, statement: sa.Statement) -> ResultSet:
        if isinstance(statement, sa.Select):
            return self.executor.execute_select(statement)
        if isinstance(statement, sa.CreateTable):
            self.catalog.create_table(
                statement.name,
                [Column(c.name, c.sql_type, c.type_text) for c in statement.columns],
                temporary=statement.temporary,
                if_not_exists=statement.if_not_exists,
            )
            return ResultSet([], [], command="CREATE TABLE")
        if isinstance(statement, sa.CreateTableAs):
            result = self.executor.execute_select(statement.query)
            table = self.catalog.create_table(
                statement.name, list(result.columns), temporary=statement.temporary
            )
            table.rows = [list(row) for row in result.rows]
            return ResultSet([], [], command=f"SELECT {len(result.rows)}")
        if isinstance(statement, sa.CreateView):
            self.catalog.create_view(
                statement.name, statement.query, or_replace=statement.or_replace
            )
            return ResultSet([], [], command="CREATE VIEW")
        if isinstance(statement, sa.Insert):
            return self._run_insert(statement)
        if isinstance(statement, sa.Delete):
            return self._run_delete(statement)
        if isinstance(statement, sa.Update):
            return self._run_update(statement)
        if isinstance(statement, sa.DropTable):
            self.catalog.drop(
                statement.name, if_exists=statement.if_exists,
                is_view=statement.is_view,
            )
            return ResultSet([], [], command="DROP")
        if isinstance(statement, sa.Truncate):
            self.catalog.table(statement.name).rows.clear()
            return ResultSet([], [], command="TRUNCATE")
        raise SqlExecutionError(f"unsupported statement {type(statement).__name__}")

    def _run_insert(self, statement: sa.Insert) -> ResultSet:
        table = self.catalog.table(statement.table)
        if statement.columns:
            positions = [table.column_index(c) for c in statement.columns]
        else:
            positions = list(range(len(table.columns)))
        incoming: list[list] = []
        if statement.rows is not None:
            for row_exprs in statement.rows:
                if len(row_exprs) != len(positions):
                    raise SqlExecutionError(
                        "INSERT value count does not match column count"
                    )
                ctx = EvalContext(None, executor=self.executor)
                incoming.append([evaluate(e, ctx) for e in row_exprs])
        else:
            assert statement.query is not None
            result = self.executor.execute_select(statement.query)
            if result.columns and len(result.columns) != len(positions):
                raise SqlExecutionError(
                    "INSERT source column count does not match target"
                )
            incoming = [list(row) for row in result.rows]
        for values in incoming:
            new_row: list = [None] * len(table.columns)
            for pos, value in zip(positions, values):
                target_type = table.columns[pos].sql_type
                new_row[pos] = cast_value(value, target_type)
            table.rows.append(new_row)
        return ResultSet([], [], command=f"INSERT 0 {len(incoming)}")

    def _table_relation(self, table: Table):
        from repro.sqlengine.executor import RelColumn, Relation

        columns = [RelColumn(table.name, c.name, c.sql_type) for c in table.columns]
        return Relation(columns, [tuple(r) for r in table.rows])

    def _run_delete(self, statement: sa.Delete) -> ResultSet:
        table = self.catalog.table(statement.table)
        if statement.where is None:
            removed = len(table.rows)
            table.rows.clear()
            return ResultSet([], [], command=f"DELETE {removed}")
        relation = self._table_relation(table)
        kept = []
        for stored, row in zip(table.rows, relation.rows):
            ctx = EvalContext(relation.scope(row), executor=self.executor)
            if evaluate(statement.where, ctx) is not True:
                kept.append(stored)
        removed = len(table.rows) - len(kept)
        table.rows = kept
        return ResultSet([], [], command=f"DELETE {removed}")

    def _run_update(self, statement: sa.Update) -> ResultSet:
        table = self.catalog.table(statement.table)
        relation = self._table_relation(table)
        positions = [table.column_index(name) for name, __ in statement.assignments]
        updated = 0
        for stored, row in zip(table.rows, relation.rows):
            ctx = EvalContext(relation.scope(row), executor=self.executor)
            where = statement.where
            if where is not None and evaluate(where, ctx) is not True:
                continue
            for pos, (__, expr) in zip(positions, statement.assignments):
                stored[pos] = cast_value(
                    evaluate(expr, ctx), table.columns[pos].sql_type
                )
            updated += 1
        return ResultSet([], [], command=f"UPDATE {updated}")
