"""Catalog for the SQL engine: tables, temp tables, views, pg_catalog.

The metadata interface of Hyper-Q (paper Section 3.2.3) resolves Q variable
references "by executing a query against PG catalog".  To support that we
emulate the relevant slice of ``pg_catalog``/``information_schema`` as
virtual tables generated from the live catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlCatalogError
from repro.sqlengine.types import SqlType


@dataclass
class Column:
    name: str
    sql_type: SqlType
    type_text: str = ""

    def __post_init__(self):
        if not self.type_text:
            self.type_text = self.sql_type.value


@dataclass
class Table:
    """A heap table with row-major storage."""

    name: str
    columns: list[Column]
    rows: list[list] = field(default_factory=list)
    temporary: bool = False

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SqlCatalogError(f"column {name!r} does not exist in {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]


@dataclass
class View:
    name: str
    query: object  # sqlast.Select
    sql: str = ""


class Catalog:
    """Schema-lite catalog: one public namespace plus a temp namespace.

    Temporary tables shadow permanent ones with the same name, matching
    PostgreSQL's search-path behaviour for the ``pg_temp`` schema.
    """

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.temp_tables: dict[str, Table] = {}
        self.views: dict[str, View] = {}
        #: bumped on every DDL change; used by Hyper-Q's metadata cache
        self.version = 0

    # -- lookups ---------------------------------------------------------------

    def resolve(self, name: str, schema: str | None = None) -> Table | View:
        if schema in ("pg_catalog", "information_schema"):
            return self._system_table(schema, name)
        if name in self.temp_tables:
            return self.temp_tables[name]
        if name in self.tables:
            return self.tables[name]
        if name in self.views:
            return self.views[name]
        if name.startswith("pg_") or name in _SYSTEM_TABLES:
            return self._system_table("pg_catalog", name)
        raise SqlCatalogError(f'relation "{name}" does not exist')

    def table(self, name: str) -> Table:
        relation = self.resolve(name)
        if not isinstance(relation, Table):
            raise SqlCatalogError(f"{name!r} is a view, not a table")
        return relation

    def exists(self, name: str) -> bool:
        return (
            name in self.tables or name in self.temp_tables or name in self.views
        )

    # -- DDL ---------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[Column],
        temporary: bool = False,
        if_not_exists: bool = False,
    ) -> Table:
        namespace = self.temp_tables if temporary else self.tables
        if name in namespace:
            if if_not_exists:
                return namespace[name]
            raise SqlCatalogError(f'relation "{name}" already exists')
        table = Table(name, list(columns), temporary=temporary)
        namespace[name] = table
        self.version += 1
        return table

    def create_view(self, name: str, query, sql: str = "", or_replace: bool = False):
        if self.exists(name) and not (or_replace and name in self.views):
            raise SqlCatalogError(f'relation "{name}" already exists')
        self.views[name] = View(name, query, sql)
        self.version += 1

    def drop(self, name: str, if_exists: bool = False, is_view: bool = False) -> None:
        namespaces = (
            [self.views] if is_view else [self.temp_tables, self.tables, self.views]
        )
        for namespace in namespaces:
            if name in namespace:
                del namespace[name]
                self.version += 1
                return
        if not if_exists:
            raise SqlCatalogError(f'relation "{name}" does not exist')

    def drop_temp_tables(self) -> None:
        """End-of-session cleanup, as PG does for the pg_temp schema."""
        if self.temp_tables:
            self.temp_tables.clear()
            self.version += 1

    # -- system catalog emulation -------------------------------------------------

    def _system_table(self, schema: str, name: str) -> Table:
        builder = _SYSTEM_TABLES.get(name)
        if builder is None:
            raise SqlCatalogError(f'system relation "{schema}.{name}" is not emulated')
        return builder(self)


def _pg_tables(catalog: Catalog) -> Table:
    columns = [
        Column("schemaname", SqlType.TEXT),
        Column("tablename", SqlType.TEXT),
    ]
    rows = [["public", name] for name in sorted(catalog.tables)]
    rows += [["pg_temp", name] for name in sorted(catalog.temp_tables)]
    return Table("pg_tables", columns, rows)


def _pg_views(catalog: Catalog) -> Table:
    columns = [
        Column("schemaname", SqlType.TEXT),
        Column("viewname", SqlType.TEXT),
        Column("definition", SqlType.TEXT),
    ]
    rows = [["public", name, view.sql] for name, view in sorted(catalog.views.items())]
    return Table("pg_views", columns, rows)


def _columns_view(catalog: Catalog) -> Table:
    columns = [
        Column("table_schema", SqlType.TEXT),
        Column("table_name", SqlType.TEXT),
        Column("column_name", SqlType.TEXT),
        Column("ordinal_position", SqlType.INTEGER),
        Column("data_type", SqlType.TEXT),
    ]
    rows: list[list] = []
    for schema, namespace in (
        ("public", catalog.tables),
        ("pg_temp", catalog.temp_tables),
    ):
        for name in sorted(namespace):
            for i, col in enumerate(namespace[name].columns, start=1):
                rows.append([schema, name, col.name, i, col.type_text])
    return Table("columns", columns, rows)


_SYSTEM_TABLES = {
    "pg_tables": _pg_tables,
    "pg_views": _pg_views,
    "columns": _columns_view,
}
