"""Scalar and aggregate function registry for the SQL engine.

All functions follow PostgreSQL conventions: NULL inputs yield NULL unless
the function is explicitly NULL-aware (``coalesce``); aggregates skip NULLs
except ``count(*)``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Sequence

from repro.errors import SqlExecutionError
from repro.sqlengine.types import SqlType

# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _null_safe(fn: Callable) -> Callable:
    def wrapped(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _substring(text: str, start: int, length: int | None = None) -> str:
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _round(value: float, digits: int = 0) -> float:
    factor = 10 ** int(digits)
    return math.floor(abs(value) * factor + 0.5) / factor * (1 if value >= 0 else -1)


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a, b):
    if a is None:
        return None
    return None if a == b else a


def _greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _sign(x):
    return (x > 0) - (x < 0)


def _log(base, value=None):
    if value is None:
        return math.log10(base)
    return math.log(value, base)


def _width_bucket(value, low, high, buckets):
    if value < low:
        return 0
    if value >= high:
        return int(buckets) + 1
    return int((value - low) / ((high - low) / buckets)) + 1


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "abs": _null_safe(abs),
    "round": _null_safe(_round),
    "floor": _null_safe(math.floor),
    "ceil": _null_safe(math.ceil),
    "ceiling": _null_safe(math.ceil),
    "sqrt": _null_safe(math.sqrt),
    "exp": _null_safe(math.exp),
    "ln": _null_safe(math.log),
    "log": _null_safe(_log),
    "power": _null_safe(pow),
    "pow": _null_safe(pow),
    "mod": _null_safe(lambda a, b: a - b * (a // b)),
    "sign": _null_safe(_sign),
    "width_bucket": _null_safe(_width_bucket),
    "upper": _null_safe(str.upper),
    "lower": _null_safe(str.lower),
    "length": _null_safe(len),
    "char_length": _null_safe(len),
    "substring": _null_safe(_substring),
    "substr": _null_safe(_substring),
    "trim": _null_safe(str.strip),
    "ltrim": _null_safe(str.lstrip),
    "rtrim": _null_safe(str.rstrip),
    "replace": _null_safe(lambda s, a, b: s.replace(a, b)),
    "left": _null_safe(lambda s, n: s[: int(n)]),
    "right": _null_safe(lambda s, n: s[-int(n):] if n else ""),
    "concat": lambda *args: "".join(str(a) for a in args if a is not None),
    "coalesce": _coalesce,
    "nullif": _nullif,
    "greatest": _greatest,
    "least": _least,
}


def scalar_result_type(name: str, arg_types: Sequence[SqlType]) -> SqlType:
    if name in ("upper", "lower", "trim", "ltrim", "rtrim", "substring",
                "substr", "replace", "left", "right", "concat"):
        return SqlType.TEXT
    if name in ("length", "char_length", "sign", "width_bucket"):
        return SqlType.INTEGER
    if name in ("sqrt", "exp", "ln", "log", "power", "pow", "round"):
        return SqlType.DOUBLE
    if name in ("floor", "ceil", "ceiling"):
        return SqlType.BIGINT
    if name in ("coalesce", "nullif", "greatest", "least", "abs", "mod"):
        for t in arg_types:
            if t != SqlType.NULL:
                return t
        return SqlType.NULL
    return SqlType.DOUBLE


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """One aggregate computation over a collection of argument values."""

    name: str

    def compute(self, values: list):  # values: non-NULL argument values
        raise NotImplementedError


class _SimpleAggregate(Aggregate):
    def __init__(self, name: str, fn: Callable[[list], object]):
        self.name = name
        self.fn = fn

    def compute(self, values: list):
        return self.fn(values)


def _float_sum(values) -> float:
    """Correctly rounded float sum (``math.fsum``).

    Unlike the naive left-to-right ``sum``, the result is independent of
    input order and equals the exact rational sum rounded once — the
    property the sharded scatter-gather path relies on for byte-identical
    results at every shard count (docs/ARCHITECTURE.md).
    """
    # materialize first: callers pass generators, and fsum may raise
    # after partially consuming one — the fallback must see every element
    values = list(values)
    try:
        return math.fsum(values)
    except (OverflowError, ValueError):
        # inf/-inf/nan inputs: fall back to naive semantics
        return sum(values)


def _avg(values: list):
    return _float_sum(float(v) for v in values) / len(values) if values else None


def _sum(values: list):
    if not values:
        return None
    if any(isinstance(v, float) for v in values):
        return _float_sum(values)
    return sum(values)  # ints / Fractions / Decimals stay exact


def _sum_exact(values: list):
    """Exact sum as a :class:`fractions.Fraction` (NUMERIC result).

    The partial-aggregate building block of sharded execution: per-shard
    partial sums are computed exactly (floats have power-of-two
    denominators, so the accumulator is one big integer plus a binary
    shift), merged exactly on the coordinator, and rounded to a float
    *once* — which makes the merged result bit-identical to a
    single-backend ``fsum`` over all the rows regardless of how rows were
    partitioned.
    """
    if not values:
        return None
    acc = 0
    shift = 0
    try:
        for v in values:
            num, den = v.as_integer_ratio()
            dlog = den.bit_length() - 1
            if (1 << dlog) != den:
                # non-binary denominator (Decimal/Fraction input): the
                # shift trick assumes power-of-two denominators; redo
                # the whole sum with exact rational arithmetic
                return sum(Fraction(*u.as_integer_ratio()) for u in values)
            if dlog > shift:
                acc <<= dlog - shift
                shift = dlog
            acc += num << (shift - dlog)
    except (AttributeError, OverflowError, ValueError):
        # non-finite floats (or exotic types): exactness is meaningless,
        # degrade to the correctly-rounded float sum
        return _float_sum(float(v) for v in values)
    if shift == 0:
        return acc
    return Fraction(acc, 1 << shift)


def _stddev(values: list, sample: bool):
    n = len(values)
    if n < (2 if sample else 1):
        return None
    mean = _float_sum(float(v) for v in values) / n
    ss = _float_sum((float(v) - mean) ** 2 for v in values)
    return math.sqrt(ss / (n - 1 if sample else n))


def _variance(values: list, sample: bool):
    n = len(values)
    if n < (2 if sample else 1):
        return None
    mean = _float_sum(float(v) for v in values) / n
    ss = _float_sum((float(v) - mean) ** 2 for v in values)
    return ss / (n - 1 if sample else n)


AGGREGATES: dict[str, Callable[[list], object]] = {
    "count": len,
    "sum": _sum,
    "sum_exact": _sum_exact,
    "avg": _avg,
    "min": lambda vs: min(vs) if vs else None,
    "max": lambda vs: max(vs) if vs else None,
    "stddev": lambda vs: _stddev(vs, sample=True),
    "stddev_samp": lambda vs: _stddev(vs, sample=True),
    "stddev_pop": lambda vs: _stddev(vs, sample=False),
    "variance": lambda vs: _variance(vs, sample=True),
    "var_samp": lambda vs: _variance(vs, sample=True),
    "var_pop": lambda vs: _variance(vs, sample=False),
    "bool_and": lambda vs: all(vs) if vs else None,
    "bool_or": lambda vs: any(vs) if vs else None,
    "string_agg": lambda vs: None,  # handled specially (separator arg)
    "array_agg": lambda vs: list(vs) if vs else None,
    "median": lambda vs: _median(vs),
    # first/last are not stock PostgreSQL; they belong to the "toolbox" of
    # UDFs the paper (Section 5) describes shipping for Q parity.  They see
    # NULLs (q's first/last do not skip nulls).
    "first": lambda vs: vs[0] if vs else None,
    "last": lambda vs: vs[-1] if vs else None,
}

#: Aggregates that must receive NULL inputs rather than having them skipped.
NULL_KEEPING_AGGREGATES = {"first", "last", "array_agg"}


def _median(values: list):
    if not values:
        return None
    ordered = sorted(float(v) for v in values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def is_aggregate(name: str) -> bool:
    return name in AGGREGATES


def aggregate_result_type(name: str, arg_type: SqlType) -> SqlType:
    if name == "count":
        return SqlType.BIGINT
    if name in ("avg", "stddev", "stddev_samp", "stddev_pop", "variance",
                "var_samp", "var_pop", "median"):
        return SqlType.DOUBLE
    if name == "sum_exact":
        return SqlType.NUMERIC
    if name in ("bool_and", "bool_or"):
        return SqlType.BOOLEAN
    if name == "string_agg":
        return SqlType.TEXT
    return arg_type if arg_type != SqlType.NULL else SqlType.DOUBLE


def compute_aggregate(name: str, values: list, extra_args: list | None = None):
    """Compute aggregate ``name`` over non-NULL ``values``."""
    if name == "string_agg":
        separator = extra_args[0] if extra_args else ","
        return separator.join(str(v) for v in values) if values else None
    fn = AGGREGATES.get(name)
    if fn is None:
        raise SqlExecutionError(f"unknown aggregate {name!r}")
    return fn(values)


# ---------------------------------------------------------------------------
# Window functions (rank-style; aggregate-over-window handled by executor)
# ---------------------------------------------------------------------------

RANKING_WINDOW_FUNCTIONS = {
    "row_number",
    "rank",
    "dense_rank",
    "ntile",
    "lead",
    "lag",
    "first_value",
    "last_value",
    "nth_value",
}


def is_window_capable(name: str) -> bool:
    return name in RANKING_WINDOW_FUNCTIONS or is_aggregate(name)
