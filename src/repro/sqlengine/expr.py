"""Scalar expression evaluation with PostgreSQL three-valued logic.

``None`` is SQL NULL.  Comparisons involving NULL yield NULL; ``AND``/``OR``
follow Kleene logic; ``IS NOT DISTINCT FROM`` provides the null-safe
equality that Hyper-Q uses to bridge Q's two-valued semantics (paper
Section 3.3, "Correctness").
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import SqlExecutionError, SqlTypeError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.functions import (
    SCALAR_FUNCTIONS,
    aggregate_result_type,
    is_aggregate,
    scalar_result_type,
)
from repro.sqlengine.types import SqlType, cast_value, promote


class Scope:
    """Column resolution for one row, chainable for correlated subqueries."""

    __slots__ = ("by_qualified", "by_name", "ambiguous", "row", "parent")

    def __init__(
        self,
        by_qualified: dict[tuple[str, str], int],
        by_name: dict[str, int],
        ambiguous: set[str],
        row: tuple,
        parent: "Scope | None" = None,
    ):
        self.by_qualified = by_qualified
        self.by_name = by_name
        self.ambiguous = ambiguous
        self.row = row
        self.parent = parent

    def lookup(self, ref: sa.ColumnRef):
        index = self.find(ref)
        if index is None:
            raise SqlExecutionError(f'column "{ref.display}" does not exist')
        scope: Scope | None = self
        while scope is not None:
            idx = scope._local_index(ref)
            if idx is not None:
                return scope.row[idx]
            scope = scope.parent
        raise SqlExecutionError(f'column "{ref.display}" does not exist')

    def find(self, ref: sa.ColumnRef) -> int | None:
        scope: Scope | None = self
        while scope is not None:
            idx = scope._local_index(ref)
            if idx is not None:
                return idx
            scope = scope.parent
        return None

    def _local_index(self, ref: sa.ColumnRef) -> int | None:
        if ref.table is not None:
            return self.by_qualified.get((ref.table, ref.name))
        if ref.name in self.ambiguous:
            raise SqlExecutionError(f'column reference "{ref.name}" is ambiguous')
        return self.by_name.get(ref.name)


class EvalContext:
    """Everything an expression needs: the row scope, precomputed values
    for aggregate/window nodes, and an executor hook for subqueries."""

    __slots__ = ("scope", "replacements", "executor")

    def __init__(self, scope: Scope | None, replacements=None, executor=None):
        self.scope = scope
        self.replacements = replacements
        self.executor = executor


def evaluate(expr: sa.Expr, ctx: EvalContext):
    if ctx.replacements is not None:
        replaced = ctx.replacements.get(id(expr), _MISSING)
        if replaced is not _MISSING:
            return replaced
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise SqlExecutionError(f"cannot evaluate {type(expr).__name__}")
    return handler(expr, ctx)


_MISSING = object()


def _eval_literal(expr: sa.Literal, ctx):
    return expr.value


def _eval_column(expr: sa.ColumnRef, ctx):
    if ctx.scope is None:
        raise SqlExecutionError(f'column "{expr.display}" used without a FROM clause')
    return ctx.scope.lookup(expr)


def _eval_unary(expr: sa.UnaryOp, ctx):
    value = evaluate(expr.operand, ctx)
    if expr.op == "NOT":
        return None if value is None else (not value)
    if value is None:
        return None
    return -value if expr.op == "-" else value


def _numeric_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SqlExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right
    if op == "%":
        if right == 0:
            raise SqlExecutionError("division by zero")
        return left - right * int(left / right)
    raise SqlExecutionError(f"unknown operator {op!r}")


def _compare(op: str, left, right):
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        raise SqlTypeError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from None
    raise SqlExecutionError(f"unknown comparison {op!r}")


def _eval_binary(expr: sa.BinaryOp, ctx):
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, ctx)
        if left is False:
            return False
        right = evaluate(expr.right, ctx)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expr.left, ctx)
        if left is True:
            return True
        right = evaluate(expr.right, ctx)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op == "IS NOT DISTINCT FROM":
        return _null_safe_equal(left, right)
    if op == "IS DISTINCT FROM":
        return not _null_safe_equal(left, right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "||":
        if left is None or right is None:
            return None
        return str(left) + str(right)
    if left is None or right is None:
        return None
    return _numeric_binop(op, left, right)


def _null_safe_equal(left, right) -> bool:
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    return bool(left == right)


def _eval_isnull(expr: sa.IsNull, ctx):
    value = evaluate(expr.operand, ctx)
    return (value is not None) if expr.negated else (value is None)


def _eval_inlist(expr: sa.InList, ctx):
    value = evaluate(expr.operand, ctx)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, ctx)
        if candidate is None:
            saw_null = True
        elif candidate == value:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _eval_between(expr: sa.Between, ctx):
    value = evaluate(expr.operand, ctx)
    low = evaluate(expr.low, ctx)
    high = evaluate(expr.high, ctx)
    if value is None or low is None or high is None:
        return None
    result = low <= value <= high
    return (not result) if expr.negated else result


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _eval_like(expr: sa.LikeOp, ctx):
    value = evaluate(expr.operand, ctx)
    pattern = evaluate(expr.pattern, ctx)
    if value is None or pattern is None:
        return None
    result = bool(_like_to_regex(str(pattern)).match(str(value)))
    return (not result) if expr.negated else result


def _eval_cast(expr: sa.Cast, ctx):
    return cast_value(evaluate(expr.operand, ctx), expr.target)


def _eval_case(expr: sa.Case, ctx):
    if expr.operand is not None:
        subject = evaluate(expr.operand, ctx)
        for condition, result in expr.branches:
            candidate = evaluate(condition, ctx)
            if candidate is not None and subject is not None and candidate == subject:
                return evaluate(result, ctx)
    else:
        for condition, result in expr.branches:
            if evaluate(condition, ctx) is True:
                return evaluate(result, ctx)
    return evaluate(expr.default, ctx) if expr.default is not None else None


def _eval_func(expr: sa.FuncCall, ctx):
    if is_aggregate(expr.name):
        raise SqlExecutionError(
            f"aggregate function {expr.name}() used outside of a grouped query"
        )
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        raise SqlExecutionError(f"function {expr.name}() does not exist")
    args = [evaluate(arg, ctx) for arg in expr.args]
    return fn(*args)


def _eval_window(expr: sa.WindowFunc, ctx):
    raise SqlExecutionError(
        "window function evaluated without window context (executor bug)"
    )


def _eval_scalar_subquery(expr: sa.ScalarSubquery, ctx):
    if ctx.executor is None:
        raise SqlExecutionError("subquery evaluated without an executor")
    result = ctx.executor.execute_select(expr.query, outer=ctx.scope)
    if not result.rows:
        return None
    if len(result.rows) > 1:
        raise SqlExecutionError("more than one row returned by scalar subquery")
    return result.rows[0][0]


def _eval_exists(expr: sa.ExistsSubquery, ctx):
    if ctx.executor is None:
        raise SqlExecutionError("subquery evaluated without an executor")
    result = ctx.executor.execute_select(expr.query, outer=ctx.scope, limit_hint=1)
    found = bool(result.rows)
    return (not found) if expr.negated else found


def _eval_in_subquery(expr: sa.InSubquery, ctx):
    if ctx.executor is None:
        raise SqlExecutionError("subquery evaluated without an executor")
    value = evaluate(expr.operand, ctx)
    if value is None:
        return None
    result = ctx.executor.execute_select(expr.query, outer=ctx.scope)
    saw_null = False
    for row in result.rows:
        if row[0] is None:
            saw_null = True
        elif row[0] == value:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


_HANDLERS = {
    sa.Literal: _eval_literal,
    sa.ColumnRef: _eval_column,
    sa.UnaryOp: _eval_unary,
    sa.BinaryOp: _eval_binary,
    sa.IsNull: _eval_isnull,
    sa.InList: _eval_inlist,
    sa.Between: _eval_between,
    sa.LikeOp: _eval_like,
    sa.Cast: _eval_cast,
    sa.Case: _eval_case,
    sa.FuncCall: _eval_func,
    sa.WindowFunc: _eval_window,
    sa.ScalarSubquery: _eval_scalar_subquery,
    sa.ExistsSubquery: _eval_exists,
    sa.InSubquery: _eval_in_subquery,
}


# ---------------------------------------------------------------------------
# Static type inference (for result metadata)
# ---------------------------------------------------------------------------


def infer_type(
    expr: sa.Expr, column_type: Callable[[sa.ColumnRef], SqlType]
) -> SqlType:
    """Best-effort static type of an expression for RowDescription metadata."""
    if isinstance(expr, sa.Literal):
        return expr.sql_type
    if isinstance(expr, sa.ColumnRef):
        return column_type(expr)
    if isinstance(expr, sa.Cast):
        return expr.target
    if isinstance(expr, sa.UnaryOp):
        if expr.op == "NOT":
            return SqlType.BOOLEAN
        return infer_type(expr.operand, column_type)
    if isinstance(expr, sa.BinaryOp):
        if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">=",
                       "IS NOT DISTINCT FROM", "IS DISTINCT FROM"):
            return SqlType.BOOLEAN
        if expr.op == "||":
            return SqlType.TEXT
        left = infer_type(expr.left, column_type)
        right = infer_type(expr.right, column_type)
        if expr.op == "/" and not (left.is_integral and right.is_integral):
            return SqlType.DOUBLE
        return promote(left, right)
    if isinstance(expr, (sa.IsNull, sa.InList, sa.Between, sa.LikeOp,
                         sa.ExistsSubquery, sa.InSubquery)):
        return SqlType.BOOLEAN
    if isinstance(expr, sa.Case):
        for __, result in expr.branches:
            t = infer_type(result, column_type)
            if t != SqlType.NULL:
                return t
        if expr.default is not None:
            return infer_type(expr.default, column_type)
        return SqlType.NULL
    if isinstance(expr, sa.FuncCall):
        if is_aggregate(expr.name):
            arg_type = (
                infer_type(expr.args[0], column_type) if expr.args else SqlType.BIGINT
            )
            return aggregate_result_type(expr.name, arg_type)
        arg_types = [infer_type(a, column_type) for a in expr.args]
        return scalar_result_type(expr.name, arg_types)
    if isinstance(expr, sa.WindowFunc):
        name = expr.func.name
        if name in ("row_number", "rank", "dense_rank", "ntile"):
            return SqlType.BIGINT
        if name in ("lead", "lag", "first_value", "last_value", "nth_value"):
            return (
                infer_type(expr.func.args[0], column_type)
                if expr.func.args
                else SqlType.NULL
            )
        arg_type = (
            infer_type(expr.func.args[0], column_type)
            if expr.func.args
            else SqlType.BIGINT
        )
        return aggregate_result_type(name, arg_type)
    if isinstance(expr, sa.ScalarSubquery):
        return SqlType.NULL  # refined by executor when metadata available
    return SqlType.NULL
