"""Tokenizer for the SQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SqlSyntaxError


class SqlTokenKind(Enum):
    KEYWORD = auto()  # upper-cased reserved word
    IDENT = auto()  # identifier (normalized: lower unless quoted)
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    SEMI = auto()
    STAR = auto()
    DOT = auto()
    EOF = auto()


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "offset", "as", "and", "or", "not", "null", "true", "false", "is",
    "distinct", "in", "between", "like", "ilike", "case", "when", "then",
    "else", "end", "cast", "join", "inner", "left", "right", "full",
    "outer", "cross", "on", "union", "all", "except", "intersect",
    "create", "temporary", "temp", "table", "view", "replace", "insert",
    "into", "values", "delete", "update", "set", "drop", "truncate",
    "exists", "if", "asc", "desc", "nulls", "first", "last", "over",
    "partition", "rows", "range", "unbounded", "preceding", "following",
    "current", "row",
}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_NUMBER_RE = re.compile(r"\d+(?:\.\d*)?(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?")
_OPERATORS = ["::", "<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "/", "%"]


@dataclass
class SqlToken:
    kind: SqlTokenKind
    text: str
    pos: int
    value: object = None

    def __repr__(self):
        return f"SqlToken({self.kind.name}, {self.text!r})"


def tokenize_sql(source: str) -> list[SqlToken]:
    tokens: list[SqlToken] = []
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if source.startswith("--", pos):
            end = source.find("\n", pos)
            pos = n if end == -1 else end + 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment")
            pos = end + 2
            continue
        if ch == "'":
            end = pos + 1
            chars: list[str] = []
            while end < n:
                if source[end] == "'":
                    if end + 1 < n and source[end + 1] == "'":
                        chars.append("'")
                        end += 2
                        continue
                    break
                chars.append(source[end])
                end += 1
            else:
                raise SqlSyntaxError("unterminated string literal")
            text = source[pos : end + 1]
            tokens.append(
                SqlToken(SqlTokenKind.STRING, text, pos, "".join(chars))
            )
            pos = end + 1
            continue
        if ch == '"':
            end = source.find('"', pos + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier")
            tokens.append(
                SqlToken(SqlTokenKind.IDENT, source[pos : end + 1], pos,
                         source[pos + 1 : end])
            )
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            match = _NUMBER_RE.match(source, pos)
            assert match
            text = match.group(0)
            is_float = "." in text or "e" in text.lower()
            value: object = float(text) if is_float else int(text)
            tokens.append(SqlToken(SqlTokenKind.NUMBER, text, pos, value))
            pos = match.end()
            continue
        if ch.isalpha() or ch == "_":
            match = _IDENT_RE.match(source, pos)
            assert match
            text = match.group(0)
            lowered = text.lower()
            kind = SqlTokenKind.KEYWORD if lowered in KEYWORDS else SqlTokenKind.IDENT
            tokens.append(SqlToken(kind, text, pos, lowered))
            pos = match.end()
            continue
        simple = {
            "(": SqlTokenKind.LPAREN,
            ")": SqlTokenKind.RPAREN,
            ",": SqlTokenKind.COMMA,
            ";": SqlTokenKind.SEMI,
            "*": SqlTokenKind.STAR,
            ".": SqlTokenKind.DOT,
        }
        if ch in simple:
            tokens.append(SqlToken(simple[ch], ch, pos))
            pos += 1
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(SqlToken(SqlTokenKind.OPERATOR, op, pos))
                pos += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {pos}")
    tokens.append(SqlToken(SqlTokenKind.EOF, "", pos))
    return tokens
