"""Window function evaluation.

Hyper-Q's Xformer injects window functions for two purposes (paper
Sections 3.2.2 and 3.3): computing validity intervals on the right input of
an as-of join (``lead``), and generating implicit order columns
(``row_number``).  This module implements those plus the standard ranking
and aggregate-over-window forms with PostgreSQL's default frame semantics.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SqlExecutionError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.functions import compute_aggregate, is_aggregate

#: Sort-key wrapper giving SQL NULL ordering (order_none_last toggles).
def _order_key(value, descending: bool, nulls_first: bool | None):
    if nulls_first is None:
        nulls_first = descending  # PG default: NULLS LAST asc, FIRST desc
    is_null = value is None
    null_rank = 0 if (is_null and nulls_first) else (2 if is_null else 1)
    if is_null:
        return (null_rank, 0)
    return (null_rank, _Reverse(value) if descending else value)


class _Reverse:
    """Inverts comparison for descending sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return other.value == self.value


def compute_window_values(
    node: sa.WindowFunc,
    row_count: int,
    eval_for_row: Callable[[int, sa.Expr], object],
) -> list:
    """Evaluate a window function for every row of the input.

    ``eval_for_row(i, expr)`` evaluates a scalar expression against row i.
    Returns a list of values, one per input row, in input order.
    """
    spec = node.window
    partition_keys = [
        tuple(_hashable(eval_for_row(i, e)) for e in spec.partition_by)
        for i in range(row_count)
    ]
    order_values = [
        [eval_for_row(i, item.expr) for item in spec.order_by]
        for i in range(row_count)
    ]

    partitions: dict[tuple, list[int]] = {}
    for i in range(row_count):
        partitions.setdefault(partition_keys[i], []).append(i)

    results: list = [None] * row_count
    for rows in partitions.values():
        ordered = sorted(
            rows,
            key=lambda i: tuple(
                _order_key(v, item.descending, item.nulls_first)
                for v, item in zip(order_values[i], spec.order_by)
            ),
        )
        _fill_partition(node, ordered, order_values, eval_for_row, results)
    return results


def _hashable(value):
    if isinstance(value, float) and value != value:
        return "__nan__"
    return value


def _peer_groups(ordered: list[int], order_values) -> list[list[int]]:
    """Split an ordered partition into runs of ORDER BY peers."""
    groups: list[list[int]] = []
    for i in ordered:
        if groups and order_values[groups[-1][0]] == order_values[i]:
            groups[-1].append(i)
        else:
            groups.append([i])
    return groups


def _fill_partition(
    node: sa.WindowFunc,
    ordered: list[int],
    order_values,
    eval_for_row,
    results: list,
) -> None:
    name = node.func.name
    spec = node.window
    args = node.func.args

    if name == "row_number":
        for pos, i in enumerate(ordered, start=1):
            results[i] = pos
        return
    if name in ("rank", "dense_rank"):
        rank = 0
        position = 0
        for group in _peer_groups(ordered, order_values):
            position += len(group)
            rank = rank + 1 if name == "dense_rank" else position - len(group) + 1
            for i in group:
                results[i] = rank
        return
    if name == "ntile":
        buckets = int(eval_for_row(ordered[0], args[0])) if args else 1
        n = len(ordered)
        for pos, i in enumerate(ordered):
            results[i] = pos * buckets // n + 1
        return
    if name in ("lead", "lag"):
        offset = 1
        if len(args) >= 2:
            offset = int(eval_for_row(ordered[0], args[1]))
        default = None
        if len(args) >= 3:
            default = eval_for_row(ordered[0], args[2])
        direction = 1 if name == "lead" else -1
        for pos, i in enumerate(ordered):
            target = pos + direction * offset
            if 0 <= target < len(ordered):
                results[i] = eval_for_row(ordered[target], args[0])
            else:
                results[i] = default
        return
    if name in ("first_value", "last_value", "nth_value"):
        _fill_value_functions(node, ordered, order_values, eval_for_row, results)
        return
    if is_aggregate(name):
        _fill_window_aggregate(node, ordered, order_values, eval_for_row, results)
        return
    raise SqlExecutionError(f"unsupported window function {name}()")


def _frame_is_full_partition(spec: sa.WindowSpec) -> bool:
    if not spec.order_by:
        return True
    if spec.frame is None:
        return False
    return "unbounded following" in spec.frame


def _fill_value_functions(
    node, ordered, order_values, eval_for_row, results
) -> None:
    name = node.func.name
    spec = node.window
    args = node.func.args
    values = [eval_for_row(i, args[0]) for i in ordered]
    full = _frame_is_full_partition(spec)
    if name == "first_value":
        for pos, i in enumerate(ordered):
            results[i] = values[0]
        return
    if name == "nth_value":
        n = int(eval_for_row(ordered[0], args[1]))
        for pos, i in enumerate(ordered):
            frame_end = len(ordered) if full else _peer_end(ordered, order_values, pos)
            results[i] = values[n - 1] if n - 1 < frame_end else None
        return
    # last_value: default frame ends at the current row's last peer
    for pos, i in enumerate(ordered):
        frame_end = len(ordered) if full else _peer_end(ordered, order_values, pos)
        results[i] = values[frame_end - 1]


def _peer_end(ordered, order_values, pos: int) -> int:
    """Index one past the last ORDER BY peer of ordered[pos]."""
    current = order_values[ordered[pos]]
    end = pos + 1
    while end < len(ordered) and order_values[ordered[end]] == current:
        end += 1
    return end


import re as _re

_N_PRECEDING_RE = _re.compile(
    r"rows\s+between\s+(\d+)\s+preceding\s+and\s+current\s+row"
)


def _fill_window_aggregate(
    node, ordered, order_values, eval_for_row, results
) -> None:
    name = node.func.name
    spec = node.window
    args = node.func.args
    star = node.func.star
    if star or not args:
        values: list = [1] * len(ordered)
        star = True
    else:
        values = [eval_for_row(i, args[0]) for i in ordered]
    from repro.sqlengine.functions import NULL_KEEPING_AGGREGATES

    keep_nulls = name in NULL_KEEPING_AGGREGATES
    if spec.frame is not None:
        match = _N_PRECEDING_RE.match(spec.frame)
        if match:
            lookback = int(match.group(1))
            for pos, i in enumerate(ordered):
                lo = max(0, pos - lookback)
                frame_values = [
                    v
                    for v in values[lo : pos + 1]
                    if v is not None or keep_nulls
                ]
                if star and name == "count":
                    results[i] = pos + 1 - lo
                else:
                    results[i] = compute_aggregate(name, frame_values)
            return
    full = _frame_is_full_partition(spec)
    rows_frame = spec.frame is not None and spec.frame.startswith("rows")
    if full:
        window_values = [v for v in values if v is not None or keep_nulls]
        total = compute_aggregate(name, window_values)
        if name == "count" and star:
            total = len(ordered)
        for i in ordered:
            results[i] = total
        return
    # running aggregate: frame = start .. current row (peers included unless
    # a ROWS frame was given)
    for pos, i in enumerate(ordered):
        end = pos + 1 if rows_frame else _peer_end(ordered, order_values, pos)
        if star and name == "count":
            results[i] = end
            continue
        frame_values = [v for v in values[:end] if v is not None or keep_nulls]
        results[i] = compute_aggregate(name, frame_values)
