"""SQL type system for the PostgreSQL-compatible engine substrate.

SQL values are plain Python payloads with ``None`` as NULL, matching the
three-valued-logic evaluator in :mod:`repro.sqlengine.expr`.  Temporal
values reuse the kdb+ integer encodings from :mod:`repro.qlang.qtypes` so
the Hyper-Q result pipeline never needs lossy conversions (dates are days
since 2000.01.01, times are milliseconds since midnight, timestamps are
nanoseconds since 2000.01.01).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SqlTypeError


class SqlType(Enum):
    BOOLEAN = "boolean"
    SMALLINT = "smallint"
    INTEGER = "integer"
    BIGINT = "bigint"
    REAL = "real"
    DOUBLE = "double precision"
    NUMERIC = "numeric"
    VARCHAR = "varchar"
    TEXT = "text"
    CHAR = "char"
    DATE = "date"
    TIME = "time"
    TIMESTAMP = "timestamp"
    INTERVAL = "interval"
    UUID = "uuid"
    NULL = "null"  # the type of a bare NULL literal

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC

    @property
    def is_integral(self) -> bool:
        return self in (SqlType.SMALLINT, SqlType.INTEGER, SqlType.BIGINT)

    @property
    def is_text(self) -> bool:
        return self in (SqlType.VARCHAR, SqlType.TEXT, SqlType.CHAR)

    @property
    def is_temporal(self) -> bool:
        return self in (SqlType.DATE, SqlType.TIME, SqlType.TIMESTAMP, SqlType.INTERVAL)


_NUMERIC = {
    SqlType.SMALLINT,
    SqlType.INTEGER,
    SqlType.BIGINT,
    SqlType.REAL,
    SqlType.DOUBLE,
    SqlType.NUMERIC,
}

#: Parseable type names (normalized to lower case, spaces collapsed).
_TYPE_NAMES = {
    "boolean": SqlType.BOOLEAN,
    "bool": SqlType.BOOLEAN,
    "smallint": SqlType.SMALLINT,
    "int2": SqlType.SMALLINT,
    "integer": SqlType.INTEGER,
    "int": SqlType.INTEGER,
    "int4": SqlType.INTEGER,
    "bigint": SqlType.BIGINT,
    "int8": SqlType.BIGINT,
    "real": SqlType.REAL,
    "float4": SqlType.REAL,
    "double precision": SqlType.DOUBLE,
    "float8": SqlType.DOUBLE,
    "float": SqlType.DOUBLE,
    "numeric": SqlType.NUMERIC,
    "decimal": SqlType.NUMERIC,
    "varchar": SqlType.VARCHAR,
    "character varying": SqlType.VARCHAR,
    "text": SqlType.TEXT,
    "char": SqlType.CHAR,
    "character": SqlType.CHAR,
    "date": SqlType.DATE,
    "time": SqlType.TIME,
    "timestamp": SqlType.TIMESTAMP,
    "interval": SqlType.INTERVAL,
    "uuid": SqlType.UUID,
}


def type_from_name(name: str) -> SqlType:
    """Resolve a SQL type name, ignoring length arguments like varchar(10)."""
    base = name.strip().lower()
    if "(" in base:
        base = base[: base.index("(")].strip()
    try:
        return _TYPE_NAMES[base]
    except KeyError:
        raise SqlTypeError(f"unknown SQL type {name!r}") from None


def promote(left: SqlType, right: SqlType) -> SqlType:
    """Result type of an arithmetic operation."""
    if left == SqlType.NULL:
        return right
    if right == SqlType.NULL:
        return left
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        order = [
            SqlType.SMALLINT,
            SqlType.INTEGER,
            SqlType.BIGINT,
            SqlType.NUMERIC,
            SqlType.REAL,
            SqlType.DOUBLE,
        ]
        return order[max(order.index(left), order.index(right))]
    if left.is_temporal and right.is_numeric:
        return left
    if left.is_numeric and right.is_temporal:
        return right
    if left.is_temporal and right.is_temporal:
        return SqlType.INTERVAL
    if left.is_text and right.is_text:
        return SqlType.TEXT
    raise SqlTypeError(
        f"cannot combine {left.value} and {right.value} arithmetically"
    )


def cast_value(value, target: SqlType):
    """Cast a runtime value to ``target``; NULL always passes through."""
    if value is None:
        return None
    if target == SqlType.BOOLEAN:
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("t", "true", "1", "yes", "on"):
                return True
            if lowered in ("f", "false", "0", "no", "off"):
                return False
            raise SqlTypeError(f"invalid boolean literal {value!r}")
        return bool(value)
    if target.is_integral:
        if isinstance(value, str):
            return int(value.strip())
        if isinstance(value, bool):
            return int(value)
        return int(value)
    if target in (SqlType.REAL, SqlType.DOUBLE, SqlType.NUMERIC):
        if isinstance(value, str):
            return float(value.strip())
        return float(value)
    if target.is_text:
        if isinstance(value, bool):
            return "t" if value else "f"
        return str(value)
    if target.is_temporal:
        if isinstance(value, str):
            return _parse_temporal_text(value, target)
        return int(value)
    if target == SqlType.UUID:
        return str(value)
    raise SqlTypeError(f"cannot cast to {target.value}")


def _parse_temporal_text(text: str, target: SqlType) -> int:
    """Parse ISO-ish temporal literals into kdb+ integer encodings."""
    from repro.qlang.lexer import days_from_2000

    text = text.strip()
    if target == SqlType.DATE:
        y, m, d = (int(p) for p in text.split("-"))
        return days_from_2000(y, m, d)
    if target == SqlType.TIME:
        parts = text.split(":")
        seconds_part = parts[2] if len(parts) > 2 else "0"
        if "." in seconds_part:
            sec, frac = seconds_part.split(".")
            millis = int(frac.ljust(3, "0")[:3])
        else:
            sec, millis = seconds_part, 0
        return (int(parts[0]) * 3600 + int(parts[1]) * 60 + int(sec)) * 1000 + millis
    if target == SqlType.TIMESTAMP:
        if " " in text:
            date_part, time_part = text.split(" ", 1)
        elif "T" in text:
            date_part, time_part = text.split("T", 1)
        else:
            date_part, time_part = text, "00:00:00"
        y, m, d = (int(p) for p in date_part.split("-"))
        parts = time_part.split(":")
        seconds_part = parts[2] if len(parts) > 2 else "0"
        if "." in seconds_part:
            sec, frac = seconds_part.split(".")
            nanos = int(frac.ljust(9, "0")[:9])
        else:
            sec, nanos = seconds_part, 0
        day_nanos = (
            int(parts[0]) * 3600 + int(parts[1]) * 60 + int(sec)
        ) * 1_000_000_000 + nanos
        return days_from_2000(y, m, d) * 86_400_000_000_000 + day_nanos
    if target == SqlType.INTERVAL:
        return int(text)
    raise SqlTypeError(f"cannot parse {text!r} as {target.value}")


def _parse_boolean_text(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("t", "true", "1", "yes", "on"):
        return True
    if lowered in ("f", "false", "0", "no", "off"):
        return False
    raise SqlTypeError(f"invalid boolean literal {text!r}")


def text_decoder(sql_type: SqlType):
    """One ``bytes -> value`` converter for a whole result column.

    The gateway resolves this once per column at RowDescription time, so
    decoding a DataRow cell is a single call instead of a decode plus a
    ``cast_value`` type dispatch per cell.  Each converter matches what
    ``cast_value(cell.decode("utf-8"), sql_type)`` produced for the PG
    text-format payloads the backend sends.
    """
    if sql_type.is_integral:
        return int  # int() accepts ascii bytes, whitespace included
    if sql_type in (SqlType.REAL, SqlType.DOUBLE, SqlType.NUMERIC):
        return float
    if sql_type == SqlType.BOOLEAN:
        return lambda cell: _parse_boolean_text(cell.decode("utf-8"))
    if sql_type.is_temporal:
        return lambda cell: _parse_temporal_text(cell.decode("utf-8"), sql_type)
    # text, uuid, and anything unrecognized travel as their utf-8 text
    return lambda cell: cell.decode("utf-8")


def render_value(value, sql_type: SqlType) -> str:
    """Text rendering of a value the way PG's text protocol format would."""
    if value is None:
        return "NULL"
    if sql_type == SqlType.BOOLEAN:
        return "t" if value else "f"
    if sql_type == SqlType.DATE:
        from repro.qlang.lexer import date_from_days

        y, m, d = date_from_days(value)
        return f"{y:04d}-{m:02d}-{d:02d}"
    if sql_type == SqlType.TIME:
        ms = value % 1000
        s = value // 1000
        return f"{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}.{ms:03d}"
    if sql_type == SqlType.TIMESTAMP:
        from repro.qlang.lexer import date_from_days

        days, nanos = divmod(value, 86_400_000_000_000)
        y, m, d = date_from_days(days)
        s, frac = divmod(nanos, 1_000_000_000)
        return (
            f"{y:04d}-{m:02d}-{d:02d} {s // 3600:02d}:{s % 3600 // 60:02d}:"
            f"{s % 60:02d}.{frac // 1000:06d}"
        )
    return str(value)
