"""Recursive-descent parser for the SQL subset.

Covers everything the Hyper-Q serializer emits (SELECT with joins, window
functions, ``IS NOT DISTINCT FROM``, ``::`` casts, ``CREATE TEMPORARY
TABLE ... AS``, views) plus DML/DDL used by tests and the metadata layer.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.lexer import SqlToken, SqlTokenKind, tokenize_sql
from repro.sqlengine.types import SqlType, type_from_name

_TYPE_KEYWORD_STARTS = {
    "boolean", "bool", "smallint", "integer", "int", "bigint", "real",
    "double", "float", "numeric", "decimal", "varchar", "character",
    "text", "char", "date", "time", "timestamp", "interval", "uuid",
}


class SqlParser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize_sql(source)
        self.index = 0

    # -- token helpers --------------------------------------------------------

    @property
    def current(self) -> SqlToken:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> SqlToken:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> SqlToken:
        token = self.current
        if token.kind != SqlTokenKind.EOF:
            self.index += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.kind == SqlTokenKind.KEYWORD and token.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self._error(f"expected {word.upper()}")

    def expect(self, kind: SqlTokenKind) -> SqlToken:
        if self.current.kind != kind:
            raise self._error(f"expected {kind.name}")
        return self.advance()

    def _error(self, message: str) -> SqlSyntaxError:
        token = self.current
        return SqlSyntaxError(
            f"{message} at position {token.pos} (near {token.text!r})"
        )

    # -- entry ----------------------------------------------------------------

    def parse_statements(self) -> list[sa.Statement]:
        statements: list[sa.Statement] = []
        while self.current.kind != SqlTokenKind.EOF:
            if self.current.kind == SqlTokenKind.SEMI:
                self.advance()
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> sa.Statement:
        if self.at_keyword("select"):
            return self.parse_select()
        if self.at_keyword("create"):
            return self._parse_create()
        if self.at_keyword("insert"):
            return self._parse_insert()
        if self.at_keyword("delete"):
            return self._parse_delete()
        if self.at_keyword("update"):
            return self._parse_update()
        if self.at_keyword("drop"):
            return self._parse_drop()
        if self.at_keyword("truncate"):
            self.advance()
            self.accept_keyword("table")
            return sa.Truncate(self._parse_qualified_name()[1])
        raise self._error("expected a statement")

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> sa.Select:
        left = self._parse_select_core()
        while self.at_keyword("union", "except", "intersect"):
            op = self.advance().value
            if op == "union" and self.accept_keyword("all"):
                op = "union all"
            right = self._parse_select_core()
            left = self._combine(left, op, right)
        # trailing ORDER BY / LIMIT apply to the combined query
        if self.at_keyword("order"):
            left.order_by = self._parse_order_by()
        if self.at_keyword("limit"):
            self.advance()
            left.limit = self.parse_expr()
        if self.at_keyword("offset"):
            self.advance()
            left.offset = self.parse_expr()
        return left

    @staticmethod
    def _combine(left: sa.Select, op: str, right: sa.Select) -> sa.Select:
        if left.set_op is None:
            left.set_op = op
            left.set_right = right
            return left
        # chain: wrap
        combined = sa.Select(items=[sa.SelectItem(sa.Star())])
        combined.from_clause = sa.SubqueryRef(left, alias="__setop")
        combined.set_op = op
        combined.set_right = right
        return combined

    def _parse_select_core(self) -> sa.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self.current.kind == SqlTokenKind.COMMA:
            self.advance()
            items.append(self._parse_select_item())
        select = sa.Select(items=items, distinct=distinct)
        if self.accept_keyword("from"):
            select.from_clause = self._parse_table_expr()
        if self.accept_keyword("where"):
            select.where = self.parse_expr()
        if self.at_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            select.group_by.append(self.parse_expr())
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                select.group_by.append(self.parse_expr())
        if self.accept_keyword("having"):
            select.having = self.parse_expr()
        if self.at_keyword("order") and not self._order_belongs_to_outer():
            select.order_by = self._parse_order_by()
        if self.at_keyword("limit"):
            self.advance()
            select.limit = self.parse_expr()
        if self.at_keyword("offset"):
            self.advance()
            select.offset = self.parse_expr()
        return select

    def _order_belongs_to_outer(self) -> bool:
        # ORDER BY directly after a core select belongs to it unless we are
        # inside a set operation — handled conservatively: core takes it.
        return False

    def _parse_order_by(self) -> list[sa.OrderItem]:
        self.expect_keyword("order")
        self.expect_keyword("by")
        out = [self._parse_order_item()]
        while self.current.kind == SqlTokenKind.COMMA:
            self.advance()
            out.append(self._parse_order_item())
        return out

    def _parse_order_item(self) -> sa.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("asc"):
            descending = False
        elif self.accept_keyword("desc"):
            descending = True
        nulls_first: bool | None = None
        if self.accept_keyword("nulls"):
            if self.accept_keyword("first"):
                nulls_first = True
            else:
                self.expect_keyword("last")
                nulls_first = False
        return sa.OrderItem(expr, descending, nulls_first)

    def _parse_select_item(self) -> sa.SelectItem:
        if self.current.kind == SqlTokenKind.STAR:
            self.advance()
            return sa.SelectItem(sa.Star())
        if (
            self.current.kind == SqlTokenKind.IDENT
            and self.peek().kind == SqlTokenKind.DOT
            and self.peek(2).kind == SqlTokenKind.STAR
        ):
            table = self.advance().value
            self.advance()
            self.advance()
            return sa.SelectItem(sa.Star(table=str(table)))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = str(self._parse_name())
        elif self.current.kind == SqlTokenKind.IDENT:
            alias = str(self.advance().value)
        return sa.SelectItem(expr, alias)

    # -- FROM -----------------------------------------------------------------

    def _parse_table_expr(self) -> sa.TableExpr:
        left = self._parse_table_primary()
        while True:
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                right = self._parse_table_primary()
                left = sa.Join("cross", left, right)
                continue
            kind = None
            if self.at_keyword("join"):
                kind = "inner"
            elif self.at_keyword("inner"):
                self.advance()
                kind = "inner"
            elif self.at_keyword("left"):
                self.advance()
                self.accept_keyword("outer")
                kind = "left"
            elif self.at_keyword("right"):
                self.advance()
                self.accept_keyword("outer")
                kind = "right"
            elif self.at_keyword("full"):
                self.advance()
                self.accept_keyword("outer")
                kind = "full"
            if kind is None:
                if self.current.kind == SqlTokenKind.COMMA:
                    self.advance()
                    right = self._parse_table_primary()
                    left = sa.Join("cross", left, right)
                    continue
                return left
            self.expect_keyword("join")
            right = self._parse_table_primary()
            self.expect_keyword("on")
            condition = self.parse_expr()
            left = sa.Join(kind, left, right, condition)

    def _parse_table_primary(self) -> sa.TableExpr:
        if self.current.kind == SqlTokenKind.LPAREN:
            self.advance()
            query = self.parse_select()
            self.expect(SqlTokenKind.RPAREN)
            self.accept_keyword("as")
            alias = str(self._parse_name())
            return sa.SubqueryRef(query, alias)
        schema, name = self._parse_qualified_name()
        alias = None
        if self.accept_keyword("as"):
            alias = str(self._parse_name())
        elif self.current.kind == SqlTokenKind.IDENT:
            alias = str(self.advance().value)
        return sa.TableRef(name, alias, schema)

    def _parse_qualified_name(self) -> tuple[str | None, str]:
        first = str(self._parse_name())
        if self.current.kind == SqlTokenKind.DOT:
            self.advance()
            second = str(self._parse_name())
            return first, second
        return None, first

    def _parse_name(self) -> str:
        token = self.current
        if token.kind == SqlTokenKind.IDENT:
            self.advance()
            return str(token.value)
        if token.kind == SqlTokenKind.KEYWORD:
            # permissive: allow non-reserved keywords as names
            self.advance()
            return str(token.value)
        raise self._error("expected an identifier")

    # -- DDL / DML --------------------------------------------------------------

    def _parse_create(self) -> sa.Statement:
        self.expect_keyword("create")
        or_replace = False
        if self.accept_keyword("or"):
            self.expect_keyword("replace")
            or_replace = True
        temporary = self.accept_keyword("temporary") or self.accept_keyword("temp")
        if self.accept_keyword("view"):
            __, name = self._parse_qualified_name()
            self.expect_keyword("as")
            query = self.parse_select()
            return sa.CreateView(name, query, or_replace=or_replace)
        self.expect_keyword("table")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        __, name = self._parse_qualified_name()
        if self.accept_keyword("as"):
            query = self.parse_select()
            return sa.CreateTableAs(name, query, temporary=temporary)
        self.expect(SqlTokenKind.LPAREN)
        columns = [self._parse_column_def()]
        while self.current.kind == SqlTokenKind.COMMA:
            self.advance()
            columns.append(self._parse_column_def())
        self.expect(SqlTokenKind.RPAREN)
        return sa.CreateTable(
            name, columns, temporary=temporary, if_not_exists=if_not_exists
        )

    def _parse_column_def(self) -> sa.ColumnDef:
        name = str(self._parse_name())
        type_text = self._parse_type_name()
        return sa.ColumnDef(name, type_from_name(type_text), type_text)

    def _parse_type_name(self) -> str:
        parts = [str(self._parse_name())]
        # double precision / character varying
        if parts[0] in ("double", "character") and self.current.kind in (
            SqlTokenKind.IDENT,
            SqlTokenKind.KEYWORD,
        ):
            parts.append(str(self.advance().value))
        text = " ".join(parts)
        if self.current.kind == SqlTokenKind.LPAREN:
            self.advance()
            args = [str(self.expect(SqlTokenKind.NUMBER).text)]
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                args.append(str(self.expect(SqlTokenKind.NUMBER).text))
            self.expect(SqlTokenKind.RPAREN)
            text += "(" + ",".join(args) + ")"
        return text

    def _parse_insert(self) -> sa.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        __, table = self._parse_qualified_name()
        columns: list[str] = []
        if self.current.kind == SqlTokenKind.LPAREN:
            self.advance()
            columns.append(str(self._parse_name()))
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                columns.append(str(self._parse_name()))
            self.expect(SqlTokenKind.RPAREN)
        if self.accept_keyword("values"):
            rows = [self._parse_value_row()]
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                rows.append(self._parse_value_row())
            return sa.Insert(table, columns, rows=rows)
        query = self.parse_select()
        return sa.Insert(table, columns, query=query)

    def _parse_value_row(self) -> list[sa.Expr]:
        self.expect(SqlTokenKind.LPAREN)
        row = [self.parse_expr()]
        while self.current.kind == SqlTokenKind.COMMA:
            self.advance()
            row.append(self.parse_expr())
        self.expect(SqlTokenKind.RPAREN)
        return row

    def _parse_delete(self) -> sa.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        __, table = self._parse_qualified_name()
        where = self.parse_expr() if self.accept_keyword("where") else None
        return sa.Delete(table, where)

    def _parse_update(self) -> sa.Update:
        self.expect_keyword("update")
        __, table = self._parse_qualified_name()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.current.kind == SqlTokenKind.COMMA:
            self.advance()
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return sa.Update(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, sa.Expr]:
        name = str(self._parse_name())
        token = self.current
        if token.kind != SqlTokenKind.OPERATOR or token.text != "=":
            raise self._error("expected '=' in UPDATE assignment")
        self.advance()
        return name, self.parse_expr()

    def _parse_drop(self) -> sa.DropTable:
        self.expect_keyword("drop")
        is_view = self.accept_keyword("view")
        if not is_view:
            self.expect_keyword("table")
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        __, name = self._parse_qualified_name()
        return sa.DropTable(name, if_exists=if_exists, is_view=is_view)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> sa.Expr:
        return self._parse_or()

    def _parse_or(self) -> sa.Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = sa.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> sa.Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = sa.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> sa.Expr:
        if self.accept_keyword("not"):
            return sa.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> sa.Expr:
        left = self._parse_additive()
        while True:
            token = self.current
            if token.kind == SqlTokenKind.OPERATOR and token.text in (
                "=", "<>", "!=", "<", "<=", ">", ">=",
            ):
                op = "<>" if token.text == "!=" else token.text
                self.advance()
                left = sa.BinaryOp(op, left, self._parse_additive())
                continue
            if self.at_keyword("is"):
                self.advance()
                negated = self.accept_keyword("not")
                if self.accept_keyword("null"):
                    left = sa.IsNull(left, negated=negated)
                    continue
                if self.accept_keyword("distinct"):
                    self.expect_keyword("from")
                    right = self._parse_additive()
                    op = "IS NOT DISTINCT FROM" if negated else "IS DISTINCT FROM"
                    left = sa.BinaryOp(op, left, right)
                    continue
                if self.accept_keyword("true"):
                    target: sa.Expr = sa.Literal(True)
                elif self.accept_keyword("false"):
                    target = sa.Literal(False)
                else:
                    raise self._error("unsupported IS predicate")
                compare = sa.BinaryOp("IS NOT DISTINCT FROM", left, target)
                left = sa.UnaryOp("NOT", compare) if negated else compare
                continue
            negated = False
            if self.at_keyword("not") and self.peek().kind == SqlTokenKind.KEYWORD and \
                    self.peek().value in ("in", "between", "like", "ilike"):
                self.advance()
                negated = True
            if self.accept_keyword("in"):
                self.expect(SqlTokenKind.LPAREN)
                if self.at_keyword("select"):
                    query = self.parse_select()
                    self.expect(SqlTokenKind.RPAREN)
                    left = sa.InSubquery(left, query, negated=negated)
                    continue
                items = [self.parse_expr()]
                while self.current.kind == SqlTokenKind.COMMA:
                    self.advance()
                    items.append(self.parse_expr())
                self.expect(SqlTokenKind.RPAREN)
                left = sa.InList(left, items, negated=negated)
                continue
            if self.accept_keyword("between"):
                low = self._parse_additive()
                self.expect_keyword("and")
                high = self._parse_additive()
                left = sa.Between(left, low, high, negated=negated)
                continue
            if self.accept_keyword("like") or self.accept_keyword("ilike"):
                pattern = self._parse_additive()
                left = sa.LikeOp(left, pattern, negated=negated)
                continue
            if negated:
                raise self._error("dangling NOT")
            return left

    def _parse_additive(self) -> sa.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.current
            if token.kind == SqlTokenKind.OPERATOR and token.text in ("+", "-", "||"):
                self.advance()
                left = sa.BinaryOp(token.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> sa.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind == SqlTokenKind.STAR:
                self.advance()
                left = sa.BinaryOp("*", left, self._parse_unary())
            elif token.kind == SqlTokenKind.OPERATOR and token.text in ("/", "%"):
                self.advance()
                left = sa.BinaryOp(token.text, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> sa.Expr:
        token = self.current
        if token.kind == SqlTokenKind.OPERATOR and token.text in ("-", "+"):
            self.advance()
            return sa.UnaryOp(token.text, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> sa.Expr:
        expr = self._parse_primary()
        while self.current.kind == SqlTokenKind.OPERATOR and self.current.text == "::":
            self.advance()
            type_text = self._parse_type_name()
            expr = sa.Cast(expr, type_from_name(type_text), type_text)
        return expr

    def _parse_primary(self) -> sa.Expr:
        token = self.current
        if token.kind == SqlTokenKind.NUMBER:
            self.advance()
            sql_type = (
                SqlType.BIGINT if isinstance(token.value, int) else SqlType.DOUBLE
            )
            return sa.Literal(token.value, sql_type)
        if token.kind == SqlTokenKind.STRING:
            self.advance()
            return sa.Literal(token.value, SqlType.TEXT)
        if self.accept_keyword("null"):
            return sa.Literal(None, SqlType.NULL)
        if self.accept_keyword("true"):
            return sa.Literal(True, SqlType.BOOLEAN)
        if self.accept_keyword("false"):
            return sa.Literal(False, SqlType.BOOLEAN)
        if self.at_keyword("case"):
            return self._parse_case()
        if self.at_keyword("cast"):
            self.advance()
            self.expect(SqlTokenKind.LPAREN)
            operand = self.parse_expr()
            self.expect_keyword("as")
            type_text = self._parse_type_name()
            self.expect(SqlTokenKind.RPAREN)
            return sa.Cast(operand, type_from_name(type_text), type_text)
        if self.at_keyword("exists"):
            self.advance()
            self.expect(SqlTokenKind.LPAREN)
            query = self.parse_select()
            self.expect(SqlTokenKind.RPAREN)
            return sa.ExistsSubquery(query)
        if token.kind == SqlTokenKind.LPAREN:
            self.advance()
            if self.at_keyword("select"):
                query = self.parse_select()
                self.expect(SqlTokenKind.RPAREN)
                return sa.ScalarSubquery(query)
            expr = self.parse_expr()
            self.expect(SqlTokenKind.RPAREN)
            return expr
        if token.kind in (SqlTokenKind.IDENT, SqlTokenKind.KEYWORD):
            return self._parse_name_or_call()
        raise self._error("expected an expression")

    def _parse_case(self) -> sa.Expr:
        self.expect_keyword("case")
        operand = None
        if not self.at_keyword("when"):
            operand = self.parse_expr()
        branches: list[tuple[sa.Expr, sa.Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            result = self.parse_expr()
            branches.append((condition, result))
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        return sa.Case(operand, branches, default)

    def _parse_name_or_call(self) -> sa.Expr:
        name = str(self._parse_name())
        # qualified column: a.b
        if self.current.kind == SqlTokenKind.DOT:
            self.advance()
            column = str(self._parse_name())
            return sa.ColumnRef(column, table=name)
        if self.current.kind != SqlTokenKind.LPAREN:
            return sa.ColumnRef(name)
        # function call
        self.advance()
        star = False
        distinct = False
        args: list[sa.Expr] = []
        if self.current.kind == SqlTokenKind.STAR:
            self.advance()
            star = True
        elif self.current.kind != SqlTokenKind.RPAREN:
            distinct = self.accept_keyword("distinct")
            args.append(self.parse_expr())
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                args.append(self.parse_expr())
        self.expect(SqlTokenKind.RPAREN)
        call = sa.FuncCall(name.lower(), args, distinct=distinct, star=star)
        if self.at_keyword("over"):
            self.advance()
            window = self._parse_window_spec()
            return sa.WindowFunc(call, window)
        return call

    def _parse_window_spec(self) -> sa.WindowSpec:
        self.expect(SqlTokenKind.LPAREN)
        spec = sa.WindowSpec()
        if self.accept_keyword("partition"):
            self.expect_keyword("by")
            spec.partition_by.append(self.parse_expr())
            while self.current.kind == SqlTokenKind.COMMA:
                self.advance()
                spec.partition_by.append(self.parse_expr())
        if self.at_keyword("order"):
            spec.order_by = self._parse_order_by()
        if self.at_keyword("rows", "range"):
            spec.frame = self._parse_frame_text()
        self.expect(SqlTokenKind.RPAREN)
        return spec

    def _parse_frame_text(self) -> str:
        # capture the raw frame clause; executor understands the common forms
        parts: list[str] = []
        while self.current.kind != SqlTokenKind.RPAREN:
            parts.append(self.current.text)
            self.advance()
        return " ".join(parts).lower()


def parse_sql(source: str) -> list[sa.Statement]:
    """Parse one or more ;-separated SQL statements."""
    return SqlParser(source).parse_statements()


def parse_one(source: str) -> sa.Statement:
    statements = parse_sql(source)
    if len(statements) != 1:
        raise SqlSyntaxError(f"expected one statement, found {len(statements)}")
    return statements[0]
