"""Abstract syntax tree for the SQL subset the engine executes.

The subset is exactly what Hyper-Q's serializer emits plus the statements
needed by the metadata interface and the test suite: SELECT with joins,
window functions, grouping and set operations; CREATE (TEMPORARY) TABLE
[AS], CREATE VIEW, INSERT, DELETE, DROP, TRUNCATE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.types import SqlType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    __slots__ = ()


@dataclass
class Literal(Expr):
    value: object
    sql_type: SqlType = SqlType.NULL


@dataclass
class ColumnRef(Expr):
    name: str
    table: str | None = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list."""

    table: str | None = None


@dataclass
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '%', '||', '=', '<>', '<', '<=', '>', '>=',
    # 'AND', 'OR', 'IS NOT DISTINCT FROM', 'IS DISTINCT FROM'
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class LikeOp(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class Cast(Expr):
    operand: Expr
    target: SqlType
    target_text: str = ""


@dataclass
class Case(Expr):
    """CASE [operand] WHEN ... THEN ... [ELSE ...] END."""

    operand: Expr | None
    branches: list[tuple[Expr, Expr]]
    default: Expr | None


@dataclass
class FuncCall(Expr):
    name: str
    args: list[Expr]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class WindowSpec:
    partition_by: list[Expr] = field(default_factory=list)
    order_by: list["OrderItem"] = field(default_factory=list)
    frame: str | None = None  # raw frame text; None = default frame


@dataclass
class WindowFunc(Expr):
    func: FuncCall
    window: WindowSpec


@dataclass
class ScalarSubquery(Expr):
    query: "Select"


@dataclass
class ExistsSubquery(Expr):
    query: "Select"
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    query: "Select"
    negated: bool = False


# ---------------------------------------------------------------------------
# Relational AST
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False
    nulls_first: bool | None = None  # None = dialect default


class TableExpr:
    """Base class for FROM-clause items."""

    __slots__ = ()


@dataclass
class TableRef(TableExpr):
    name: str
    alias: str | None = None
    schema: str | None = None


@dataclass
class SubqueryRef(TableExpr):
    query: "Select"
    alias: str


@dataclass
class Join(TableExpr):
    kind: str  # 'inner', 'left', 'right', 'full', 'cross'
    left: TableExpr
    right: TableExpr
    condition: Expr | None = None


@dataclass
class Select:
    items: list[SelectItem]
    from_clause: TableExpr | None = None
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Expr | None = None
    offset: Expr | None = None
    distinct: bool = False
    set_op: str | None = None  # 'union', 'union all', 'except', 'intersect'
    set_right: "Select | None" = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    sql_type: SqlType
    type_text: str = ""


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef]
    temporary: bool = False
    if_not_exists: bool = False


@dataclass
class CreateTableAs:
    name: str
    query: Select
    temporary: bool = False


@dataclass
class CreateView:
    name: str
    query: Select
    or_replace: bool = False


@dataclass
class Insert:
    table: str
    columns: list[str]
    rows: list[list[Expr]] | None = None  # VALUES form
    query: Select | None = None  # INSERT ... SELECT form


@dataclass
class Delete:
    table: str
    where: Expr | None = None


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Expr | None = None


@dataclass
class DropTable:
    name: str
    if_exists: bool = False
    is_view: bool = False


@dataclass
class Truncate:
    name: str


Statement = (
    Select
    | CreateTable
    | CreateTableAs
    | CreateView
    | Insert
    | Delete
    | Update
    | DropTable
    | Truncate
)
