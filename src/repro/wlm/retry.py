"""Retries, retry budgets, circuit breaking: the backend recovery layer.

A transient backend hiccup (connection reset, overload error, failover
blip) used to surface straight to the Q client; a dead backend used to
cost every request a full checkout/connect timeout.  This module wraps
any :class:`~repro.core.backends.ExecutionBackend` with the standard
trio of recovery policies:

* :class:`RetryPolicy` — exponential backoff with full jitter, bounded
  attempts, **idempotent reads only** (a retried INSERT could double
  rows; writes surface their first failure untouched);
* :class:`RetryBudget` — a token bucket refilled by successes, so a
  backend that is *down* rather than *blinking* sees a bounded retry
  storm (Finagle's retry-budget design);
* :class:`CircuitBreaker` — closed / open / half-open per backend; after
  ``failure_threshold`` consecutive failures the breaker opens and every
  request fails fast with :class:`~repro.errors.CircuitOpenError` (QIPC
  signal ``'wlm-open``) until a half-open probe succeeds.

:class:`ResilientBackend` composes all three (plus the fault injector)
behind the unchanged ``ExecutionBackend`` protocol, so servers swap it in
without the pipeline noticing.
"""

from __future__ import annotations

import random
import re
import time

from repro.analysis.concurrency.locks import make_lock
from repro.config import CircuitBreakerConfig, RetryConfig
from repro.core.backends import TRANSPORT_ERRORS, ExecutionBackend
from repro.errors import BackendSqlError, CircuitOpenError
from repro.obs import get_logger, metrics
from repro.wlm.deadline import current_deadline, note_retry
from repro.wlm.faults import FaultInjector

RETRIES_TOTAL = metrics.counter(
    "wlm_retries_total", "Backend statement retries, by backend"
)
RETRY_GIVEUPS_TOTAL = metrics.counter(
    "wlm_retry_giveups_total",
    "Retry sequences abandoned (attempts, budget or deadline exhausted)",
)
BREAKER_STATE = metrics.gauge(
    "wlm_breaker_state",
    "Circuit breaker state per backend (0 closed, 1 half-open, 2 open)",
)
BREAKER_TRANSITIONS = metrics.counter(
    "wlm_breaker_transitions_total", "Circuit breaker state transitions"
)
BREAKER_REJECTIONS = metrics.counter(
    "wlm_breaker_rejections_total",
    "Requests failed fast by an open circuit breaker",
)

_log = get_logger("wlm.retry")

#: SQLSTATE classes/codes that mark a backend error as transient: the
#: connection-exception class (08xxx), insufficient resources (53xxx),
#: serialization failure, admin shutdown/crash recovery
TRANSIENT_SQLSTATE_PREFIXES = ("08", "53")
TRANSIENT_SQLSTATES = frozenset({"40001", "57P01", "57P02", "57P03"})


def is_transient(exc: BaseException) -> bool:
    """Whether the failure is worth retrying at all."""
    if isinstance(exc, TRANSPORT_ERRORS):
        return True
    if isinstance(exc, BackendSqlError):
        code = exc.code or ""
        return code in TRANSIENT_SQLSTATES or code.startswith(
            TRANSIENT_SQLSTATE_PREFIXES
        )
    return False


#: data-modifying verbs that disqualify a WITH statement from retry:
#: PostgreSQL allows ``WITH x AS (DELETE ... RETURNING *) SELECT ...``,
#: where the mutation hides inside the CTE list
_MUTATING_VERBS = re.compile(r"\b(INSERT|UPDATE|DELETE|MERGE)\b", re.IGNORECASE)


def is_idempotent(sql: str) -> bool:
    """Only plain reads are safe to re-send blindly.

    WITH statements count only when no data-modifying verb appears
    anywhere in the text: a transient failure after the backend applied a
    data-modifying CTE would otherwise be retried and applied twice.
    (Conservative — a read whose identifiers merely *contain* such a word
    loses its retry, never the other way around.)
    """
    head = sql.lstrip().split(None, 1)
    if not head:
        return False
    verb = head[0].upper()
    if verb in ("SELECT", "SHOW"):
        return True
    if verb == "WITH":
        return _MUTATING_VERBS.search(sql) is None
    return False


class RetryBudget:
    """Token bucket bounding global retry volume (ratio of successes)."""

    def __init__(self, ratio: float, min_tokens: float):
        self.ratio = ratio
        self.min_tokens = min_tokens
        self._tokens = min_tokens
        self._lock = make_lock("wlm.retry_budget")

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_success(self) -> None:
        with self._lock:
            self._tokens = min(
                self._tokens + self.ratio, self.min_tokens * 2
            )

    def try_spend(self) -> bool:
        """Take one retry token; False means the budget is exhausted."""
        with self._lock:
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True


class RetryPolicy:
    """Exponential backoff with full jitter over a shared budget."""

    def __init__(self, config: RetryConfig, sleep=time.sleep):
        self.config = config
        self.sleep = sleep
        self.budget = RetryBudget(
            config.budget_ratio, config.budget_min_tokens
        )
        self._rng = random.Random(config.jitter_seed)
        self._rng_lock = make_lock("wlm.retry_rng")

    def backoff(self, attempt: int) -> float:
        """Full-jitter backoff for retry number ``attempt`` (1-based)."""
        ceiling = min(
            self.config.max_delay,
            self.config.base_delay * (2 ** (attempt - 1)),
        )
        with self._rng_lock:
            return self._rng.uniform(0.0, ceiling)

    def should_retry(self, sql: str, exc: BaseException, attempt: int) -> bool:
        """Whether retry number ``attempt`` may run after ``exc``."""
        if not self.config.enabled:
            return False
        if attempt >= self.config.max_attempts:
            return False
        if not is_idempotent(sql) or not is_transient(exc):
            return False
        return self.budget.try_spend()


class BreakerState:
    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


_STATE_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


class CircuitBreaker:
    """Closed / open / half-open breaker guarding one backend.

    Counting is *consecutive failures*; any success resets.  While open,
    :meth:`allow` raises :class:`CircuitOpenError` until ``reset_timeout``
    elapses, then exactly one caller at a time gets through as the
    half-open probe; ``close_threshold`` probe successes re-close.
    """

    def __init__(
        self,
        name: str,
        config: CircuitBreakerConfig,
        clock=time.monotonic,
    ):
        self.name = name
        self.config = config
        self.clock = clock
        self._lock = make_lock("wlm.breaker")
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.transitions: list[tuple[str, str]] = []
        BREAKER_STATE.set(0.0, backend=name)

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _transition_locked(self, to: str) -> None:
        from_state = self._state
        if from_state == to:
            return
        self._state = to
        self.transitions.append((from_state, to))
        BREAKER_STATE.set(_STATE_GAUGE[to], backend=self.name)
        BREAKER_TRANSITIONS.inc(
            backend=self.name, from_state=from_state, to_state=to
        )
        _log.warning(
            "breaker_transition", backend=self.name,
            from_state=from_state, to_state=to,
        )

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self.clock() - self._opened_at >= self.config.reset_timeout
        ):
            self._transition_locked(BreakerState.HALF_OPEN)
            self._probe_successes = 0
            self._probe_in_flight = False

    def allow(self) -> bool:
        """Gate one request; raises :class:`CircuitOpenError` fast when
        open (or when half-open with a probe already in flight).

        Returns True when this caller holds the half-open probe slot and
        must therefore settle it — via :meth:`record_success`,
        :meth:`record_failure`, or :meth:`record_probe_abort` — on every
        exit path, or the breaker stays half-open rejecting everything.
        """
        if not self.config.enabled:
            return False
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == BreakerState.CLOSED:
                return False
            if self._state == BreakerState.HALF_OPEN:
                if not self._probe_in_flight:
                    self._probe_in_flight = True  # this caller probes
                    return True
                retry_after = 0.0
            else:
                retry_after = max(
                    0.0,
                    self.config.reset_timeout
                    - (self.clock() - self._opened_at),
                )
        BREAKER_REJECTIONS.inc(backend=self.name)
        raise CircuitOpenError(
            f"backend {self.name!r} circuit breaker is "
            f"{self._state.replace('_', '-')} — failing fast "
            f"(retry in {retry_after:.1f}s)",
            backend=self.name,
            retry_after=retry_after,
        )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == BreakerState.HALF_OPEN:
                self._probe_in_flight = False
                self._probe_successes += 1
                if self._probe_successes >= self.config.close_threshold:
                    self._transition_locked(BreakerState.CLOSED)

    def record_probe_abort(self) -> None:
        """Release the half-open probe slot without judging health.

        For probe requests that die for reasons unrelated to the backend
        (SQL-level rejection, request deadline): the breaker stays
        half-open and the next caller becomes the probe instead.
        """
        with self._lock:
            if self._state == BreakerState.HALF_OPEN:
                self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == BreakerState.HALF_OPEN:
                self._probe_in_flight = False
                self._opened_at = self.clock()
                self._transition_locked(BreakerState.OPEN)
                return
            if (
                self._state == BreakerState.CLOSED
                and self._failures >= self.config.failure_threshold
            ):
                self._opened_at = self.clock()
                self._transition_locked(BreakerState.OPEN)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "transitions": len(self.transitions),
            }


class ResilientBackend(ExecutionBackend):
    """Retry + breaker + fault injection around any execution backend.

    Transparent when nothing fails: one breaker check and one success
    record per statement.  On transient failure of an idempotent read it
    backs off (full jitter, capped by the request deadline) and re-sends,
    up to the policy's attempt/budget limits; every failure feeds the
    breaker regardless of whether the statement was retryable.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        faults: FaultInjector | None = None,
        name: str | None = None,
    ):
        self.inner = inner
        self.policy = policy
        self.breaker = breaker
        self.faults = faults
        self.name = name or f"resilient({getattr(inner, 'name', 'backend')})"

    def run_sql(self, sql: str):
        attempt = 0
        while True:
            attempt += 1
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("backend.execute")
            is_probe = self.breaker.allow()
            try:
                if self.faults is not None:
                    self.faults.before_execute()
                result = self.inner.run_sql(sql)
                if self.faults is not None:
                    self.faults.after_execute()
            except Exception as exc:
                if not is_transient(exc):
                    # SQL-level rejection: not the backend's health — but
                    # a held probe slot must be released or the breaker
                    # wedges half-open, rejecting every future request
                    if is_probe:
                        self.breaker.record_probe_abort()
                    raise
                self.breaker.record_failure()
                if not self.policy.should_retry(sql, exc, attempt):
                    RETRY_GIVEUPS_TOTAL.inc(backend=self.breaker.name)
                    raise
                delay = self.policy.backoff(attempt)
                if deadline is not None:
                    capped = deadline.cap(delay)
                    delay = capped if capped is not None else delay
                RETRIES_TOTAL.inc(backend=self.breaker.name)
                note_retry()
                _log.warning(
                    "backend_retry", backend=self.breaker.name,
                    attempt=attempt, delay_s=round(delay, 4),
                    error=str(exc)[:200],
                )
                if delay > 0:
                    self.policy.sleep(delay)
                continue
            except BaseException:
                # KeyboardInterrupt and friends: release the probe slot
                # without judging backend health
                if is_probe:
                    self.breaker.record_probe_abort()
                raise
            self.breaker.record_success()
            self.policy.budget.record_success()
            return result

    # -- delegation --------------------------------------------------------

    def catalog_version(self) -> int:
        return self.inner.catalog_version()

    def ping(self) -> bool:
        ping = getattr(self.inner, "ping", None)
        return True if ping is None else bool(ping())

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()
