"""Per-request deadlines and the thread-local request context.

Hyper-Q sits in the critical path between every Q client and the backing
warehouse; a request with no deadline hangs its client for as long as the
slowest backend read.  A :class:`Deadline` is an absolute expiry on the
monotonic clock, created once when a request is admitted and consulted
cooperatively by everything downstream:

* the translation pipeline checks it between passes;
* :class:`~repro.core.platform.DirectGateway` checks it before executing;
* :class:`~repro.server.gateway.NetworkGateway` converts the remaining
  time into a socket timeout, so a stalled backend read cannot outlive
  the request;
* :class:`~repro.wlm.retry.ResilientBackend` caps backoff sleeps by it.

Rather than threading a parameter through every signature in the stack,
the active deadline rides on a thread-local :class:`RequestContext`
(:func:`request_scope`), together with the request's query class and its
retry count — the same pattern the tracer uses for span nesting, and
valid for the same reason: one request runs on one thread here.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import DeadlineExceededError
from repro.obs import metrics

#: requests that overran their deadline, labelled by the stage that
#: noticed (what=pass.bind|backend.execute|...)
DEADLINE_EXCEEDED = metrics.counter(
    "wlm_deadline_exceeded_total",
    "Requests cancelled because their deadline expired",
)


class Deadline:
    """An absolute expiry on the monotonic clock.

    Immutable once created; ``clock`` is injectable so tests advance time
    without sleeping.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float, clock=time.monotonic):
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed.

        ``what`` names the checkpoint (``pass.bind``, ``backend.execute``)
        so the error says where the request died, not just that it did.
        """
        overrun = -self.remaining()
        if overrun < 0.0:
            return
        DEADLINE_EXCEEDED.inc(what=what or "unknown")
        where = f" at {what}" if what else ""
        raise DeadlineExceededError(
            f"request deadline exceeded{where} "
            f"(over by {overrun * 1e3:.0f}ms)",
            what=what,
        )

    def cap(self, seconds: float | None) -> float | None:
        """The smaller of ``seconds`` and the time remaining (for socket
        timeouts and backoff sleeps); None means uncapped input."""
        remaining = max(self.remaining(), 0.0)
        if seconds is None:
            return remaining
        return min(seconds, remaining)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass
class RequestContext:
    """Everything the WLM knows about the request on this thread."""

    deadline: Deadline | None = None
    query_class: str = "analytical"
    retries: int = 0
    queued_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)


_local = threading.local()


def _stack() -> list[RequestContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_context() -> RequestContext | None:
    """The innermost active request context on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def current_deadline() -> Deadline | None:
    """The active deadline on this thread, if any (nearest wins: nested
    scopes inherit the parent deadline unless they set an earlier one)."""
    context = current_context()
    return context.deadline if context is not None else None


@contextmanager
def request_scope(
    deadline: Deadline | None = None, query_class: str = "analytical"
):
    """Install a :class:`RequestContext` for the duration of a request.

    A nested scope without its own deadline inherits the enclosing one;
    with one, the *earlier* expiry wins (a callee can only tighten).
    """
    parent = current_context()
    if parent is not None and parent.deadline is not None:
        if deadline is None or parent.deadline.expires_at <= deadline.expires_at:
            deadline = parent.deadline
    context = RequestContext(deadline=deadline, query_class=query_class)
    stack = _stack()
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()


def note_retry(count: int = 1) -> None:
    """Record backend retries on the active request (span attribution)."""
    context = current_context()
    if context is not None:
        context.retries += count
