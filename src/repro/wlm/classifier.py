"""Query classification: which admission quota does a statement bill?

Workload management needs to know — *before* running anything — whether a
request is a metadata ping, a cheap keyed read, a scan-the-world
aggregation, or a statement that writes backend state.  The classes (in
ascending weight):

* ``admin`` — answered from Hyper-Q's own metadata/metrics layer
  (``tables[]``, ``cols``, ``meta``, ``metrics[]``, ``check``, ``wlm[]``)
  or pure scope bookkeeping (function definitions);
* ``point_lookup`` — a ``select``/``exec`` whose where-clause pins a
  column to a literal (no grouping), or a backend-free scalar expression;
* ``analytical`` — everything else that only reads;
* ``materializing`` — assignments, inserts/upserts, ``update``/``delete``
  templates: statements that create or mutate backend relations.

Classification is purely syntactic over the Q AST (the same tree the
qcheck analysis pass walks), so it costs microseconds and never touches
the backend.  A multi-statement message bills the *heaviest* statement's
class — one admission decision per message.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.obs import metrics
from repro.qlang import ast

#: classification volume, labelled qclass=admin|point_lookup|...
CLASSIFIED_TOTAL = metrics.counter(
    "wlm_classified_total", "Statements classified, by query class"
)

#: statements answered from Hyper-Q's own layers, never the backend data
ADMIN_VERBS = frozenset(
    {"tables", "cols", "meta", "metrics", "check", "wlm", "rcache"}
)


class QueryClass(Enum):
    """Admission classes, ordered lightest to heaviest."""

    ADMIN = "admin"
    POINT_LOOKUP = "point_lookup"
    ANALYTICAL = "analytical"
    MATERIALIZING = "materializing"

    @property
    def weight(self) -> int:
        return _WEIGHTS[self]


_WEIGHTS = {
    QueryClass.ADMIN: 0,
    QueryClass.POINT_LOOKUP: 1,
    QueryClass.ANALYTICAL: 2,
    QueryClass.MATERIALIZING: 3,
}


def classify_statement(statement: ast.Node) -> QueryClass:
    """Classify one top-level statement by its AST shape."""
    qclass = _classify(statement)
    CLASSIFIED_TOTAL.inc(qclass=qclass.value)
    return qclass


def classify_program(statements: Iterable[ast.Node]) -> QueryClass:
    """A message's class is its heaviest statement's class."""
    heaviest = QueryClass.ADMIN
    for statement in statements:
        qclass = classify_statement(statement)
        if qclass.weight > heaviest.weight:
            heaviest = qclass
    return heaviest


def _classify(statement: ast.Node) -> QueryClass:
    if isinstance(statement, ast.Return):
        return _classify(statement.value)
    if isinstance(statement, ast.Assign):
        # storing a function is scope bookkeeping; storing data is not
        if isinstance(statement.value, ast.Lambda):
            return QueryClass.ADMIN
        return QueryClass.MATERIALIZING
    if isinstance(statement, ast.BinOp) and statement.op in (
        "insert",
        "upsert",
    ):
        return QueryClass.MATERIALIZING
    if _is_admin_verb(statement):
        return QueryClass.ADMIN
    template = _principal_template(statement)
    if template is not None:
        if template.kind in ("update", "delete"):
            return QueryClass.MATERIALIZING
        if _is_point_lookup(template):
            return QueryClass.POINT_LOOKUP
        return QueryClass.ANALYTICAL
    if _touches_templates(statement):
        return QueryClass.ANALYTICAL
    # scalar arithmetic, literals, variable reads: no backend scan
    return QueryClass.POINT_LOOKUP


def _is_admin_verb(statement: ast.Node) -> bool:
    if isinstance(statement, ast.Apply) and isinstance(
        statement.func, ast.Name
    ):
        return statement.func.name in ADMIN_VERBS
    if isinstance(statement, ast.UnOp):
        return statement.op in ADMIN_VERBS
    return False


def _principal_template(statement: ast.Node) -> ast.Template | None:
    """The outermost template driving the statement, unwrapping the
    aggregating prefixes (``count select ...``, ``exec sum ...``)."""
    node = statement
    while isinstance(node, (ast.UnOp, ast.Return)):
        node = node.operand if isinstance(node, ast.UnOp) else node.value
    return node if isinstance(node, ast.Template) else None


def _is_point_lookup(template: ast.Template) -> bool:
    """select/exec pinned to a literal key, ungrouped and unnested."""
    if template.kind not in ("select", "exec"):
        return False
    if template.by:
        return False
    if not isinstance(template.source, ast.Name):
        return False
    return any(_pins_column(conjunct) for conjunct in template.where)


def _pins_column(conjunct: ast.Node) -> bool:
    """``Column = literal`` (or ``literal = Column``) equality conjunct."""
    if not (isinstance(conjunct, ast.BinOp) and conjunct.op in ("=", "in")):
        return False
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.Name) and isinstance(right, ast.Literal):
        return True
    return isinstance(left, ast.Literal) and isinstance(right, ast.Name)


def _touches_templates(node: ast.Node) -> bool:
    """Whether any select/exec/update/delete template appears in the tree
    (conservative: such statements read backend data)."""
    if isinstance(node, ast.Template):
        return True
    for value in vars(node).values():
        candidates = value if isinstance(value, list) else [value]
        for item in candidates:
            if isinstance(item, tuple):
                item = item[1] if len(item) > 1 else None
            if isinstance(item, ast.ColumnSpec):
                item = item.expr
            if isinstance(item, ast.Node) and _touches_templates(item):
                return True
    return False
