"""Workload management & resilience for the Hyper-Q serving layer.

The translation pipeline answers *what SQL to run*; this package answers
*whether, when and how hard to try*.  It threads four concerns through
the accept loop, session, pipeline and backends (docs/WLM.md):

* **classification** (:mod:`~repro.wlm.classifier`) — every request gets
  a :class:`QueryClass` from its Q AST before any work happens;
* **admission** (:mod:`~repro.wlm.admission`) — per-class concurrency
  quotas with bounded FIFO queues; overload sheds crisply (``'wlm-shed``)
  instead of hanging clients;
* **deadlines** (:mod:`~repro.wlm.deadline`) — a per-request expiry
  propagated session -> pipeline -> backend, enforced via socket
  timeouts on the network gateway and cooperative checks elsewhere;
* **recovery** (:mod:`~repro.wlm.retry`) — jittered retries of
  idempotent reads under a global budget, plus a per-backend circuit
  breaker that fails fast while the backend is down and probes recovery;
* **fault injection** (:mod:`~repro.wlm.faults`) — a deterministic,
  seedable saboteur (``REPRO_FAULTS``) that proves all of the above
  actually works, in tests and the ``wlm-faults`` CI job.

:class:`WorkloadManager` is the deployment-facing facade: servers build
one, share it across sessions, and wrap their backend through it.
"""

from __future__ import annotations

from repro.config import HyperQConfig, WlmConfig
from repro.wlm.admission import AdmissionController
from repro.wlm.classifier import (
    QueryClass,
    classify_program,
    classify_statement,
)
from repro.wlm.deadline import (
    Deadline,
    RequestContext,
    current_context,
    current_deadline,
    note_retry,
    request_scope,
)
from repro.wlm.faults import FaultInjector
from repro.wlm.retry import (
    CircuitBreaker,
    ResilientBackend,
    RetryPolicy,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "QueryClass",
    "RequestContext",
    "ResilientBackend",
    "RetryPolicy",
    "WorkloadManager",
    "classify_program",
    "classify_statement",
    "current_context",
    "current_deadline",
    "note_retry",
    "request_scope",
]


class WorkloadManager:
    """One workload-management domain: admission + recovery + faults.

    Usually one per server (sessions share it, so quotas and breaker
    state are global to the deployment); a standalone session builds a
    private one when ``HyperQConfig.wlm.enabled``.
    """

    def __init__(self, config: WlmConfig | HyperQConfig | None = None):
        if isinstance(config, HyperQConfig):
            config = config.wlm
        self.config = config or WlmConfig()
        self.admission = AdmissionController(self.config)
        self.retry_policy = RetryPolicy(self.config.retry)
        self.faults = (
            FaultInjector(self.config.faults)
            if self.config.faults.enabled
            else None
        )
        self._breakers: dict[str, CircuitBreaker] = {}

    # -- request lifecycle -------------------------------------------------

    def admit(self, query_class: QueryClass | str):
        """Context manager holding one admission slot (see
        :meth:`AdmissionController.admit`)."""
        return self.admission.admit(query_class)

    def deadline_for_request(self) -> Deadline | None:
        """A fresh default deadline, unless one is already in force (an
        enclosing scope's deadline always wins by being earlier)."""
        inherited = current_deadline()
        if inherited is not None:
            return inherited
        if self.config.default_deadline > 0:
            return Deadline.after(self.config.default_deadline)
        return None

    # -- backend wrapping --------------------------------------------------

    def breaker_for(self, name: str) -> CircuitBreaker:
        """The (shared) circuit breaker guarding backend ``name``."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = CircuitBreaker(
                name, self.config.breaker
            )
        return breaker

    def wrap_backend(self, backend) -> ResilientBackend:
        """Wrap an execution backend with retry/breaker/fault policies."""
        if isinstance(backend, ResilientBackend):
            return backend
        if getattr(backend, "is_sharded", False):
            # a sharded backend wraps each child shard individually; an
            # outer retry layer would double-execute scattered subplans
            return backend
        name = getattr(backend, "name", "backend")
        return ResilientBackend(
            backend,
            policy=self.retry_policy,
            breaker=self.breaker_for(name),
            faults=self.faults,
        )

    # -- introspection (the wlm[] admin command) ---------------------------

    def snapshot(self) -> dict:
        """Queue depths, breaker states and shed counts, as plain data."""
        return {
            "classes": self.admission.snapshot(),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "faults": (
                dict(self.faults.injected) if self.faults is not None else {}
            ),
        }
