"""Deterministic, seedable fault injection for the serving stack.

Every resilience policy in this package makes a claim — retries mask
transient errors, breakers fail fast on dead backends, deadlines bound
stalls, shedding prevents pile-ups.  Claims need a way to *make* the bad
thing happen on demand, reproducibly.  :class:`FaultInjector` is that
lever: configured by :class:`repro.config.FaultConfig` (or the
``REPRO_FAULTS`` environment variable), it perturbs the backend execution
path at fixed points:

* ``latency``   — sleep before the backend executes (a latency spike);
* ``drop``      — raise :class:`ConnectionError` (the connection died);
* ``error``     — raise a transient :class:`~repro.errors.BackendSqlError`
  (SQLSTATE 53300 ``insufficient_resources`` — retryable);
* ``slow_read`` — sleep after execution, before the result is returned
  (a stalled QIPC/PG-wire read).

All randomness comes from one ``random.Random(seed)`` behind a lock, and
every call draws the points in a fixed order, so a single-threaded run
with a fixed seed replays the exact same fault sequence; concurrent runs
keep the configured *rates* but interleave draws.  The injector sits
inside :class:`~repro.wlm.retry.ResilientBackend`, i.e. faults hit the
stack *above* the retry/breaker machinery it exercises — tests and the
``wlm-faults`` CI job drive it via ``REPRO_FAULTS="seed=42,..."``.
"""

from __future__ import annotations

import random
import time

from repro.analysis.concurrency.locks import make_lock
from repro.config import FaultConfig
from repro.errors import BackendSqlError
from repro.obs import get_logger, metrics

FAULTS_INJECTED = metrics.counter(
    "wlm_faults_injected_total", "Faults injected, by point"
)

_log = get_logger("wlm.faults")

#: SQLSTATE carried by injected transient errors (insufficient_resources)
TRANSIENT_SQLSTATE = "53300"


class FaultInjector:
    """Draws faults from a seeded RNG at the configured rates.

    ``sleep`` is injectable so unit tests assert on *requested* delays
    without actually waiting; the integration matrix uses real sleeps.
    """

    def __init__(self, config: FaultConfig, sleep=time.sleep):
        self.config = config
        self.sleep = sleep
        self._rng = random.Random(config.seed)
        self._lock = make_lock("wlm.faults")
        #: injected-fault tally by point, for tests and wlm[] inspection
        self.injected: dict[str, int] = {
            "latency": 0,
            "drop": 0,
            "error": 0,
            "slow_read": 0,
        }

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def _draw(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < rate

    def _record(self, point: str) -> None:
        with self._lock:
            self.injected[point] += 1
        FAULTS_INJECTED.inc(point=point)
        _log.warning("fault_injected", point=point)

    # -- injection points --------------------------------------------------

    def before_execute(self) -> None:
        """Runs before the wrapped backend executes; draws, in order:
        latency, then drop, then transient error."""
        if not self.enabled:
            return
        if self._draw(self.config.latency_rate):
            self._record("latency")
            self.sleep(self.config.latency_seconds)
        if self._draw(self.config.drop_rate):
            self._record("drop")
            raise ConnectionError("injected fault: backend connection drop")
        if self._draw(self.config.error_rate):
            self._record("error")
            raise BackendSqlError(
                "injected fault: transient backend overload",
                code=TRANSIENT_SQLSTATE,
                severity="ERROR",
            )

    def after_execute(self) -> None:
        """Runs after a successful execution, before the result returns
        (models a slow QIPC/PG-wire result read)."""
        if not self.enabled:
            return
        if self._draw(self.config.slow_read_rate):
            self._record("slow_read")
            self.sleep(self.config.slow_read_seconds)
