"""Bounded admission control: per-class quotas, FIFO queues, load shedding.

The paper's deployment story puts Hyper-Q between *every* Q client and
the warehouse, so an overloaded backend used to mean every client thread
piling onto it until raw socket timeouts fired.  The admission controller
turns that cliff into a policy:

* each :class:`~repro.wlm.classifier.QueryClass` has a concurrency quota
  (``max_concurrency``) — at most that many requests of the class run at
  once;
* beyond the quota, requests wait in a strict FIFO queue bounded by
  ``max_queue``; a queued request waits at most ``enqueue_timeout``
  seconds (and never past its own deadline);
* anything that cannot be queued or times out waiting is *shed*: a
  structured :class:`~repro.errors.WlmShedError` (QIPC signal
  ``'wlm-shed``) returned immediately — degrade by refusing crisply, not
  by hanging (VerdictDB's graceful-degradation stance, PAPERS.md).

One :class:`threading.Condition` guards all classes: admissions are rare
relative to query work (two lock acquisitions per request) and a single
lock keeps the accounting trivially consistent.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.concurrency.locks import make_condition
from repro.config import WlmClassPolicy, WlmConfig
from repro.errors import WlmShedError
from repro.obs import metrics
from repro.wlm.classifier import QueryClass
from repro.wlm.deadline import current_deadline

ADMITTED_TOTAL = metrics.counter(
    "wlm_admitted_total", "Requests admitted, by query class"
)
SHED_TOTAL = metrics.counter(
    "wlm_shed_total", "Requests shed, by query class and reason"
)
ACTIVE = metrics.gauge(
    "wlm_active_queries", "Admitted requests currently executing"
)
QUEUE_DEPTH = metrics.gauge(
    "wlm_queue_depth", "Requests waiting for an admission slot"
)
QUEUED_SECONDS = metrics.histogram(
    "wlm_queued_seconds", "Wall-clock wait between arrival and admission"
)


@dataclass
class ClassState:
    """Accounting for one query class (all fields guarded by the
    controller's condition)."""

    policy: WlmClassPolicy
    active: int = 0
    queue: deque = field(default_factory=deque)  # ticket FIFO
    admitted: int = 0
    shed: int = 0

    @property
    def queued(self) -> int:
        return len(self.queue)


class AdmissionController:
    """Per-class semaphores with bounded FIFO queues and shedding."""

    def __init__(self, config: WlmConfig, clock=time.monotonic):
        self.config = config
        self.clock = clock
        self._cond = make_condition("wlm.admission")
        self._tickets = itertools.count()
        self._classes: dict[str, ClassState] = {}
        for name, policy in config.classes.items():
            self._classes[name] = ClassState(policy=policy)

    def _state(self, query_class: str) -> ClassState:
        state = self._classes.get(query_class)
        if state is None:
            # unknown class: admit under a fresh default policy rather
            # than failing — a classifier extension must not 500 traffic
            state = ClassState(policy=WlmClassPolicy())
            self._classes[query_class] = state
        return state

    @contextmanager
    def admit(self, query_class: QueryClass | str):
        """Hold one admission slot of ``query_class`` for the body.

        Raises :class:`WlmShedError` instead of waiting when the queue is
        full, and after ``enqueue_timeout`` (or the request deadline,
        whichever is sooner) when no slot frees up.  Yields the seconds
        spent queued.
        """
        name = (
            query_class.value
            if isinstance(query_class, QueryClass)
            else str(query_class)
        )
        queued_seconds = self._acquire(name)
        try:
            yield queued_seconds
        finally:
            self._release(name)

    # -- mechanics ---------------------------------------------------------

    def _acquire(self, name: str) -> float:
        arrived = self.clock()
        with self._cond:
            state = self._state(name)
            if state.active < state.policy.max_concurrency and not state.queue:
                self._admit_locked(state, name)
                return 0.0
            if state.queued >= state.policy.max_queue:
                self._shed_locked(state, name, "queue-full")
            ticket = next(self._tickets)
            state.queue.append(ticket)
            QUEUE_DEPTH.set(state.queued, qclass=name)
            try:
                self._wait_for_slot(state, name, ticket, arrived)
            finally:
                # admitted, shed or interrupted: we leave the queue
                state.queue.remove(ticket)
                QUEUE_DEPTH.set(state.queued, qclass=name)
                self._cond.notify_all()
            self._admit_locked(state, name)
            waited = self.clock() - arrived
            QUEUED_SECONDS.observe(waited, qclass=name)
            return waited

    def _wait_for_slot(
        self, state: ClassState, name: str, ticket: int, arrived: float
    ) -> None:
        """Wait (on the held condition) until this ticket is at the head
        of the FIFO *and* a slot is free; shed on timeout/deadline."""
        timeout_at = arrived + state.policy.enqueue_timeout
        deadline = current_deadline()
        if deadline is not None:
            timeout_at = min(timeout_at, deadline.expires_at)
        while not (
            state.queue[0] == ticket
            and state.active < state.policy.max_concurrency
        ):
            remaining = timeout_at - self.clock()
            if remaining <= 0.0:
                reason = (
                    "deadline"
                    if deadline is not None and deadline.expired
                    else "timeout"
                )
                self._shed_locked(state, name, reason)
            self._cond.wait(remaining)

    def _admit_locked(self, state: ClassState, name: str) -> None:
        state.active += 1
        state.admitted += 1
        ADMITTED_TOTAL.inc(qclass=name)
        ACTIVE.set(state.active, qclass=name)

    def _shed_locked(self, state: ClassState, name: str, reason: str):
        state.shed += 1
        SHED_TOTAL.inc(qclass=name, reason=reason)
        detail = {
            "queue-full": (
                f"queue full ({state.policy.max_queue} waiting, "
                f"{state.active} executing)"
            ),
            "timeout": (
                f"no slot freed within {state.policy.enqueue_timeout:.1f}s"
            ),
            "deadline": "request deadline expired while queued",
        }[reason]
        raise WlmShedError(
            f"workload manager shed this {name!r} query: {detail} — "
            f"retry later or lower concurrency",
            query_class=name,
            reason=reason,
        )

    def _release(self, name: str) -> None:
        with self._cond:
            state = self._state(name)
            state.active -= 1
            ACTIVE.set(state.active, qclass=name)
            self._cond.notify_all()

    # -- introspection (the wlm[] admin command) ---------------------------

    def snapshot(self) -> dict[str, dict]:
        """Per-class accounting: limit/active/queued/admitted/shed."""
        with self._cond:
            return {
                name: {
                    "limit": state.policy.max_concurrency,
                    "active": state.active,
                    "queued": state.queued,
                    "admitted": state.admitted,
                    "shed": state.shed,
                }
                for name, state in sorted(self._classes.items())
            }
