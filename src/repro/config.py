"""Configuration for the Hyper-Q platform.

Mirrors the knobs the paper describes: configurable metadata caching with
invalidation policies and expiration time (Section 6), the materialization
strategy for Q variable assignments (Section 4.3), and toggles for the
individual Xformer rules used by the ablation benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum


def _analysis_default_enabled() -> bool:
    """Analysis defaults off in production, on when ``REPRO_ANALYSIS`` is
    set (the test suite sets it so every translated statement is vetted)."""
    return os.environ.get("REPRO_ANALYSIS", "") not in ("", "0")


class MaterializationMode(Enum):
    """How Q variable assignments are materialized in the backend.

    ``LOGICAL`` keeps scalar definitions in Hyper-Q's variable store and
    maps table assignments to views; ``PHYSICAL`` creates temporary tables
    (required for correctness when assignments have side effects — the
    paper's Example 3 shows the temp-table translation).
    """

    LOGICAL = "logical"
    PHYSICAL = "physical"


class CacheInvalidation(Enum):
    """Metadata cache invalidation policy."""

    NONE = "none"  # trust the TTL only
    VERSION = "version"  # invalidate when the backend catalog version moves
    ALWAYS = "always"  # effectively disables the cache


@dataclass
class MetadataCacheConfig:
    enabled: bool = True
    expiration_seconds: float = 300.0
    invalidation: CacheInvalidation = CacheInvalidation.VERSION


@dataclass
class ObservabilityConfig:
    """Toggles for the :mod:`repro.obs` substrate.

    Metrics and tracing are on by default (the measured overhead on the
    Figure-6 translation workload is well under the 5% budget).  Disabling
    metrics turns every registry update into a no-op; disabling tracing
    keeps span wall-clock measurement (``StageTimings`` are part of the
    public API) but skips building and retaining the span tree.
    """

    metrics_enabled: bool = True
    tracing_enabled: bool = True


@dataclass
class XformerConfig:
    """Per-rule toggles; the ablation benches flip these."""

    two_valued_logic: bool = True
    column_pruning: bool = True
    order_elision: bool = True
    order_injection: bool = True
    constant_folding: bool = True
    filter_merge: bool = True

    def fingerprint(self) -> tuple:
        """Hashable digest of the toggles (translation-cache key part)."""
        return tuple(sorted(self.__dict__.items()))


@dataclass
class TranslationCacheConfig:
    """The translation cache: finished SQL keyed on (normalized Q source,
    scope fingerprint, catalog version, xformer config).  Repeat
    statements skip parse/bind/xform/serialize entirely; DDL invalidates
    through the backend catalog version (same plumbing as the MDI cache).
    """

    enabled: bool = True
    #: LRU bound on cached translations
    max_entries: int = 1024


@dataclass
class BackendPoolConfig:
    """Sizing for :class:`repro.core.backends.PooledBackend`."""

    #: maximum concurrently open backend connections
    size: int = 4
    #: seconds a session waits for a pooled connection before failing
    checkout_timeout: float = 5.0


@dataclass
class AnalysisConfig:
    """The :mod:`repro.analysis` static-analysis subsystem.

    When ``enabled``, the translation pipeline gains an ``analyze`` pass
    (pre-bind qcheck rules over the Q AST) and verifies XTRA invariants on
    the operator tree after every pass.  Findings are recorded in the
    ``analysis_findings_total`` metric either way; only QC004
    (untranslatable construct) raises, and only when
    ``raise_on_untranslatable`` is set.
    """

    enabled: bool = field(default_factory=_analysis_default_enabled)
    #: run the pre-bind qcheck rules as an ``analyze`` pipeline pass
    qcheck: bool = True
    #: verify XTRA invariants on each pass's output operator tree
    check_invariants: bool = True
    #: raise :class:`repro.errors.UntranslatableError` from the analyze
    #: pass for constructs that provably have no XTRA mapping (QC004)
    raise_on_untranslatable: bool = True


@dataclass
class HyperQConfig:
    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    translation_cache: TranslationCacheConfig = field(
        default_factory=TranslationCacheConfig
    )
    backend_pool: BackendPoolConfig = field(default_factory=BackendPoolConfig)
    xformer: XformerConfig = field(default_factory=XformerConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    materialization: MaterializationMode = MaterializationMode.PHYSICAL
    #: prefix for generated temp tables, as in the paper's example SQL
    temp_table_prefix: str = "hq_temp_"
    #: prefix for views backing logical materialization
    view_prefix: str = "hq_view_"
    #: verbose error messages (the paper touts these as a UX improvement)
    verbose_errors: bool = True
    #: maximum concurrent queries a server executes; 0 = unlimited.  The
    #: case study lists "configurable concurrency" among the areas where
    #: Hyper-Q enhances the kdb+ experience (kdb+ is strictly serial)
    max_concurrency: int = 0
