"""Configuration for the Hyper-Q platform.

Mirrors the knobs the paper describes: configurable metadata caching with
invalidation policies and expiration time (Section 6), the materialization
strategy for Q variable assignments (Section 4.3), and toggles for the
individual Xformer rules used by the ablation benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from enum import Enum


def _analysis_default_enabled() -> bool:
    """Analysis defaults off in production, on when ``REPRO_ANALYSIS`` is
    set (the test suite sets it so every translated statement is vetted)."""
    return os.environ.get("REPRO_ANALYSIS", "") not in ("", "0")


class MaterializationMode(Enum):
    """How Q variable assignments are materialized in the backend.

    ``LOGICAL`` keeps scalar definitions in Hyper-Q's variable store and
    maps table assignments to views; ``PHYSICAL`` creates temporary tables
    (required for correctness when assignments have side effects — the
    paper's Example 3 shows the temp-table translation).
    """

    LOGICAL = "logical"
    PHYSICAL = "physical"


class CacheInvalidation(Enum):
    """Metadata cache invalidation policy."""

    NONE = "none"  # trust the TTL only
    VERSION = "version"  # invalidate when the backend catalog version moves
    ALWAYS = "always"  # effectively disables the cache


@dataclass
class MetadataCacheConfig:
    enabled: bool = True
    expiration_seconds: float = 300.0
    invalidation: CacheInvalidation = CacheInvalidation.VERSION


@dataclass
class ObservabilityConfig:
    """Toggles for the :mod:`repro.obs` substrate.

    Metrics and tracing are on by default (the measured overhead on the
    Figure-6 translation workload is well under the 5% budget).  Disabling
    metrics turns every registry update into a no-op; disabling tracing
    keeps span wall-clock measurement (``StageTimings`` are part of the
    public API) but skips building and retaining the span tree.
    """

    metrics_enabled: bool = True
    tracing_enabled: bool = True


@dataclass
class XformerConfig:
    """Per-rule toggles; the ablation benches flip these."""

    two_valued_logic: bool = True
    column_pruning: bool = True
    order_elision: bool = True
    order_injection: bool = True
    constant_folding: bool = True
    filter_merge: bool = True

    def fingerprint(self) -> tuple:
        """Hashable digest of the toggles (translation-cache key part)."""
        return tuple(sorted(self.__dict__.items()))


@dataclass
class TranslationCacheConfig:
    """The translation cache: finished SQL keyed on (normalized Q source,
    scope fingerprint, catalog version, xformer config).  Repeat
    statements skip parse/bind/xform/serialize entirely; DDL invalidates
    through the backend catalog version (same plumbing as the MDI cache).
    """

    enabled: bool = True
    #: LRU bound on cached translations
    max_entries: int = 1024


@dataclass
class ResultCacheConfig:
    """The semantic result cache (docs/CACHING.md).

    Sits *above* the translation cache: where that cache skips
    parse/bind/xform/serialize, this one skips the backend entirely,
    serving the full ``ResultSet`` for a repeat read.  Keys combine the
    translated SQL with the catalog version, the per-table version
    vector of every referenced relation (so DML on ``trades`` never
    evicts results over ``quotes``), and the partition fingerprint.
    """

    enabled: bool = True
    #: byte budget for cached result payloads (LRU-evicted beyond it)
    max_bytes: int = 64 * 1024 * 1024
    #: seconds an entry may serve before the sweeper retires it
    ttl_seconds: float = 300.0
    #: cadence of the background TTL sweeper; 0 disables the thread
    sweep_interval: float = 30.0
    #: seconds a coalesced waiter blocks on the flight leader before
    #: giving up and executing on its own
    flight_timeout: float = 30.0
    #: size-aware admission floor: results produced faster than this many
    #: milliseconds are not cached (a probe costs about as much as
    #: re-executing, so caching them only churns the LRU); 0 admits all
    min_produce_ms: float = 0.0


@dataclass
class TempTierConfig:
    """The interactive temp-data tier (DiNoDB-style, docs/CACHING.md).

    Q variable assignments snapshot their defining SELECT in Hyper-Q
    memory instead of eagerly writing a backend temp table; a positional
    map (per-column block offsets + min/max zone metadata) is built on
    first touch and serves point lookups and filtered scans directly.
    Access patterns the map cannot answer fall back to full
    materialization.
    """

    enabled: bool = True
    #: rows per positional-map block (the zone-metadata granule)
    block_rows: int = 1024


@dataclass
class ServerConfig:
    """The event-loop connection core (docs/ARCHITECTURE.md).

    One reactor thread multiplexes every client connection through a
    ``selectors`` loop (the Erlang-actor stand-in at deployment scale);
    query execution runs on a bounded worker pool so a slow backend can
    never stall the accept/read loop.  Sizing the pool trades backend
    pressure against queueing: admission control (``WlmConfig.classes``)
    still bounds per-class concurrency inside the workers.
    """

    #: threads executing queries (the blocking boundary); the loop itself
    #: never blocks
    worker_threads: int = 8
    #: listen(2) backlog for the accept socket
    accept_backlog: int = 128
    #: bytes asked from the kernel per non-blocking recv
    recv_size: int = 64 * 1024
    #: cadence of the loop-lag heartbeat timer (server_loop_lag_ms)
    heartbeat_seconds: float = 0.5
    #: largest inbound frame a connection may buffer before it is dropped
    max_message_bytes: int = 64 * 1024 * 1024
    #: seconds stop() waits for the loop and worker threads to drain
    stop_join_timeout: float = 2.0


@dataclass
class BackendPoolConfig:
    """Sizing for :class:`repro.core.backends.PooledBackend`."""

    #: maximum concurrently open backend connections
    size: int = 4
    #: seconds a session waits for a pooled connection before failing
    checkout_timeout: float = 5.0


@dataclass
class WlmClassPolicy:
    """Admission quota for one query class (docs/WLM.md).

    ``max_concurrency`` bounds in-flight queries of the class;
    ``max_queue`` bounds how many more may wait; ``enqueue_timeout``
    bounds how long a queued request waits for a slot before it is shed.
    """

    max_concurrency: int = 8
    max_queue: int = 64
    enqueue_timeout: float = 5.0


def _default_class_policies() -> dict:
    """Per-class defaults: cheap classes get wide quotas and short queue
    patience; materializing work is throttled hardest (it holds backend
    write locks and temp-table space)."""
    return {
        "admin": WlmClassPolicy(
            max_concurrency=8, max_queue=16, enqueue_timeout=1.0
        ),
        "point_lookup": WlmClassPolicy(
            max_concurrency=32, max_queue=128, enqueue_timeout=2.0
        ),
        "analytical": WlmClassPolicy(
            max_concurrency=16, max_queue=64, enqueue_timeout=5.0
        ),
        "materializing": WlmClassPolicy(
            max_concurrency=4, max_queue=32, enqueue_timeout=5.0
        ),
    }


@dataclass
class RetryConfig:
    """Backoff/retry policy for idempotent backend reads (repro/wlm/retry).

    Exponential backoff with full jitter, bounded attempts, and a global
    retry *budget* (token bucket refilled by successes) so a dying
    backend is not DDoS'd by its own clients.  Only idempotent reads are
    ever retried; writes surface their first failure.
    """

    enabled: bool = True
    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 1.0
    #: retry tokens earned per successful request (Finagle-style budget)
    budget_ratio: float = 0.1
    #: tokens available before any success has been observed
    budget_min_tokens: float = 10.0
    #: deterministic jitter for tests; production leaves the default
    jitter_seed: int | None = None


@dataclass
class CircuitBreakerConfig:
    """Per-backend circuit breaker (closed -> open -> half-open)."""

    enabled: bool = True
    #: consecutive failures that trip the breaker open
    failure_threshold: int = 5
    #: seconds the breaker stays open before half-opening a probe
    reset_timeout: float = 5.0
    #: successful probes required to close again from half-open
    close_threshold: int = 1


def _parse_fault_spec(text: str) -> dict:
    """``seed=42,error_rate=0.3,latency_ms=200`` -> field dict."""
    values: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part or "=" not in part:
            continue
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if not key or not raw:
            continue  # malformed part: ignore, never crash startup
        try:
            if key == "latency_ms":
                values["latency_seconds"] = float(raw) / 1000.0
            elif key == "slow_read_ms":
                values["slow_read_seconds"] = float(raw) / 1000.0
            elif key == "seed":
                values["seed"] = int(raw)
            else:
                values[key] = float(raw)
        except ValueError:
            continue
    if values:
        values["enabled"] = True
    return values


@dataclass
class FaultConfig:
    """Deterministic fault injection (repro/wlm/faults, docs/WLM.md).

    All rates are probabilities in [0, 1] drawn from one seeded RNG, so a
    fixed seed replays the same fault sequence.  Settable from the
    environment: ``REPRO_FAULTS="seed=42,error_rate=0.3,latency_rate=0.1,
    latency_ms=200"`` (``*_ms`` keys are milliseconds).
    """

    enabled: bool = False
    seed: int = 0
    #: inject added latency before the backend executes
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    #: drop the (simulated) backend connection: raises ConnectionError
    drop_rate: float = 0.0
    #: transient backend SQL error (SQLSTATE 53300, retryable)
    error_rate: float = 0.0
    #: slow down reading the result (the QIPC write-back stall)
    slow_read_rate: float = 0.0
    slow_read_seconds: float = 0.0

    @classmethod
    def from_env(cls, text: str | None = None) -> "FaultConfig":
        """Parse ``REPRO_FAULTS`` (or an explicit spec string)."""
        if text is None:
            text = os.environ.get("REPRO_FAULTS", "")
        if not text.strip():
            return cls()
        values = _parse_fault_spec(text)
        # unknown keys (typos like drop= for drop_rate=) are dropped, not
        # passed through: a malformed env var must never crash startup
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in values.items() if k in known})


@dataclass
class WlmConfig:
    """The workload-management & resilience subsystem (docs/WLM.md).

    Enabled by default: with no faults, no deadline and uncontended
    quotas the added cost is a few dict/lock operations per query (the
    ``bench_wlm_overhead`` budget is <5%).  Disabling restores the
    pre-WLM forward-everything behaviour.
    """

    enabled: bool = True
    #: per-class admission quotas, keyed by QueryClass value
    classes: dict = field(default_factory=_default_class_policies)
    #: default per-request deadline in seconds; 0 disables deadlines
    default_deadline: float = 0.0
    #: socket connect timeout for outbound gateways (client + PG wire)
    connect_timeout: float = 10.0
    #: socket read timeout for the PG gateway; 0 means no read timeout
    #: (a live deadline still caps every read)
    read_timeout: float = 0.0
    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker: CircuitBreakerConfig = field(
        default_factory=CircuitBreakerConfig
    )
    faults: FaultConfig = field(default_factory=FaultConfig.from_env)

    def gateway_timeouts(self) -> dict:
        """Keyword arguments for :class:`repro.server.gateway.NetworkGateway`
        (and :class:`repro.server.client.QConnection`) timeout plumbing."""
        return {
            "connect_timeout": self.connect_timeout,
            "read_timeout": self.read_timeout or None,
        }


@dataclass
class ShardingConfig:
    """The sharded scatter-gather backend (docs/ARCHITECTURE.md).

    Governs :class:`repro.core.sharded.ShardedBackend`: how many worker
    threads fan subplans out, and when a hedged read is sent to a shard
    replica.  The partition layout itself lives in a
    :class:`repro.core.metadata.PartitionMap`, not here — the map is part
    of the topology (and of the translation-cache key), the knobs below
    are deployment tuning.
    """

    #: shard execution substrate: ``"thread"`` hosts every shard engine
    #: in-process (one core, GIL-bound arithmetic); ``"process"`` spawns
    #: one worker process per shard behind a QIPC endpoint
    #: (:mod:`repro.core.procshard`) for true multi-core scatter
    mode: str = "thread"
    #: threads fanning subplans out to shards (the scatter boundary);
    #: 0 sizes the pool to the shard count
    max_parallel: int = 0
    #: seconds a shard may lag before an idempotent read is hedged
    #: against its replica (0 disables hedging even when replicas exist)
    hedge_delay: float = 0.05
    #: rows below which a gathered merge input is considered "small"
    #: (diagnostics only; the planner never samples data)
    small_table_rows: int = 10_000
    #: crashed worker processes a shard may respawn before the failure is
    #: surfaced as permanent (SQLSTATE 58000, not retried)
    max_respawns: int = 3
    #: seconds to wait for a worker process to print its readiness line
    #: and accept the QIPC handshake on (re)spawn
    worker_startup_timeout: float = 20.0
    #: socket timeout for worker health pings
    worker_ping_timeout: float = 2.0
    #: seconds ``close()`` waits for a worker to drain after the graceful
    #: shutdown message before escalating to terminate/kill
    worker_drain_timeout: float = 3.0


@dataclass
class AnalysisConfig:
    """The :mod:`repro.analysis` static-analysis subsystem.

    When ``enabled``, the translation pipeline gains an ``analyze`` pass
    (pre-bind qcheck rules over the Q AST) and verifies XTRA invariants on
    the operator tree after every pass.  Findings are recorded in the
    ``analysis_findings_total`` metric either way; only QC004
    (untranslatable construct) raises, and only when
    ``raise_on_untranslatable`` is set.
    """

    enabled: bool = field(default_factory=_analysis_default_enabled)
    #: run the pre-bind qcheck rules as an ``analyze`` pipeline pass
    qcheck: bool = True
    #: verify XTRA invariants on each pass's output operator tree
    check_invariants: bool = True
    #: raise :class:`repro.errors.UntranslatableError` from the analyze
    #: pass for constructs that provably have no XTRA mapping (QC004)
    raise_on_untranslatable: bool = True


@dataclass
class HyperQConfig:
    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    translation_cache: TranslationCacheConfig = field(
        default_factory=TranslationCacheConfig
    )
    result_cache: ResultCacheConfig = field(default_factory=ResultCacheConfig)
    temp_tier: TempTierConfig = field(default_factory=TempTierConfig)
    backend_pool: BackendPoolConfig = field(default_factory=BackendPoolConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    xformer: XformerConfig = field(default_factory=XformerConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    wlm: WlmConfig = field(default_factory=WlmConfig)
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    materialization: MaterializationMode = MaterializationMode.PHYSICAL
    #: prefix for generated temp tables, as in the paper's example SQL
    temp_table_prefix: str = "hq_temp_"
    #: prefix for views backing logical materialization
    view_prefix: str = "hq_view_"
    #: verbose error messages (the paper touts these as a UX improvement)
    verbose_errors: bool = True
    #: maximum concurrent queries a server executes; 0 = unlimited.  The
    #: case study lists "configurable concurrency" among the areas where
    #: Hyper-Q enhances the kdb+ experience (kdb+ is strictly serial)
    max_concurrency: int = 0
