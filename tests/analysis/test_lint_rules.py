"""Tests for the pluggable repo-lint rule engine (``scripts/lint_rules``).

The package lives under ``scripts/`` (it is stdlib-only and must run
without ``src/`` on the path), so the suite loads it by extending
``sys.path`` the same way ``mini_lint.py`` does.
"""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPTS_DIR = REPO_ROOT / "scripts"

if str(SCRIPTS_DIR) not in sys.path:
    sys.path.insert(0, str(SCRIPTS_DIR))

from lint_rules import (  # noqa: E402
    LintFinding,
    default_rules,
    lint_file,
)


def _write(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def run_lint(path: Path) -> list[LintFinding]:
    return list(lint_file(path, default_rules(), root=REPO_ROOT))


def lint_codes(path: Path) -> set[str]:
    return {finding.code for finding in run_lint(path)}


class TestRegistry:
    def test_rules_discovered(self):
        codes = {rule.code for rule in default_rules()}
        assert {"E501", "E711", "F401", "I001"} <= codes
        assert {
            "HQ001", "HQ002", "HQ003", "HQ004", "HQ005", "HQ006", "HQ007",
            "HQ008", "HQ009", "HQ010",
        } <= codes

    def test_fresh_instances_per_call(self):
        first, second = default_rules(), default_rules()
        assert all(a is not b for a, b in zip(first, second))


class TestStyleRules:
    def test_long_line_and_trailing_whitespace(self, tmp_path):
        path = _write(
            tmp_path, "a.py", "x = 1  \ny = '" + "a" * 95 + "'\n"
        )
        codes = lint_codes(path)
        assert {"W291", "E501"} <= codes

    def test_unused_import_honours_noqa(self, tmp_path):
        flagged = _write(tmp_path, "b.py", "import os\n")
        assert "F401" in lint_codes(flagged)
        suppressed = _write(tmp_path, "c.py", "import os  # noqa: F401\n")
        assert "F401" not in lint_codes(suppressed)

    def test_import_order(self, tmp_path):
        path = _write(tmp_path, "d.py", "import sys\nimport ast\n\nsys, ast\n")
        assert "I001" in lint_codes(path)

    def test_clean_file_is_clean(self, tmp_path):
        path = _write(tmp_path, "e.py", "import ast\n\nprint(ast)\n")
        assert run_lint(path) == []


class TestHQ002SilentSwallow:
    BAD = """\
        try:
            pass
        except Exception:
            pass
    """

    def test_fires_in_core(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/x.py", self.BAD)
        findings = run_lint(path)
        assert any(f.code == "HQ002" for f in findings)

    def test_fires_in_server(self, tmp_path):
        path = _write(tmp_path, "src/repro/server/x.py", self.BAD)
        assert "HQ002" in lint_codes(path)

    def test_silent_outside_the_layered_dirs(self, tmp_path):
        path = _write(tmp_path, "src/repro/qlang/x.py", self.BAD)
        assert "HQ002" not in lint_codes(path)

    def test_narrow_handlers_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/y.py",
            """\
            try:
                pass
            except OSError:
                pass
            """,
        )
        assert "HQ002" not in lint_codes(path)

    def test_logged_handlers_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/z.py",
            """\
            try:
                pass
            except Exception as exc:
                log.warning("boom", error=str(exc))
            """,
        )
        assert "HQ002" not in lint_codes(path)

    @pytest.mark.parametrize("clause", ["BaseException", "(OSError, Exception)"])
    def test_broad_variants_fire(self, tmp_path, clause):
        path = _write(
            tmp_path,
            "src/repro/core/w.py",
            f"""\
            try:
                pass
            except {clause}:
                pass
            """,
        )
        assert "HQ002" in lint_codes(path)


class TestHQ003MetricRegistry:
    def test_undeclared_name_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/m.py",
            """\
            from repro.obs import metrics

            X = metrics.counter("totally_new_metric_total", "nope")
            """,
        )
        findings = [f for f in run_lint(path) if f.code == "HQ003"]
        assert findings
        assert "totally_new_metric_total" in findings[0].message

    def test_declared_name_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/m2.py",
            """\
            from repro.obs import metrics

            X = metrics.counter("hyperq_runs_total", "declared")
            """,
        )
        assert "HQ003" not in lint_codes(path)

    def test_non_literal_name_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/m3.py",
            """\
            from repro.obs import metrics

            NAME = "hyperq_runs_total"
            X = metrics.counter(NAME, "unverifiable")
            """,
        )
        assert "HQ003" in lint_codes(path)

    def test_tests_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "tests/t.py",
            """\
            from repro.obs import metrics

            X = metrics.counter("ad_hoc_test_metric", "fine in tests")
            """,
        )
        assert "HQ003" not in lint_codes(path)

    def test_every_declared_metric_is_real(self):
        """The registry itself stays in sync: every name declared in
        obs/names.py is actually minted somewhere under src/."""
        sys.path.insert(0, str(REPO_ROOT / "src"))
        try:
            from repro.obs.names import ALL_METRIC_NAMES
        finally:
            sys.path.pop(0)
        source = "\n".join(
            path.read_text()
            for path in (REPO_ROOT / "src").rglob("*.py")
            if path.name != "names.py"
        )
        unused = [
            name for name in ALL_METRIC_NAMES if f'"{name}"' not in source
        ]
        assert unused == [], f"declared but never minted: {unused}"


class TestHQ004HardcodedBlocking:
    def test_literal_settimeout_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/x.py",
            """\
            def connect(sock):
                sock.settimeout(10.0)
            """,
        )
        assert "HQ004" in lint_codes(path)

    def test_literal_create_connection_timeout_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/y.py",
            """\
            import socket

            def connect(host, port):
                return socket.create_connection((host, port), timeout=5)
            """,
        )
        assert "HQ004" in lint_codes(path)

    def test_time_sleep_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/z.py",
            """\
            import time

            def wait():
                time.sleep(0.5)
            """,
        )
        assert "HQ004" in lint_codes(path)

    def test_config_driven_timeout_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/ok.py",
            """\
            POLL_INTERVAL = 0.2

            def connect(sock, config):
                sock.settimeout(config.read_timeout)
                sock.settimeout(POLL_INTERVAL)
            """,
        )
        assert "HQ004" not in lint_codes(path)

    def test_wlm_layer_is_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/wlm/backoff.py",
            """\
            import time

            def backoff():
                time.sleep(0.05)
            """,
        )
        assert "HQ004" not in lint_codes(path)

    def test_tests_are_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "tests/server/t.py",
            """\
            import time

            def slow():
                time.sleep(1.0)
            """,
        )
        assert "HQ004" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/n.py",
            """\
            def connect(sock):
                sock.settimeout(10.0)  # noqa: HQ004
            """,
        )
        assert "HQ004" not in lint_codes(path)


class TestHQ005BatchedWireSerialization:
    PACK_LOOP = """\
        import struct

        def encode(items):
            out = []
            for item in items:
                out.append(struct.pack("<q", item))
            return b"".join(out)
    """
    BYTES_ACCUMULATION = """\
        def frame(rows):
            body = b""
            for row in rows:
                body += row.encode("utf-8") + b"\\x00"
            return body
    """

    def test_pack_loop_fires_in_pgwire(self, tmp_path):
        path = _write(tmp_path, "src/repro/pgwire/x.py", self.PACK_LOOP)
        assert "HQ005" in lint_codes(path)

    def test_pack_loop_fires_in_qipc(self, tmp_path):
        path = _write(tmp_path, "src/repro/qipc/x.py", self.PACK_LOOP)
        assert "HQ005" in lint_codes(path)

    def test_pack_genexpr_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/qipc/g.py",
            """\
            import struct

            def encode(items):
                return b"".join(struct.pack("<q", i) for i in items)
            """,
        )
        assert "HQ005" in lint_codes(path)

    def test_bytes_accumulation_fires(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/pgwire/a.py", self.BYTES_ACCUMULATION
        )
        assert "HQ005" in lint_codes(path)

    def test_kernels_module_is_exempt(self, tmp_path):
        path = _write(tmp_path, "src/repro/qipc/kernels.py", self.PACK_LOOP)
        assert "HQ005" not in lint_codes(path)

    def test_other_layers_are_exempt(self, tmp_path):
        path = _write(tmp_path, "src/repro/qlang/x.py", self.PACK_LOOP)
        assert "HQ005" not in lint_codes(path)

    def test_single_pack_outside_a_loop_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/qipc/ok.py",
            """\
            import struct

            def encode(items):
                return struct.pack(f"<{len(items)}q", *items)
            """,
        )
        assert "HQ005" not in lint_codes(path)

    def test_integer_accumulation_in_loop_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/pgwire/c.py",
            """\
            def total(rows):
                n = 0
                for row in rows:
                    n += len(row)
                return n
            """,
        )
        assert "HQ005" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/qipc/n.py",
            """\
            import struct

            def encode(items):
                out = []
                for item in items:
                    out.append(struct.pack("<q", item))  # noqa: HQ005
                return b"".join(out)
            """,
        )
        assert "HQ005" not in lint_codes(path)


class TestHQ006EventLoopBlocking:
    def test_socket_recv_fires_in_protocol_module(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/endpoint.py",
            """\
            def pump(conn):
                return conn.recv(4096)
            """,
        )
        assert "HQ006" in lint_codes(path)

    def test_blocking_accept_fires_in_protocol_module(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/pgserver.py",
            """\
            def serve(sock):
                conn, addr = sock.accept()
                return conn
            """,
        )
        assert "HQ006" in lint_codes(path)

    def test_time_sleep_fires_in_reactor(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/reactor.py",
            """\
            import time

            def wait(interval):
                time.sleep(interval)
            """,
        )
        # fires both as hard-coded blocking (HQ004) and as blocking on
        # the event-loop thread (HQ006)
        assert "HQ006" in lint_codes(path)

    def test_sendall_fires_in_reactor(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/reactor.py",
            """\
            def flush(sock, data):
                sock.sendall(data)
            """,
        )
        assert "HQ006" in lint_codes(path)

    def test_nonblocking_recv_allowed_in_reactor(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/reactor.py",
            """\
            def on_readable(sock, size):
                return sock.recv(size)
            """,
        )
        assert "HQ006" not in lint_codes(path)

    def test_worker_boundary_modules_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/gateway.py",
            """\
            def fetch(sock, n):
                return sock.recv(n)
            """,
        )
        assert "HQ006" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/endpoint.py",
            """\
            def pump(conn):
                return conn.recv(4096)  # noqa: HQ006
            """,
        )
        assert "HQ006" not in lint_codes(path)


class TestHQ007ShardRouting:
    ROUTING_CALL = """\
        def dispatch(pmap, table, value):
            return pmap.shard_for(table, value)
    """
    TOPOLOGY_IMPORT = """\
        from repro.core.metadata import PartitionMap

        PartitionMap
    """

    def test_routing_call_fires_outside_the_homes(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/server/x.py", self.ROUTING_CALL
        )
        findings = [f for f in run_lint(path) if f.code == "HQ007"]
        assert findings
        assert "shard_for" in findings[0].message

    def test_route_rows_fires_in_loader(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/workload/loader.py",
            """\
            def load(pmap, table, columns, rows):
                return pmap.route_rows(table, columns, rows)
            """,
        )
        assert "HQ007" in lint_codes(path)

    def test_topology_import_fires_outside_the_homes(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/server/y.py", self.TOPOLOGY_IMPORT
        )
        assert "HQ007" in lint_codes(path)

    def test_sharded_backend_may_route(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/sharded.py", self.ROUTING_CALL
        )
        assert "HQ007" not in lint_codes(path)

    def test_distribute_pass_may_route(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/xformer/distributed.py",
            self.ROUTING_CALL,
        )
        assert "HQ007" not in lint_codes(path)

    def test_topology_declaration_module_may_import_but_not_route(
        self, tmp_path
    ):
        clean = _write(
            tmp_path, "src/repro/workload/sharding.py", self.TOPOLOGY_IMPORT
        )
        assert "HQ007" not in lint_codes(clean)
        routing = _write(
            tmp_path, "src/repro/workload/sharding2.py", self.ROUTING_CALL
        )
        assert "HQ007" in lint_codes(routing)

    def test_tests_are_exempt(self, tmp_path):
        path = _write(tmp_path, "tests/core/t.py", self.ROUTING_CALL)
        assert "HQ007" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/server/n.py",
            """\
            def dispatch(pmap, table, value):
                return pmap.shard_for(table, value)  # noqa: HQ007
            """,
        )
        assert "HQ007" not in lint_codes(path)


class TestHQ009ExecutorChokePoint:
    BYPASS = """\
    class HyperQSession:
        def tables(self):
            return self.backend.run_sql("SELECT 1")
    """

    def test_fires_in_session(self, tmp_path):
        path = _write(tmp_path, "src/repro/core/session.py", self.BYPASS)
        assert "HQ009" in lint_codes(path)

    def test_fires_in_crosscompiler(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/crosscompiler.py", self.BYPASS
        )
        assert "HQ009" in lint_codes(path)

    def test_executor_calls_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/session.py",
            """\
            class HyperQSession:
                def tables(self):
                    return self.executor.run_sql("SELECT 1")
            """,
        )
        assert "HQ009" not in lint_codes(path)

    def test_other_modules_exempt(self, tmp_path):
        # the executor itself (and backends, sharding...) own the call
        path = _write(tmp_path, "src/repro/cache/executor.py", self.BYPASS)
        assert "HQ009" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/core/session.py",
            """\
            class HyperQSession:
                def tables(self):
                    return self.backend.run_sql("SELECT 1")  # noqa: HQ009
            """,
        )
        assert "HQ009" not in lint_codes(path)


class TestHQ010ProcessSpawn:
    def test_subprocess_import_fires_outside_homes(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/backends.py",
            "import subprocess\n",
        )
        assert "HQ010" in lint_codes(path)

    def test_multiprocessing_from_import_fires(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/server/reactor.py",
            "from multiprocessing import Process\n",
        )
        assert "HQ010" in lint_codes(path)

    def test_os_fork_call_fires(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/server/gateway.py",
            """\
            import os

            def daemonize():
                return os.fork()
            """,
        )
        assert "HQ010" in lint_codes(path)

    def test_from_os_import_fork_fires(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/platform.py",
            "from os import fork\n",
        )
        assert "HQ010" in lint_codes(path)

    def test_procshard_home_exempt(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/procshard.py",
            "import subprocess\nproc = subprocess.Popen(['true'])\n",
        )
        assert "HQ010" not in lint_codes(path)

    def test_shardworker_home_exempt(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/server/shardworker.py",
            "import multiprocessing\n",
        )
        assert "HQ010" not in lint_codes(path)

    def test_outside_src_exempt(self, tmp_path):
        # scripts and tests spawn freely (mini_lint itself shells out)
        path = _write(tmp_path, "scripts/tool.py", "import subprocess\n")
        assert "HQ010" not in lint_codes(path)

    def test_benign_os_calls_allowed(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/backends.py",
            "import os\npid = os.getpid()\npath = os.environ.get('X')\n",
        )
        assert "HQ010" not in lint_codes(path)

    def test_noqa_suppresses(self, tmp_path):
        path = _write(
            tmp_path, "src/repro/core/backends.py",
            "import subprocess  # noqa: HQ010\n",
        )
        assert "HQ010" not in lint_codes(path)


class TestDriver:
    def test_syntax_error_reported_as_e999(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def f(:\n")
        findings = run_lint(path)
        assert any(f.code == "E999" for f in findings)

    def test_repo_is_clean(self):
        """The gate the CI lint job enforces, from inside the suite."""
        import subprocess

        result = subprocess.run(
            [sys.executable, str(SCRIPTS_DIR / "mini_lint.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
