"""Tier-3 concurrency analysis: golden snippets for the static rules
(CC001–CC004), the runtime lock-order harness (CC005/CC006), and the
real-tree guarantees (concheck clean, the ``next_pid`` reactor fix).

Static tests write a tiny package to ``tmp_path`` and run
:func:`check_tree` over it — thread roles come from the
``@reactor_only``/``@worker_context`` decorator seeds, which the call
graph resolves textually (the snippet modules are parsed, never
imported).  Runtime tests build :class:`OrderedLock` instances around an
*isolated* :class:`LockCheckState` so the intentional ABBA pattern never
pollutes the process-global record the session-level gate asserts on.
"""

import threading
import time

import pytest

from repro.analysis.concurrency.annotations import (
    reactor_only,
    thread_safe,
    worker_context,
)
from repro.analysis.concurrency.checker import check_tree
from repro.analysis.concurrency.locks import (
    LockCheckState,
    OrderedLock,
    lockcheck_state,
    make_condition,
    make_lock,
    make_rlock,
)

#: (rule, known-bad module, known-clean twin)
GOLDEN = [
    (
        "CC001",
        """
class Conn:
    def __init__(self):
        self._lock = make_lock("t.conn")
        self.pending = 0

    @reactor_only
    def on_data(self):
        self.pending = self.pending + 1

    @worker_context
    def run_job(self):
        self.pending = self.pending - 1
""",
        """
class Conn:
    def __init__(self):
        self._lock = make_lock("t.conn")
        self.pending = 0

    @reactor_only
    def on_data(self):
        with self._lock:
            self.pending = self.pending + 1

    @worker_context
    def run_job(self):
        with self._lock:
            self.pending = self.pending - 1
""",
    ),
    (
        "CC002",
        """
class Stats:
    def __init__(self):
        self._lock = make_lock("t.stats")
        # hq: guarded-by(self._lock) — shared across workers
        self.total = 0

    def bump(self):
        self.total = self.total + 1
""",
        """
class Stats:
    def __init__(self):
        self._lock = make_lock("t.stats")
        # hq: guarded-by(self._lock) — shared across workers
        self.total = 0

    def bump(self):
        with self._lock:
            self.total = self.total + 1
""",
    ),
    (
        "CC003",
        """
class Loop:
    @reactor_only
    def tick(self):
        with self._lock:
            pass
""",
        """
class Loop:
    @worker_context
    def tick(self):
        with self._lock:
            pass
""",
    ),
    (
        "CC004",
        """
import time

class Proto:
    @reactor_only
    def on_readable(self):
        self._flush()

    def _flush(self):
        time.sleep(0.1)
""",
        """
import time

class Proto:
    @worker_context
    def on_readable(self):
        self._flush()

    def _flush(self):
        time.sleep(0.1)
""",
    ),
]


def _run(tmp_path, source, name="app"):
    pkg = tmp_path / name
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "mod.py").write_text(source)
    return check_tree(pkg)


class TestGoldenSnippets:
    @pytest.mark.parametrize(
        "code,bad,clean", GOLDEN, ids=[c for c, __, ___ in GOLDEN]
    )
    def test_bad_fires_and_clean_twin_does_not(
        self, tmp_path, code, bad, clean
    ):
        bad_codes = {f.code for f in _run(tmp_path / "bad", bad).findings}
        assert code in bad_codes, f"{code} must fire on its bad snippet"
        clean_codes = {
            f.code for f in _run(tmp_path / "clean", clean).findings
        }
        assert code not in clean_codes, f"{code} false positive on clean twin"

    def test_cc004_names_the_call_chain(self, tmp_path):
        checker = _run(tmp_path, GOLDEN[3][1])
        [finding] = [f for f in checker.findings if f.code == "CC004"]
        assert "on_readable" in finding.message
        assert "_flush" in finding.message

    def test_justified_allow_pragma_suppresses(self, tmp_path):
        checker = _run(
            tmp_path,
            """
class Loop:
    @reactor_only
    def tick(self):
        # hq: allow(CC003) — bounded micro-section
        with self._lock:
            pass
""",
        )
        assert [f.code for f in checker.findings] == []
        [entry] = checker.suppressed
        assert entry["code"] == "CC003"
        assert "bounded micro-section" in entry["suppressed_by"]

    def test_bare_pragma_is_flagged_and_does_not_suppress(self, tmp_path):
        checker = _run(
            tmp_path,
            """
class Loop:
    @reactor_only
    def tick(self):
        # hq: allow(CC003)
        with self._lock:
            pass
""",
        )
        codes = sorted(f.code for f in checker.findings)
        assert codes == ["CC000", "CC003"]
        assert checker.suppressed == []

    def test_thread_safe_without_reason_is_flagged(self, tmp_path):
        checker = _run(
            tmp_path,
            """
class Loop:
    @thread_safe
    @reactor_only
    def tick(self):
        with self._lock:
            pass
""",
        )
        codes = sorted(f.code for f in checker.findings)
        assert "CC000" in codes and "CC003" in codes


class TestAnnotations:
    def test_thread_safe_requires_a_reason(self):
        with pytest.raises(ValueError):
            thread_safe("")
        with pytest.raises(ValueError):
            thread_safe(lambda: None)

    def test_decorators_mark_and_return_the_function(self):
        @reactor_only
        def on_loop():
            return 7

        @worker_context
        def on_worker():
            return 8

        @thread_safe("atomic by construction")
        def anywhere():
            return 9

        assert (on_loop(), on_worker(), anywhere()) == (7, 8, 9)


class TestRuntimeHarness:
    def test_abba_records_a_cc005_cycle(self):
        state = LockCheckState()
        a = OrderedLock("t.a", state=state)
        b = OrderedLock("t.b", state=state)

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=ab)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=ba)
        t2.start()
        t2.join()

        report = state.report()
        [cycle] = report["cycles"]
        assert cycle["code"] == "CC005"
        assert set(cycle["cycle"]) == {"t.a", "t.b"}
        # both closing sites recorded, pointing into this test
        assert all("test_concurrency" in s for s in cycle["sites"].values())

    def test_consistent_order_records_no_cycle(self):
        state = LockCheckState()
        a = OrderedLock("t.a", state=state)
        b = OrderedLock("t.b", state=state)
        for __ in range(3):
            with a:
                with b:
                    pass
        report = state.report()
        assert report["cycles"] == []
        assert report["edges"] == {"t.a->t.b": 3}

    def test_reactor_long_hold_records_cc006(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK_HOLD_MS", "5")
        state = LockCheckState()
        lock = OrderedLock("t.slow", state=state)

        def hold():
            with lock:
                time.sleep(0.03)

        t = threading.Thread(target=hold, name="reactor-test")
        t.start()
        t.join()
        [entry] = state.report()["long_holds"]
        assert entry["code"] == "CC006"
        assert entry["lock"] == "t.slow"
        assert entry["held_ms"] > 5

    def test_worker_long_hold_is_not_flagged(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK_HOLD_MS", "5")
        state = LockCheckState()
        lock = OrderedLock("t.slow", state=state)

        def hold():
            with lock:
                time.sleep(0.03)

        t = threading.Thread(target=hold, name="worker-test-0")
        t.start()
        t.join()
        assert state.report()["long_holds"] == []

    def test_rlock_reentry_records_one_acquisition(self):
        state = LockCheckState()
        lock = OrderedLock("t.re", reentrant=True, state=state)
        with lock:
            with lock:
                pass
        assert state.report()["acquisitions"] == 1

    def test_factories_return_plain_primitives_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        assert not isinstance(make_lock("t.x"), OrderedLock)
        assert not isinstance(make_rlock("t.y"), OrderedLock)
        cond = make_condition("t.z")
        assert isinstance(cond, threading.Condition)

    def test_factories_instrument_when_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        assert isinstance(make_lock("t.x"), OrderedLock)
        assert isinstance(make_rlock("t.y"), OrderedLock)
        cond = make_condition("t.z")
        assert isinstance(cond, threading.Condition)
        # the condition's mutex is the instrumented lock
        with cond:
            assert "t.z" in lockcheck_state().held_names()


class TestRealTree:
    """The shipped source tree holds the acceptance bar."""

    @pytest.fixture(scope="class")
    def checker(self):
        from pathlib import Path

        import repro

        return check_tree(Path(repro.__file__).parent)

    def test_concheck_reports_zero_errors(self, checker):
        from repro.analysis.framework import Severity

        errors = [
            f for f in checker.findings if f.severity == Severity.ERROR
        ]
        assert errors == [], [f.render() for f in errors]

    def test_every_suppression_is_justified(self, checker):
        assert checker.suppressed, "expected the triaged suppressions"
        for entry in checker.suppressed:
            reason = entry["suppressed_by"].split(":", 1)[1].strip()
            assert reason, f"unjustified suppression: {entry}"

    def test_roles_cover_both_sides_of_the_pool(self, checker):
        reactor = {
            fn.qualname
            for fn in checker.index.functions.values()
            if "reactor" in fn.role_via
        }
        worker = {
            fn.qualname
            for fn in checker.index.functions.values()
            if "worker" in fn.role_via
        }
        assert "repro.server.reactor.Reactor._run_callbacks" in reactor
        assert "repro.server.pgserver.PgProtocol._run_query" in worker

    def test_next_pid_regression_lock_free_on_reactor(self, checker):
        """The PG PID counter is reached on the reactor thread via
        ``_on_ready -> server.next_pid()``; it must not take a lock
        there (the fix replaced a guarded counter with an atomic
        ``itertools.count`` step)."""
        fn = checker.index.functions[
            "repro.server.pgserver.PgWireServer.next_pid"
        ]
        assert "reactor" in fn.roles(), "call graph must see the indirection"
        assert not [
            f
            for f in checker.findings
            if f.code == "CC003" and "pgserver" in f.path
        ]
        # nor is it merely suppressed — the lock is gone
        assert not [
            e
            for e in checker.suppressed
            if e["code"] == "CC003" and "pgserver" in e["path"]
        ]

    def test_next_pid_still_unique_across_threads(self):
        from repro.server.pgserver import PgWireServer

        server = PgWireServer(port=0)
        pids: list[int] = []
        lists: list[list[int]] = [[] for __ in range(4)]

        def grab(bucket):
            for __ in range(200):
                bucket.append(server.next_pid())

        threads = [
            threading.Thread(target=grab, args=(lists[i],)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for bucket in lists:
            pids.extend(bucket)
        assert len(pids) == len(set(pids)) == 800
