"""Tests for the qcheck rule framework (findings, registry, driver)."""

from repro.analysis import Finding, QueryAnalyzer, Severity, default_rules
from repro.analysis.framework import (
    AnalysisContext,
    Rule,
    iter_child_nodes,
    walk_q,
)
from repro.qlang.parser import parse, parse_expression


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.INFO.label == "info"


class TestFinding:
    def test_render_with_pos(self):
        finding = Finding("QC001", "bad name", Severity.ERROR, pos=12)
        assert finding.render() == "pos 12: QC001 [error] bad name"

    def test_render_with_path(self):
        finding = Finding(
            "HQ002", "swallowed", Severity.WARNING, path="x.py", line=3
        )
        assert finding.render() == "x.py:3: HQ002 [warning] swallowed"

    def test_to_dict_round_trips_the_label(self):
        finding = Finding("QC004", "nope", Severity.ERROR, category="m")
        data = finding.to_dict()
        assert data["severity"] == "error"
        assert data["category"] == "m"


class TestWalk:
    def test_walk_visits_template_parts(self):
        node = parse_expression(
            "select Price by Symbol from trades where Size > 10"
        )
        kinds = {type(n).__name__ for n in walk_q(node)}
        assert {"Template", "Name", "BinOp"} <= kinds

    def test_iter_child_nodes_skips_none(self):
        node = parse_expression("f[x;]")
        children = list(iter_child_nodes(node))
        assert all(child is not None for child in children)


class TestRegistry:
    def test_default_rules_are_fresh_instances(self):
        first = default_rules()
        second = default_rules()
        assert [r.code for r in first] == [r.code for r in second]
        assert all(a is not b for a, b in zip(first, second))

    def test_expected_codes_registered(self):
        codes = {r.code for r in default_rules()}
        assert {"QC001", "QC002", "QC003", "QC004", "QC005", "QC006"} <= codes


class TestAnalyzer:
    def test_parse_error_becomes_qc000(self, analyzer):
        findings = analyzer.analyze_source("select from (")
        assert [f.code for f in findings] == ["QC000"]
        assert findings[0].severity is Severity.ERROR

    def test_declared_accumulates_across_statements(self, analyzer, session):
        program = parse("v: select from trades; select Symbol from v")
        findings = analyzer.analyze(program, session.session_scope)
        assert [f for f in findings if f.code == "QC001"] == []

    def test_custom_rule_list(self, session):
        class Always(Rule):
            code = "QC099"
            name = "always"

            def check(self, statement, ctx):
                yield self.finding("fired")

        analyzer = QueryAnalyzer(rules=[Always()])
        findings = analyzer.analyze_source("1+1", session.session_scope)
        assert [f.code for f in findings] == ["QC099"]

    def test_disabled_rule_skipped(self, session):
        class Off(Rule):
            code = "QC098"
            enabled = False

            def check(self, statement, ctx):
                yield self.finding("must not fire")

        analyzer = QueryAnalyzer(rules=[Off()])
        assert analyzer.analyze_source("1+1", session.session_scope) == []


class TestAnalysisContext:
    def test_table_columns_from_mdi(self, hyperq):
        ctx = AnalysisContext(mdi=hyperq.mdi)
        assert ctx.table_columns("trades") == [
            "Symbol", "Time", "Price", "Size",
        ]

    def test_table_columns_unknown(self, hyperq):
        ctx = AnalysisContext(mdi=hyperq.mdi)
        assert ctx.table_columns("ghost") is None

    def test_names_anything_covers_declared(self, hyperq):
        ctx = AnalysisContext(mdi=hyperq.mdi, declared={"tmp"})
        assert ctx.names_anything("tmp")
        assert ctx.names_anything("trades")
        assert not ctx.names_anything("ghost")
