"""Unit tests for the XTRA invariant checker on hand-built trees."""

from repro.analysis import check_operator_tree
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    ORDCOL,
    XtraColumn,
    XtraConstTable,
    XtraFilter,
    XtraGet,
    XtraJoin,
    XtraLimit,
    XtraProject,
    XtraUnionAll,
)
from repro.sqlengine.types import SqlType


def _get(*names, keys=()):
    columns = [XtraColumn(n, SqlType.DOUBLE) for n in names]
    columns.append(XtraColumn(ORDCOL, SqlType.BIGINT, implicit=True))
    return XtraGet("t", columns, ordcol=ORDCOL, keys=list(keys))


def codes(op):
    return {v.code for v in check_operator_tree(op)}


class TestCleanTrees:
    def test_simple_scan(self):
        assert check_operator_tree(_get("a", "b")) == []

    def test_filter_over_scan(self):
        op = XtraFilter(
            _get("a"), sc.SCmp(">", sc.SColRef("a"), sc.SConst(1, None))
        )
        assert check_operator_tree(op) == []

    def test_project_over_scan(self):
        op = XtraProject(_get("a", "b"), [("a2", sc.SColRef("a"))])
        assert check_operator_tree(op) == []


class TestViolations:
    def test_xi001_duplicate_leaf_columns(self):
        op = XtraGet(
            "t",
            [
                XtraColumn("a", SqlType.DOUBLE),
                XtraColumn("a", SqlType.DOUBLE),
            ],
            ordcol=None,
        )
        assert "XI001" in codes(op)

    def test_xi002_order_column_missing(self):
        op = XtraGet(
            "t", [XtraColumn("a", SqlType.DOUBLE)], ordcol="not_there"
        )
        assert "XI002" in codes(op)

    def test_xi003_unresolvable_reference(self):
        op = XtraFilter(
            _get("a"),
            sc.SCmp("=", sc.SColRef("ghost"), sc.SConst(1, None)),
        )
        violations = check_operator_tree(op)
        assert any(
            v.code == "XI003" and "ghost" in v.message for v in violations
        )

    def test_xi004_non_boolean_predicate(self):
        op = XtraFilter(
            _get("a"),
            sc.SArith("+", sc.SColRef("a"), sc.SConst(1.0, SqlType.DOUBLE)),
        )
        assert "XI004" in codes(op)

    def test_xi005_unknown_join_kind(self):
        op = XtraJoin("sideways", _get("a"), _get("b"))
        assert "XI005" in codes(op)

    def test_xi005_union_arity_mismatch(self):
        op = XtraUnionAll(_get("a"), _get("a", "b"))
        assert "XI005" in codes(op)

    def test_xi005_const_table_ragged_rows(self):
        op = XtraConstTable(
            [XtraColumn("a", SqlType.BIGINT)], [[1], [2, 3]]
        )
        assert "XI005" in codes(op)

    def test_xi005_negative_limit(self):
        op = XtraLimit(_get("a"), count=-1)
        assert "XI005" in codes(op)

    def test_xi006_keys_not_in_output(self):
        op = _get("a", keys=["missing_key"])
        assert "XI006" in codes(op)

    def test_violations_name_the_operator(self):
        op = XtraLimit(_get("a"), count=-1)
        [violation] = [
            v for v in check_operator_tree(op) if v.code == "XI005"
        ]
        assert violation.operator == "XtraLimit"
        assert "XI005" in violation.render()

    def test_nested_violations_all_reported(self):
        broken_leaf = XtraGet(
            "t", [XtraColumn("a", SqlType.DOUBLE)], ordcol="nope"
        )
        op = XtraFilter(
            broken_leaf,
            sc.SCmp("=", sc.SColRef("ghost"), sc.SConst(1, None)),
        )
        assert {"XI002", "XI003"} <= codes(op)


class TestPrunedScanKeepsKeysConsistent:
    """Regression: column pruning must drop XtraGet.keys with the columns
    (the XI006 invariant caught the original bug)."""

    def test_pruning_a_keyed_scan(self, hyperq):
        from repro.qlang.parser import parse_expression

        hyperq.engine.execute(
            "CREATE TABLE keyed_ref (k BIGINT, v DOUBLE PRECISION, "
            "w DOUBLE PRECISION, ordcol BIGINT)"
        )
        session = hyperq.create_session()
        unit = session.pipeline.translate(
            parse_expression("select v from keyed_ref"),
            session.session_scope,
        )
        assert unit.sql is not None
        session.close()
