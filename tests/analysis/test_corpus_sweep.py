"""Zero-findings sweep: every shipped Q query passes qcheck clean.

Runs ``scripts/qlint.py`` (the CI gate) in-process over the 25-query
Analytical Workload and the ``examples/`` corpora, asserting zero
findings of any severity — the analyzer has no false positives on the
supported Q surface the repo itself exercises.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def qlint():
    spec = importlib.util.spec_from_file_location(
        "qlint", REPO_ROOT / "scripts" / "qlint.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["qlint"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("qlint", None)


class TestCorpusSweep:
    def test_all_shipped_corpora_are_clean(self, qlint, tmp_path):
        report_path = tmp_path / "qlint_report.json"
        exit_code = qlint.main(["--output", str(report_path)])
        assert exit_code == 0
        report = json.loads(report_path.read_text())
        assert report["findings"] == [], (
            "qcheck false positives on shipped queries: "
            + json.dumps(report["findings"], indent=2)
        )
        assert report["by_severity"] == {
            "info": 0, "warning": 0, "error": 0,
        }

    def test_sweep_covers_the_25_query_workload(self, qlint, tmp_path):
        report_path = tmp_path / "qlint_report.json"
        qlint.main(["--output", str(report_path)])
        report = json.loads(report_path.read_text())
        assert report["corpora"]["workload.analytical"] == 25
        assert len(report["corpora"]) == 5
        assert report["total_queries"] >= 25 + 5

    def test_sweep_catches_a_planted_bad_query(self, qlint):
        corpus = qlint.Corpus(
            "planted",
            ["select ghost_column from trades"],
            qlint._market_platform(
                "trades: ([] Symbol:`A`B; Price:1.0 2.0)", ["trades"]
            ),
        )
        rows = qlint.analyze_corpus(corpus)
        assert any(row["code"] == "QC001" for row in rows)
        assert all(row["corpus"] == "planted" for row in rows)
