"""Fixtures for the static-analysis suite: a market-loaded platform."""

import pytest

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.workload.loader import load_q_source

MARKET_SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Time:09:30:30 09:31:00 09:32:00 09:30:45;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40);
quotes: ([] Symbol:`GOOG`GOOG`IBM;
            Time:09:30:00 09:31:00 09:30:30;
            Bid:99.0 100.5 49.0;
            Ask:99.5 101.0 49.5)
"""

MARKET_TABLES = ["trades", "quotes"]


@pytest.fixture()
def hyperq():
    hq = HyperQ()
    load_q_source(
        hq.engine, Interpreter(), MARKET_SOURCE, MARKET_TABLES, mdi=hq.mdi
    )
    return hq


@pytest.fixture()
def session(hyperq):
    s = hyperq.create_session()
    yield s
    s.close()


@pytest.fixture()
def analyzer(hyperq):
    from repro.analysis import QueryAnalyzer

    return QueryAnalyzer(mdi=hyperq.mdi, config=hyperq.config)
