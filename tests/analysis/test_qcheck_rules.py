"""Golden Q snippets for every qcheck rule: one known-bad, one known-clean.

The acceptance bar for the analyzer: each ``QC0xx`` code fires on its bad
snippet and stays silent on its clean twin (no false positives on
supported Q — the corpus sweep in ``test_corpus_sweep.py`` extends that
guarantee to every shipped query).
"""

import pytest

from repro.analysis import Severity

#: (code, known-bad snippet, known-clean twin)
GOLDEN = [
    (
        "QC001",
        "select frobnicate from trades",
        "select Price from trades",
    ),
    (
        "QC001",
        "select from mystery_table where x > 1",
        "select from trades where Price > 1",
    ),
    (
        "QC002",
        "select from trades where Price = 0n",
        "select from trades where null Price",
    ),
    (
        "QC003",
        "select sums Size by Symbol from trades",
        "select sum Size by Symbol from trades",
    ),
    (
        "QC004",
        "+/[1 2 3]",
        "sum 1 2 3",
    ),
    (
        "QC004",
        "select fills Price from trades",
        "select Price from trades",
    ),
    (
        "QC005",
        "select Price, Price: Size from trades",
        "select Price, Notional: Size from trades",
    ),
    (
        "QC006",
        "trades: 42",
        "threshold: 42",
    ),
]


class TestGoldenSnippets:
    @pytest.mark.parametrize(
        "code,bad,clean", GOLDEN,
        ids=[f"{c}-{i}" for i, (c, __, ___) in enumerate(GOLDEN)],
    )
    def test_bad_snippet_fires_and_clean_twin_does_not(
        self, analyzer, session, code, bad, clean
    ):
        bad_codes = {
            f.code
            for f in analyzer.analyze_source(bad, session.session_scope)
        }
        assert code in bad_codes, f"{code} must fire on {bad!r}"
        clean_codes = {
            f.code
            for f in analyzer.analyze_source(clean, session.session_scope)
        }
        assert code not in clean_codes, (
            f"{code} false positive on {clean!r}"
        )

    def test_at_least_five_distinct_codes_fire(self, analyzer, session):
        fired = set()
        for __, bad, ___ in GOLDEN:
            fired |= {
                f.code
                for f in analyzer.analyze_source(bad, session.session_scope)
            }
        assert len({c for c in fired if c.startswith("QC")}) >= 5


class TestRuleDetails:
    def test_qc001_message_mirrors_the_binder(self, analyzer, session):
        findings = analyzer.analyze_source(
            "select frobnicate from trades", session.session_scope
        )
        [finding] = [f for f in findings if f.code == "QC001"]
        assert finding.severity is Severity.ERROR
        assert "searched local, session and server scopes" in finding.message

    def test_qc001_respects_lambda_parameters(self, analyzer, session):
        findings = analyzer.analyze_source(
            "f: {[lo] select from trades where Price > lo}",
            session.session_scope,
        )
        assert [f for f in findings if f.code == "QC001"] == []

    def test_qc002_three_valued_logic_mode(self, hyperq, session):
        from repro.analysis import QueryAnalyzer
        from repro.config import HyperQConfig, XformerConfig

        config = HyperQConfig(xformer=XformerConfig(two_valued_logic=False))
        analyzer = QueryAnalyzer(mdi=hyperq.mdi, config=config)
        findings = analyzer.analyze_source(
            "select from trades where Symbol = `GOOG",
            session.session_scope,
        )
        assert any(f.code == "QC002" for f in findings)

    def test_qc003_only_on_grouped_templates(self, analyzer, session):
        findings = analyzer.analyze_source(
            "select sums Price from trades", session.session_scope
        )
        assert [f for f in findings if f.code == "QC003"] == []

    def test_qc004_findings_are_fatal(self, analyzer, session):
        findings = analyzer.analyze_source(
            "select fills Price from trades", session.session_scope
        )
        fills = [f for f in findings if f.code == "QC004"]
        assert fills and all(f.fatal for f in fills)
        assert all(f.category == "missing-feature" for f in fills)

    def test_qc006_names_the_shadowed_relation(self, analyzer, session):
        findings = analyzer.analyze_source(
            "quotes: 1", session.session_scope
        )
        [finding] = [f for f in findings if f.code == "QC006"]
        assert "quotes" in finding.message


class TestPipelineEscalation:
    """The analyze pass turns fatal findings into UntranslatableError
    before bind runs (config.analysis.raise_on_untranslatable)."""

    def test_fatal_finding_raises_untranslatable(self, session):
        from repro.errors import QNotSupportedError, UntranslatableError

        with pytest.raises(UntranslatableError) as excinfo:
            session.execute("select fills Price from trades")
        # still a QNotSupportedError: existing supported-surface
        # handling (and its category) keeps working
        assert isinstance(excinfo.value, QNotSupportedError)
        assert excinfo.value.category == "missing-feature"
        assert excinfo.value.code == "QC004"

    def test_warnings_do_not_block_translation(self, session):
        outcome = session.run("select from trades where Price = 0n")
        assert outcome.sql_statements

    def test_findings_land_in_unit_diagnostics(self, session):
        from repro.qlang.parser import parse_expression

        unit = session.pipeline.translate(
            parse_expression("select from trades where Price = 0n"),
            session.session_scope,
        )
        assert any("QC002" in line for line in unit.diagnostics)

    def test_findings_counted_in_metrics(self, session):
        from repro.core.pipeline import ANALYSIS_FINDINGS

        before = ANALYSIS_FINDINGS.value(rule="QC002")
        session.run("select from trades where Price = 0n")
        assert ANALYSIS_FINDINGS.value(rule="QC002") == before + 1


class TestShardOrderRule:
    """QC007: order-dependent takes over sharded sources.

    Needs a platform whose backend actually partitions ``trades`` —
    the distribute pass then scatters it, and gathered row order is
    nondeterministic.  ``ratings`` stays replicated (every shard holds
    a full copy), so takes from it keep single-node semantics.
    """

    #: (known-bad snippet, known-clean twin)
    SHARDED_GOLDEN = [
        ("first select from trades", "first `Price xasc select from trades"),
        ("2#select from trades", "2#`Price xasc select from trades"),
        ("trades[til 3]", "ratings[til 3]"),
        (
            "select first Price by Symbol from trades",
            "select max Price by Symbol from trades",
        ),
    ]

    @pytest.fixture()
    def sharded_analyzer(self):
        from tests.core.test_sharded import build_sharded

        from repro.analysis import QueryAnalyzer

        platform, backend = build_sharded(2)
        analyzer = QueryAnalyzer(mdi=platform.mdi, config=platform.config)
        session = platform.create_session()
        yield analyzer, session
        session.close()
        backend.close()

    @pytest.mark.parametrize(
        "bad,clean", SHARDED_GOLDEN,
        ids=["first", "take", "til-index", "grouped-first"],
    )
    def test_fires_on_bad_and_not_on_sorted_twin(
        self, sharded_analyzer, bad, clean
    ):
        analyzer, session = sharded_analyzer
        bad_codes = {
            f.code
            for f in analyzer.analyze_source(bad, session.session_scope)
        }
        assert "QC007" in bad_codes, f"QC007 must fire on {bad!r}"
        clean_codes = {
            f.code
            for f in analyzer.analyze_source(clean, session.session_scope)
        }
        assert "QC007" not in clean_codes, (
            f"QC007 false positive on {clean!r}"
        )

    def test_silent_without_a_partition_map(self, analyzer, session):
        findings = analyzer.analyze_source(
            "first select from trades", session.session_scope
        )
        assert [f for f in findings if f.code == "QC007"] == []

    def test_message_names_table_and_shard_count(self, sharded_analyzer):
        analyzer, session = sharded_analyzer
        findings = analyzer.analyze_source(
            "first select from trades", session.session_scope
        )
        [finding] = [f for f in findings if f.code == "QC007"]
        assert "trades" in finding.message
        assert "2 shards" in finding.message
        assert "xasc" in finding.message
