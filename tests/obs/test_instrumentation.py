"""Integration tests for the observability wiring: StageTimings/span
parity, the ``metrics[]`` admin command over a real socket, and the
config opt-out restoring baseline behaviour."""

import pytest

from repro.config import HyperQConfig, ObservabilityConfig
from repro.core.platform import HyperQ
from repro.obs import get_registry, get_tracer
from repro.qlang.interp import Interpreter
from repro.qlang.values import QDict
from repro.server.client import QConnection
from repro.server.hyperq_server import HyperQServer
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source

SOURCE = (
    "trades: ([] Symbol:`GOOG`IBM`GOOG; Price:100.0 50.0 101.0; "
    "Size:10 20 30)"
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate each test from the process-global registry/tracer."""
    registry, tracer = get_registry(), get_tracer()
    registry.reset()
    tracer.reset()
    yield
    registry.enable()
    tracer.enable()
    registry.reset()
    tracer.reset()


def make_hyperq(config: HyperQConfig | None = None) -> HyperQ:
    hq = HyperQ(config=config)
    load_q_source(hq.engine, Interpreter(), SOURCE, ["trades"], mdi=hq.mdi)
    return hq


class TestStageTimingSpanParity:
    def test_timings_match_span_durations(self):
        session = make_hyperq().create_session()
        try:
            outcome = session.run("select from trades where Price > 60")
        finally:
            session.close()
        trace = get_tracer().last_trace()
        assert trace is not None and trace.name == "hyperq.run"
        for stage, recorded in (
            ("parse", outcome.timings.parse),
            ("algebrize", outcome.timings.algebrize),
            ("optimize", outcome.timings.optimize),
            ("serialize", outcome.timings.serialize),
        ):
            spans = trace.find(f"stage.{stage}")
            assert spans, f"no stage.{stage} span recorded"
            span_total = sum(span.duration for span in spans)
            # timings are *derived from* the spans, so they agree exactly
            assert recorded == pytest.approx(span_total, rel=1e-9)

    def test_stage_histogram_observes_each_stage(self):
        session = make_hyperq().create_session()
        try:
            session.execute("select from trades")
        finally:
            session.close()
        histogram = get_registry().get("hyperq_stage_seconds")
        for stage in ("parse", "algebrize", "optimize", "serialize"):
            assert histogram.value(stage=stage) >= 1.0


class TestMetricsAdminCommand:
    def test_metrics_over_the_wire(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        with HyperQServer(engine=engine) as server:
            with QConnection(*server.address) as q:
                q.query("select from trades where Price > 60")
                result = q.query("metrics[]")
        assert isinstance(result, QDict)
        exported = dict(zip(result.keys.items, result.values.items))
        assert exported["hyperq_runs_total{mode=execute}"] >= 2.0
        assert exported["hyperq_stage_seconds_count{stage=parse}"] >= 2.0
        # the query that *asked* for metrics is itself already counted
        assert (
            exported["server_queries_total{kind=sync,server=qipc}"] >= 1.0
        )

    def test_metrics_admin_in_session(self):
        session = make_hyperq().create_session()
        try:
            session.execute("select from trades")
            result = session.execute("metrics[]")
        finally:
            session.close()
        assert isinstance(result, QDict)
        names = set(result.keys.items)
        assert "hyperq_runs_total{mode=execute}" in names
        assert "mdi_cache_lookups_total" in names


class TestOptOut:
    DISABLED = HyperQConfig(
        observability=ObservabilityConfig(
            metrics_enabled=False, tracing_enabled=False
        )
    )

    def test_disabled_records_nothing(self):
        session = make_hyperq(self.DISABLED).create_session()
        try:
            outcome = session.run("select from trades")
        finally:
            session.close()
        # StageTimings are baseline behaviour and must survive the opt-out
        assert outcome.timings.parse > 0
        assert outcome.timings.algebrize > 0
        assert get_tracer().last_trace() is None
        runs = get_registry().get("hyperq_runs_total")
        assert runs.value(mode="execute") == 0.0

    def test_reenabling_restores_recording(self):
        session = make_hyperq(self.DISABLED).create_session()
        session.close()
        session = make_hyperq(HyperQConfig()).create_session()
        try:
            session.execute("select from trades")
        finally:
            session.close()
        assert get_tracer().last_trace() is not None
        runs = get_registry().get("hyperq_runs_total")
        assert runs.value(mode="execute") == 1.0
