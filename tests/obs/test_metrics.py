"""Unit tests for the metrics registry: instrument semantics, labels,
get-or-create, export shapes, and the disabled no-op mode."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_sample_name,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero(self, registry):
        c = registry.counter("events_total")
        assert c.value() == 0.0

    def test_inc_accumulates(self, registry):
        c = registry.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("events_total")
        c.inc(kind="a")
        c.inc(kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 2.0
        assert c.value(kind="b") == 1.0
        assert c.value() == 0.0  # the unlabelled series is its own

    def test_label_order_does_not_matter(self, registry):
        c = registry.counter("events_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("events_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("active")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0

    def test_can_go_negative(self, registry):
        g = registry.gauge("active")
        g.dec()
        assert g.value() == -1.0


class TestHistogram:
    def test_count_sum_mean(self, registry):
        h = registry.histogram("latency_seconds")
        for v in (0.001, 0.003, 0.005):
            h.observe(v)
        assert h.value() == 3.0  # value() is the observation count
        assert h.mean() == pytest.approx(0.003)

    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        [sample] = h.samples()
        assert sample["buckets"]["le_0.01"] == 1
        assert sample["buckets"]["le_0.1"] == 2
        assert sample["buckets"]["le_1"] == 3
        assert sample["buckets"]["le_inf"] == 4
        assert sample["min"] == 0.005
        assert sample["max"] == 5.0

    def test_flat_export_has_count_and_sum(self, registry):
        h = registry.histogram("latency_seconds")
        h.observe(0.25, stage="parse")
        flat = registry.flat()
        assert flat["latency_seconds_count{stage=parse}"] == 1.0
        assert flat["latency_seconds_sum{stage=parse}"] == 0.25

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_shape(self, registry):
        registry.counter("c", help="a counter").inc(kind="q")
        snap = registry.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["help"] == "a counter"
        assert snap["c"]["samples"] == [
            {"labels": {"kind": "q"}, "value": 1.0}
        ]

    def test_to_json_roundtrips(self, registry):
        registry.gauge("g").set(2, srv="a")
        assert json.loads(registry.to_json())["g"]["kind"] == "gauge"

    def test_reset_zeroes_series_keeps_instruments(self, registry):
        c = registry.counter("c")
        c.inc()
        registry.reset()
        assert registry.get("c") is c
        assert c.value() == 0.0

    def test_disabled_registry_is_noop(self, registry):
        registry.disable()
        c = registry.counter("c")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc()
        g.set(9)
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.value() == 0.0
        registry.enable()
        c.inc()
        assert c.value() == 1.0


class TestFlatNames:
    def test_no_labels(self):
        assert format_sample_name("n", {}) == "n"

    def test_labels_sorted(self):
        assert (
            format_sample_name("n", {"b": "2", "a": "1"}) == "n{a=1,b=2}"
        )
