"""Unit tests for the span tracer: nesting, timing, retention, and the
disabled mode (still timed, never retained)."""

import threading

import pytest

from repro.obs.tracing import Tracer


@pytest.fixture()
def tracer():
    return Tracer()


class TestNesting:
    def test_child_attaches_to_open_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.children == [child]
        assert child.children == []

    def test_three_levels(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        [trace] = tracer.traces()
        assert trace.name == "a"
        assert trace.children[0].name == "b"
        assert trace.children[0].children[0].name == "c"

    def test_siblings(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        assert [c.name for c in root.children] == ["x", "y"]

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None


class TestTiming:
    def test_duration_positive_and_nested_fits(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                sum(range(1000))
        assert child.duration > 0
        assert root.duration >= child.duration

    def test_child_total_filters_by_name(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert root.child_total() == pytest.approx(
            root.child_total("a") + root.child_total("b")
        )

    def test_find_collects_descendants(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("stage"):
                pass
            with tracer.span("stage"):
                pass
        assert len(root.find("stage")) == 2
        assert root.find("root") == [root]


class TestRetention:
    def test_only_roots_are_retained(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [t.name for t in tracer.traces()] == ["root"]

    def test_ring_is_bounded(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [t.name for t in tracer.traces()] == ["s2", "s3", "s4"]
        assert tracer.last_trace().name == "s4"

    def test_reset_clears_ring(self, tracer):
        with tracer.span("root"):
            pass
        tracer.reset()
        assert tracer.traces() == []
        assert tracer.last_trace() is None

    def test_threads_have_independent_stacks(self, tracer):
        seen = {}

        def worker():
            with tracer.span("thread-root") as s:
                seen["current"] = tracer.current() is s

        with tracer.span("main-root") as main_root:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            # the other thread's root must not become our child
            assert main_root.children == []
        assert seen["current"] is True
        assert {t.name for t in tracer.traces()} == {
            "thread-root",
            "main-root",
        }


class TestDisabled:
    def test_disabled_span_still_times(self, tracer):
        tracer.disable()
        with tracer.span("work") as span:
            sum(range(1000))
        assert span.duration > 0

    def test_disabled_span_is_detached(self, tracer):
        tracer.disable()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        assert root.children == []
        assert tracer.traces() == []
        assert tracer.current() is None

    def test_reenable_resumes_recording(self, tracer):
        tracer.disable()
        with tracer.span("ignored"):
            pass
        tracer.enable()
        with tracer.span("kept"):
            pass
        assert [t.name for t in tracer.traces()] == ["kept"]

    def test_attrs_recorded(self, tracer):
        with tracer.span("run", mode="execute") as span:
            pass
        assert span.attrs == {"mode": "execute"}
        assert span.to_dict()["attrs"] == {"mode": "execute"}
