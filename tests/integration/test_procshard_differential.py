"""Differential suite for process-mode shards: the full 25-query
Analytical Workload through ``ShardingConfig.mode="process"`` — every
result byte-identical (QIPC encoding) to the thread-mode sharded run and
to the single-backend ground truth, including when a shard worker
process is killed mid-scatter.

Process shards cross a real OS boundary (spawn, QIPC transport, the
procshard result codec, crash respawn), so this is the test that proves
the transport is invisible: same bytes, whatever hosts the partition.

Spawned workers are the expensive part; everything shares one
module-scoped 2-shard process platform except the kill test, which
needs its own (it mutates restart state).
"""

import pytest

from repro.config import (
    CircuitBreakerConfig,
    HyperQConfig,
    RetryConfig,
    ShardingConfig,
    WlmConfig,
)
from repro.core.platform import HyperQ
from repro.core.procshard import ProcessShardBackend
from repro.core.sharded import ShardedBackend
from repro.qipc.encode import encode_value
from repro.wlm import WorkloadManager
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.loader import load_table
from repro.workload.sharding import (
    analytical_partition_map,
    build_sharded_platform,
    load_sharded_workload,
)


def _process_config(**sharding_kwargs) -> HyperQConfig:
    return HyperQConfig(
        sharding=ShardingConfig(mode="process", **sharding_kwargs)
    )


@pytest.fixture(scope="module")
def workload():
    return generate(AnalyticalConfig.small())


@pytest.fixture(scope="module")
def reference(workload):
    """Single-backend ground truth: QIPC-encoded bytes per query."""
    platform = HyperQ()
    for name, table in workload.tables.items():
        load_table(platform.engine, name, table, mdi=platform.mdi)
    return {
        q.number: encode_value(platform.q(q.text))
        for q in workload.queries
    }


@pytest.fixture(scope="module")
def process_platform(workload):
    platform, backend, __ = build_sharded_platform(
        2, config=_process_config(), workload=workload
    )
    yield platform, backend
    backend.close()


def _procshards(backend: ShardedBackend) -> list[ProcessShardBackend]:
    shards = [handle.primary.inner for handle in backend._shards]
    assert all(isinstance(s, ProcessShardBackend) for s in shards)
    return shards


def test_full_workload_byte_identical_in_process_mode(
    workload, reference, process_platform
):
    platform, __ = process_platform
    mismatched = []
    for query in workload.queries:
        actual = encode_value(platform.q(query.text))
        if actual != reference[query.number]:
            mismatched.append(query.number)
    assert not mismatched, (
        f"queries {mismatched} diverged in process mode"
    )


def test_shards_admin_reports_process_transport(process_platform):
    platform, __ = process_platform
    table = platform.q("shards[]")
    assert list(table.column("mode").items) == ["process", "process"]
    pids = list(table.column("pid").items)
    assert all(pid > 0 for pid in pids) and pids[0] != pids[1]
    assert list(table.column("restarts").items) == [0, 0]


def test_mid_scatter_kill_respawns_and_stays_byte_identical(
    workload, reference
):
    """SIGKILL one shard worker exactly as a scattered subquery reaches
    it: the broken socket surfaces as a transient, the per-shard retry
    absorbs it against the respawned worker (partition reloaded from the
    coordinator journal), and the whole suite still reproduces the
    single-backend bytes."""
    wlm = WorkloadManager(WlmConfig(
        retry=RetryConfig(
            max_attempts=10, base_delay=0.005, max_delay=0.02,
            budget_min_tokens=1000.0, jitter_seed=7,
        ),
        breaker=CircuitBreakerConfig(failure_threshold=1000),
    ))
    config = _process_config(max_respawns=3)
    from repro.core.procshard import spawn_process_shards

    children = spawn_process_shards(2, config.sharding)
    backend = ShardedBackend(
        children, analytical_partition_map(2),
        config=config.sharding, wlm=wlm,
    )
    platform = HyperQ(backend=backend)
    load_sharded_workload(backend, mdi=platform.mdi, workload=workload)
    killed = _procshards(backend)[1]
    armed = False
    try:
        mismatched = []
        for query in workload.queries:
            if not armed and "by" in query.text:
                # arm on the first scatter/partial-aggregate query: the
                # worker dies as its subquery arrives mid-fanout
                killed.kill_next_request = True
                armed = True
            actual = encode_value(platform.q(query.text))
            if actual != reference[query.number]:
                mismatched.append(query.number)
        assert armed, "no scatter query found to arm the kill on"
        assert not mismatched, (
            f"queries {mismatched} diverged after mid-scatter kill"
        )
        assert killed.restarts == 1, "worker was not respawned"
        # the crash never escaped the retry layer
        assert sum(s["errors"] for s in backend.shard_snapshot()) == 0
        rows = backend.shard_snapshot()
        assert rows[1]["restarts"] == 1
        assert rows[1]["mode"] == "process"
    finally:
        backend.close()
        assert all(
            not s.process_info()["alive"] for s in _procshards(backend)
        )
