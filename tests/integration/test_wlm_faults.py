"""The WLM fault-injection matrix (ISSUE acceptance scenario).

A 50-query concurrent workload runs against a server whose backend is
sabotaged by the deterministic fault injector — ~30% transient failures
(connection drops + retryable SQLSTATE 53300 errors) plus 200ms latency
spikes.  The claims under test:

* every query completes (no hung client, no lost response);
* the answers are identical to a fault-free run of the same workload;
* the recovery machinery is *visible*: retries and injected faults show
  up in ``metrics[]`` and ``wlm[]``.

A second scenario drives a circuit breaker through its full
open -> half-open -> closed lifecycle against a backend that dies and
recovers.
"""

import threading
import time

import pytest

from repro.config import (
    CircuitBreakerConfig,
    FaultConfig,
    HyperQConfig,
    ResultCacheConfig,
    RetryConfig,
    WlmConfig,
)
from repro.core.platform import DirectGateway
from repro.errors import CircuitOpenError
from repro.qlang.interp import Interpreter
from repro.server.client import QConnection
from repro.server.hyperq_server import HyperQServer
from repro.sqlengine.engine import Engine
from repro.wlm.retry import BreakerState
from repro.workload.loader import load_q_source

SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40)
"""

#: five read-only statements; 10 clients x 5 queries = 50 total
WORKLOAD = [
    "exec sum Size from trades",
    "count select from trades",
    "select from trades where Symbol = `GOOG",
    "exec max Price from trades",
    "select sum Size by Symbol from trades",
]

#: ~30% transient failures (drops + retryable errors), 200ms latency
#: spikes, fixed seed — the wlm-faults CI job uses the same spec
MATRIX_FAULTS = FaultConfig(
    enabled=True,
    seed=42,
    drop_rate=0.15,
    error_rate=0.15,
    latency_rate=0.1,
    latency_seconds=0.2,
)


def make_server(faults: FaultConfig | None = None) -> HyperQServer:
    engine = Engine()
    load_q_source(engine, Interpreter(), SOURCE, ["trades"])
    wlm = WlmConfig(
        # generous recovery so the matrix converges: the point here is
        # masking faults, not exhausting budgets (unit tests cover those)
        retry=RetryConfig(
            max_attempts=10, base_delay=0.01, max_delay=0.05,
            budget_min_tokens=1000.0, jitter_seed=7,
        ),
        breaker=CircuitBreakerConfig(failure_threshold=1000),
        faults=faults or FaultConfig(),
    )
    return HyperQServer(engine=engine, config=HyperQConfig(wlm=wlm))


def run_workload(address, clients=10):
    """Each client runs the full WORKLOAD once; returns results/errors."""
    results: dict[tuple[int, int], object] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def client(tag):
        try:
            with QConnection(*address) as q:
                for i, text in enumerate(WORKLOAD):
                    value = q.query(text)
                    with lock:
                        results[(tag, i)] = value
        except Exception as exc:  # pragma: no cover - diagnostic
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(tag,))
        for tag in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    hung = [t for t in threads if t.is_alive()]
    return results, errors, hung


class TestFaultMatrix:
    def test_workload_survives_the_fault_matrix(self):
        # fault-free reference run first: the ground truth answers
        with make_server() as clean:
            expected, errors, hung = run_workload(clean.address)
            assert not errors and not hung
            assert len(expected) == 50

        with make_server(faults=MATRIX_FAULTS) as server:
            results, errors, hung = run_workload(server.address)
            # zero hangs and zero client-visible failures...
            assert not hung, f"{len(hung)} clients never finished"
            assert not errors, f"client errors under faults: {errors[:3]}"
            assert len(results) == 50
            # ...with answers identical to the fault-free run
            for key, value in sorted(results.items()):
                assert value == expected[key], f"divergence at {key}"

            # the machinery was actually exercised and is observable
            injector = server.wlm.faults
            assert injector is not None
            fired = sum(injector.injected.values())
            assert fired > 0, "fault matrix injected nothing"

            with QConnection(*server.address) as q:
                table = q.query("wlm[]")
                kinds = list(table.column("kind").items)
                assert "fault" in kinds  # injections visible in wlm[]

                snapshot = q.query("metrics[]")
                samples = dict(
                    zip(snapshot.keys.items, snapshot.values.items)
                )
                retries = sum(
                    v for k, v in samples.items()
                    if k.startswith("wlm_retries_total")
                )
                injected = sum(
                    v for k, v in samples.items()
                    if k.startswith("wlm_faults_injected_total")
                )
                assert retries > 0  # drops/errors were retried
                assert injected > 0  # and the injections were counted

    def test_faults_off_is_a_no_op(self):
        """With no REPRO_FAULTS, the injector is absent entirely."""
        with make_server() as server:
            assert server.wlm is not None
            assert server.wlm.faults is None


class FlakyGateway(DirectGateway):
    """A DirectGateway with a kill switch, for breaker lifecycle tests."""

    def __init__(self, engine):
        super().__init__(engine)
        self.failing = False
        self.calls = 0

    def run_sql(self, sql):
        self.calls += 1
        if self.failing:
            raise ConnectionError("backend down (scripted)")
        return super().run_sql(sql)


class TestBreakerLifecycle:
    def test_breaker_opens_half_opens_and_recloses(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        gateway = FlakyGateway(engine)
        wlm = WlmConfig(
            retry=RetryConfig(enabled=False),
            breaker=CircuitBreakerConfig(
                failure_threshold=2, reset_timeout=0.2, close_threshold=1
            ),
        )
        server = HyperQServer(
            backend=gateway,
            # the result cache would serve the repeated statement during
            # the outage; this test needs every repeat to hit the backend
            config=HyperQConfig(
                wlm=wlm, result_cache=ResultCacheConfig(enabled=False)
            ),
        )
        session = server.create_session()
        breaker = server.wlm.breaker_for("in-process")
        try:
            # healthy: statements flow, breaker stays closed
            session.execute("exec sum Size from trades")
            assert breaker.state == BreakerState.CLOSED

            # the backend dies: consecutive failures trip the breaker
            gateway.failing = True
            for __ in range(2):
                with pytest.raises(ConnectionError):
                    session.execute("exec sum Size from trades")
            assert breaker.state == BreakerState.OPEN

            # while open, requests fail fast without touching the backend
            calls_before = gateway.calls
            with pytest.raises(CircuitOpenError):
                session.execute("exec sum Size from trades")
            assert gateway.calls == calls_before

            # after reset_timeout the breaker half-opens; the backend has
            # recovered, so the probe succeeds and the breaker recloses
            gateway.failing = False
            time.sleep(0.25)
            assert breaker.state == BreakerState.HALF_OPEN
            session.execute("exec sum Size from trades")
            assert breaker.state == BreakerState.CLOSED

            expected = [
                (BreakerState.CLOSED, BreakerState.OPEN),
                (BreakerState.OPEN, BreakerState.HALF_OPEN),
                (BreakerState.HALF_OPEN, BreakerState.CLOSED),
            ]
            assert breaker.transitions == expected
        finally:
            session.close()
