"""Differential suite for the semantic result cache (docs/CACHING.md).

The full 25-query Analytical Workload runs twice — the second pass is
served from the cache — on a cache-enabled platform and a cache-disabled
one, at shard counts N=1 and N=4, with a DML statement interleaved
mid-way through the cached pass.  Every answer must be *byte-identical*
across the two platforms on both wire protocols:

* **QIPC** — the column-oriented encoding of the pivoted ``QValue``
  (what a Q client receives);
* **PG wire** — RowDescription / DataRow / CommandComplete framing of
  the pre-pivot ``ResultSet`` (what a PG client would receive), captured
  at the executor edge before any caller rebinds rows.

Identity, not tolerance: a cache hit returns a fresh view over the
stored columns, so even float-heavy results must reproduce the exact
bytes of a from-scratch execution — and the interleaved DML must flip
every dependent entry back to a real execution without disturbing the
rest."""

import pytest

from repro.config import HyperQConfig, ResultCacheConfig
from repro.pgwire import messages as m
from repro.pgwire.codec import encode_backend, encode_data_rows
from repro.qipc.encode import encode_value
from repro.sqlengine.types import render_value
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.sharding import build_sharded_platform

#: interleaved DML: ``instruments`` is replicated (not partitioned), so
#: the statement is legal at every shard count; it invalidates every
#: cached result that joins against instruments
DML = 'DELETE FROM "instruments" WHERE "rating" < 1.2'
#: query index (within the cached second pass) after which the DML runs
DML_AT = 10


@pytest.fixture(scope="module")
def workload():
    return generate(AnalyticalConfig.small())


def pg_result_bytes(result) -> bytes:
    """The PG v3 framing of a ResultSet (pgserver's serving path)."""
    if not result.columns:
        return encode_backend(m.CommandComplete(result.command))
    fields = [
        m.FieldDescription(c.name, m.TYPE_OIDS.get(c.sql_type.value, 25))
        for c in result.columns
    ]
    types = [c.sql_type for c in result.columns]
    cells = [
        [
            None if value is None else render_value(value, t).encode("utf-8")
            for value, t in zip(row, types)
        ]
        for row in result.rows
    ]
    return b"".join((
        encode_backend(m.RowDescription(fields)),
        encode_data_rows(cells),
        encode_backend(m.CommandComplete(f"SELECT {len(cells)}")),
    ))


def run_and_capture(platform, workload):
    """Two passes over the workload with DML interleaved in the second;
    returns (QIPC bytes per execution, PG-wire bytes per result set)."""
    session = platform.create_session()
    pg_stream: list[bytes] = []
    inner = session.pt._execute

    def tapped(translation):
        result = inner(translation)
        # capture before the caller rebinds .rows (LIMIT/sort)
        pg_stream.append(pg_result_bytes(result))
        return result

    session.pt._execute = tapped
    qipc: list[bytes] = []
    try:
        for cached_pass in (False, True):
            for index, query in enumerate(workload.queries):
                if cached_pass and index == DML_AT:
                    session.executor.run_sql(
                        DML, invalidates=["instruments"]
                    )
                qipc.append(encode_value(session.execute(query.text)))
    finally:
        session.close()
    return qipc, pg_stream


@pytest.mark.parametrize("shard_count", [1, 4])
def test_cache_on_equals_cache_off_both_wires(workload, shard_count):
    cache_on, backend_on, __ = build_sharded_platform(
        shard_count, workload=workload
    )
    cache_off, backend_off, __ = build_sharded_platform(
        shard_count,
        config=HyperQConfig(result_cache=ResultCacheConfig(enabled=False)),
        workload=workload,
    )
    try:
        on_qipc, on_pg = run_and_capture(cache_on, workload)
        off_qipc, off_pg = run_and_capture(cache_off, workload)

        diverged = [
            q.number
            for i, q in enumerate(list(workload.queries) * 2)
            if on_qipc[i] != off_qipc[i]
        ]
        assert not diverged, (
            f"QIPC bytes diverged at N={shard_count}: queries {diverged}"
        )
        assert on_pg == off_pg, f"PG-wire bytes diverged at N={shard_count}"

        stats = cache_on.result_cache.snapshot()
        assert stats.hits > 0, "second pass never hit the cache"
        assert stats.invalidations > 0, "the DML invalidated nothing"
        assert cache_off.result_cache.snapshot().hits == 0
    finally:
        backend_on.close()
        backend_off.close()
