"""Integration tests that replay the paper's numbered examples verbatim.

Each test cites the example it reproduces; together they are the
executable form of the paper's narrative.
"""

import pytest

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.qlang.lexer import days_from_2000
from repro.testing.comparators import compare_values
from repro.workload.loader import load_table
from repro.workload.taq import TaqConfig, generate


@pytest.fixture(scope="module")
def market():
    """TAQ-style trades and quotes, loaded into both systems."""
    data = generate(TaqConfig(n_symbols=4, quotes_per_symbol=60,
                              trades_per_symbol=25))
    interp = Interpreter()
    interp.set_global("trades", data.trades)
    interp.set_global("quotes", data.quotes)
    hyperq = HyperQ()
    load_table(hyperq.engine, "trades", data.trades, mdi=hyperq.mdi)
    load_table(hyperq.engine, "quotes", data.quotes, mdi=hyperq.mdi)
    return interp, hyperq, data


class TestExample1PointInTime:
    """Example 1: 'A standard point-in-time query to get the prevailing
    quote as of each trade' with date and symbol-list constraints."""

    def build_query(self, data):
        somedate_days = days_from_2000(2016, 6, 26)
        y, m, d = 2016, 6, 26
        date_literal = f"{y:04d}.{m:02d}.{d:02d}"
        symlist = "`" + "`".join(data.symbols[:2])
        return (
            f"aj[`Symbol`Time; "
            f"select Symbol, Time, Price from trades "
            f"where Date={date_literal}, Symbol in {symlist}; "
            f"select Symbol, Time, Bid, Ask from quotes "
            f"where Date={date_literal}]"
        )

    def test_example_1_matches_side_by_side(self, market):
        interp, hyperq, data = market
        query = self.build_query(data)
        left = interp.eval_text(query)
        right = hyperq.q(query)
        comparison = compare_values(left, right)
        assert comparison, comparison.reason

    def test_example_1_output_columns(self, market):
        interp, hyperq, data = market
        result = hyperq.q(self.build_query(data))
        assert result.columns == ["Symbol", "Time", "Price", "Bid", "Ask"]

    def test_prevailing_quote_is_latest_not_first(self, market):
        interp, __, data = market
        # manual spot-check against the generator's own prevailing lookup
        joined = interp.eval_text(
            "aj[`Symbol`Time; select Symbol, Time, Price from trades; "
            "select Symbol, Time, Bid from quotes]"
        )
        times = joined.column("Time").items
        assert times == sorted(times) or len(set(joined.column("Symbol").items)) > 1


class TestExample2AlgebrizationShape:
    """Example 2: aj binds to a left outer join + window on the right
    input, ordered at the end (Figure 2)."""

    def test_plan_shape(self, market):
        from repro.core.algebrizer.binder import Binder
        from repro.core.xtra.ops import (
            XtraGet,
            XtraJoin,
            XtraSort,
            XtraWindow,
            walk,
        )
        from repro.qlang.parser import parse_expression

        __, hyperq, __ = market
        session = hyperq.create_session()
        binder = Binder(session.mdi, session.session_scope, hyperq.config)
        bound = binder.bind(
            parse_expression("aj[`Symbol`Time; trades; quotes]")
        )
        ops = list(walk(bound.op))
        joins = [o for o in ops if isinstance(o, XtraJoin)]
        assert joins and joins[0].kind == "left"
        # window on the *right* input of the join
        assert any(
            isinstance(node, XtraWindow)
            for node in walk(joins[0].right)
        )
        # the right window is over the quotes table
        right_gets = [
            o for o in walk(joins[0].right) if isinstance(o, XtraGet)
        ]
        assert right_gets[0].table == "quotes"
        # ordered at the end to conform with Q's ordered-list model
        assert isinstance(bound.op, XtraSort)
        session.close()


class TestExample3FunctionUnrolling:
    """Example 3: the max-price function with a local table variable,
    and the exact temp-table SQL shape of Section 4.3."""

    DEFINE = (
        "f: {[Sym] dt: select Price from trades where Symbol=Sym; "
        ":select max Price from dt}"
    )

    def test_function_result_matches_interpreter(self, market):
        interp, hyperq, data = market
        symbol = data.symbols[0]
        interp.eval_text(self.DEFINE)
        left = interp.eval_text(f"f[`{symbol}]")
        session = hyperq.create_session()
        try:
            session.execute(self.DEFINE)
            right = session.execute(f"f[`{symbol}]")
        finally:
            session.close()
        comparison = compare_values(left, right)
        assert comparison, comparison.reason

    def test_generated_sql_shape(self, market):
        """The paper shows: CREATE TEMPORARY TABLE ... AS SELECT ordcol,
        Price FROM trades WHERE Symbol IS NOT DISTINCT FROM ... ORDER BY
        ordcol; then SELECT 1::int AS ordcol, MAX(Price) ..."""
        __, hyperq, data = market
        session = hyperq.create_session()
        try:
            session.execute(self.DEFINE)
            outcome = session.run(f"f[`{data.symbols[0]}]")
        finally:
            session.close()
        create = [s for s in outcome.sql_statements if "CREATE TEMPORARY" in s]
        assert len(create) == 1
        assert "IS NOT DISTINCT FROM" in create[0]
        assert '"ordcol"' in create[0]
        assert "ORDER BY" in create[0]
        final = outcome.sql_statements[-1]
        assert "max(" in final.lower()
        assert '"ordcol"' in final

    def test_temp_table_cleaned_up_at_session_close(self, market):
        __, hyperq, data = market
        session = hyperq.create_session()
        session.execute(self.DEFINE)
        session.execute(f"f[`{data.symbols[0]}]")
        temp_names = set(hyperq.engine.catalog.temp_tables)
        assert temp_names  # materialized during the call
        session.close()
        leftover = temp_names & set(hyperq.engine.catalog.temp_tables)
        assert not leftover


class TestLimitationCategories:
    """Section 5 distinguishes missing features with a SQL representation
    from PG-inexpressible ones; errors carry the category."""

    def test_missing_feature_category(self, market):
        from repro.errors import QNotSupportedError

        __, hyperq, __ = market
        with pytest.raises(QNotSupportedError) as excinfo:
            hyperq.q("update f: fills Price from trades")
        assert excinfo.value.category == "missing-feature"

    def test_verbose_error_beats_kdb_terse_signal(self, market):
        """The paper: 'error messages in Hyper-Q are more verbose and
        informative than those provided by kdb+'."""
        from repro.errors import QNameError

        interp, hyperq, __ = market
        with pytest.raises(QNameError) as hyperq_error:
            hyperq.q("select from mystery_table")
        # kdb+ would say just 'mystery_table; Hyper-Q explains the search
        message = str(hyperq_error.value)
        assert "mystery_table" in message
        assert len(message) > len("'mystery_table")
        assert "catalog" in message or "scope" in message
