"""Differential suite: the full 25-query Analytical Workload on the
sharded backend must be *byte-identical* (QIPC encoding of every result)
to a single-backend run — at every shard count, and with transient
faults injected on the shard primaries.

Identity, not tolerance: partial aggregation uses exact integer-mantissa
sums (``sum_exact``) merged on the coordinator, so even float aggregates
reproduce the single-node bits.
"""

import pytest

from repro.config import (
    CircuitBreakerConfig,
    FaultConfig,
    RetryConfig,
    WlmConfig,
)
from repro.core.platform import DirectGateway, HyperQ
from repro.core.sharded import ShardedBackend
from repro.qipc.encode import encode_value
from repro.sqlengine.engine import Engine
from repro.wlm import WorkloadManager
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.loader import load_table
from repro.workload.sharding import (
    analytical_partition_map,
    build_sharded_platform,
    load_sharded_workload,
)

#: the fault spec for the fault-injected leg (REPRO_FAULTS syntax); a
#: fixed seed makes the injected sequence reproducible
FAULT_SPEC = "seed=42,error_rate=0.1,drop_rate=0.05"


@pytest.fixture(scope="module")
def workload():
    return generate(AnalyticalConfig.small())


@pytest.fixture(scope="module")
def reference(workload):
    """Single-backend ground truth: QIPC-encoded bytes per query."""
    platform = HyperQ()
    for name, table in workload.tables.items():
        load_table(platform.engine, name, table, mdi=platform.mdi)
    return {
        q.number: encode_value(platform.q(q.text))
        for q in workload.queries
    }


@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_full_workload_is_byte_identical(workload, reference, shard_count):
    platform, backend, __ = build_sharded_platform(
        shard_count, workload=workload
    )
    try:
        mismatched = []
        for query in workload.queries:
            actual = encode_value(platform.q(query.text))
            if actual != reference[query.number]:
                mismatched.append(query.number)
        assert not mismatched, (
            f"queries {mismatched} diverged at N={shard_count}"
        )
    finally:
        backend.close()


def test_full_workload_survives_injected_shard_faults(workload, reference):
    """Transient faults on the shard primaries (injected through the
    REPRO_FAULTS mechanism with a fixed seed) are masked by the
    per-shard retry/breaker machinery: every query still returns the
    byte-identical answer."""
    wlm = WorkloadManager(WlmConfig(
        # generous recovery, as in the wlm fault matrix: the point is
        # masking shard faults, not exhausting retry budgets
        retry=RetryConfig(
            max_attempts=10, base_delay=0.005, max_delay=0.02,
            budget_min_tokens=1000.0, jitter_seed=7,
        ),
        breaker=CircuitBreakerConfig(failure_threshold=1000),
        faults=FaultConfig.from_env(FAULT_SPEC),
    ))
    children = [DirectGateway(Engine()) for __ in range(2)]
    backend = ShardedBackend(
        children, analytical_partition_map(2), wlm=wlm
    )
    platform = HyperQ(backend=backend)
    load_sharded_workload(backend, mdi=platform.mdi, workload=workload)
    try:
        mismatched = []
        for query in workload.queries:
            actual = encode_value(platform.q(query.text))
            if actual != reference[query.number]:
                mismatched.append(query.number)
        assert not mismatched, f"queries {mismatched} diverged under faults"
        # the faults actually fired — and were fully absorbed by the
        # per-shard retry layer (shard-level error counters track only
        # failures that escape the retries, so they stay at zero)
        fired = sum(wlm.faults.injected.values())
        assert fired > 0, "fault injector never fired"
        assert sum(s["errors"] for s in backend.shard_snapshot()) == 0
    finally:
        backend.close()


def test_shard_fault_visible_in_health_snapshot(workload):
    """A single injected shard fault surfaces in ``shards[]`` telemetry
    while the answer stays correct."""
    wlm = WorkloadManager(WlmConfig(
        retry=RetryConfig(
            max_attempts=10, base_delay=0.005, max_delay=0.02,
            budget_min_tokens=1000.0, jitter_seed=7,
        ),
        breaker=CircuitBreakerConfig(failure_threshold=1000),
        faults=FaultConfig.from_env("seed=7,error_rate=0.2"),
    ))
    children = [DirectGateway(Engine()) for __ in range(2)]
    backend = ShardedBackend(
        children, analytical_partition_map(2), wlm=wlm
    )
    platform = HyperQ(backend=backend)
    load_sharded_workload(backend, mdi=platform.mdi, workload=workload)
    try:
        for __ in range(10):
            platform.q("select sum notional by desk from positions")
            if sum(wlm.faults.injected.values()) > 0:
                break
        table = platform.q("shards[]")
        assert list(table.column("shard").items) == [0, 1]
        assert sum(wlm.faults.injected.values()) > 0
    finally:
        backend.close()
