"""The heaviest integration test: the Analytical Workload through the
entire deployment stack of Figure 1 — QIPC client -> Hyper-Q server ->
PG v3 network gateway -> PG-wire server -> SQL engine — validated
side-by-side against the reference interpreter."""

import pytest

from repro.qlang.interp import Interpreter
from repro.server.client import QConnection
from repro.server.gateway import NetworkGateway
from repro.server.hyperq_server import HyperQServer
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.testing.comparators import compare_values
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.loader import load_table

#: a representative slice of the 25-query workload (fast ones; the full
#: sweep is the benchmark suite's job)
QUERY_NUMBERS = [1, 2, 3, 5, 7, 9, 11, 12, 14, 17, 21, 22, 23]


@pytest.fixture(scope="module")
def stack():
    workload = generate(AnalyticalConfig.small())
    interp = Interpreter()
    engine = Engine()
    for name, table in workload.tables.items():
        interp.set_global(name, table)
    pg_server = PgWireServer(engine).start()
    gateway = NetworkGateway(*pg_server.address).connect()
    from repro.core.metadata import MetadataInterface

    mdi = MetadataInterface(gateway)
    for name, table in workload.tables.items():
        load_table(engine, name, table, mdi=mdi)
    hyperq = HyperQServer(backend=gateway)
    hyperq.mdi = mdi  # share key annotations with the loader
    hyperq.start()
    yield interp, hyperq, workload
    hyperq.stop()
    gateway.close()
    pg_server.stop()


@pytest.mark.parametrize("number", QUERY_NUMBERS)
def test_workload_query_through_full_stack(stack, number):
    interp, hyperq, workload = stack
    query = workload.queries[number - 1]
    expected = interp.eval_text(query.text)
    with QConnection(*hyperq.address) as q:
        actual = q.query(query.text)
    comparison = compare_values(expected, actual)
    assert comparison, f"Q{number}: {comparison.reason}"


def test_session_workflow_through_full_stack(stack):
    interp, hyperq, workload = stack
    with QConnection(*hyperq.address) as q:
        q.query("big: select from positions where notional > 1000.0")
        count = q.query("count select from big")
        direct = q.query(
            "count select from positions where notional > 1000.0"
        )
        assert count == direct
