"""Tests for the PG v3 wire codec and authentication mechanisms."""

import struct

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.pgwire import messages as m
from repro.pgwire.auth import (
    AuthContext,
    CleartextAuth,
    KerberosStubAuth,
    Md5Auth,
    TrustAuth,
    md5_response,
)
from repro.pgwire.codec import (
    decode_backend,
    decode_frontend,
    decode_startup,
    encode_backend,
    encode_frontend,
    encode_startup,
)


def roundtrip_frontend(message):
    encoded = encode_frontend(message)
    type_byte, body = encoded[:1], encoded[5:]
    return decode_frontend(type_byte, body)


def roundtrip_backend(message):
    encoded = encode_backend(message)
    type_byte, body = encoded[:1], encoded[5:]
    return decode_backend(type_byte, body)


class TestCodec:
    def test_startup_roundtrip(self):
        encoded = encode_startup(m.StartupMessage("alice", "analytics"))
        decoded = decode_startup(encoded[4:])
        assert decoded.user == "alice"
        assert decoded.database == "analytics"

    def test_startup_rejects_wrong_version(self):
        bad = struct.pack(">I", 12345) + b"user\x00x\x00\x00"
        with pytest.raises(ProtocolError):
            decode_startup(bad)

    def test_query_roundtrip(self):
        decoded = roundtrip_frontend(m.Query("SELECT 1"))
        assert decoded.sql == "SELECT 1"

    def test_password_roundtrip(self):
        decoded = roundtrip_frontend(m.PasswordMessage("hunter2"))
        assert decoded.password == "hunter2"

    def test_terminate(self):
        assert isinstance(roundtrip_frontend(m.Terminate()), m.Terminate)

    def test_type_byte_and_length(self):
        encoded = encode_frontend(m.Query("SELECT 1"))
        assert encoded[:1] == b"Q"
        (length,) = struct.unpack(">I", encoded[1:5])
        assert length == len(encoded) - 1

    def test_auth_request_roundtrip(self):
        decoded = roundtrip_backend(m.AuthenticationRequest(3))
        assert decoded.code == 3

    def test_md5_auth_carries_salt(self):
        decoded = roundtrip_backend(m.AuthenticationRequest(5, b"abcd"))
        assert decoded.salt == b"abcd"

    def test_row_description_roundtrip(self):
        fields = [
            m.FieldDescription("c1", 20),
            m.FieldDescription("c2", 1043),
        ]
        decoded = roundtrip_backend(m.RowDescription(fields))
        assert [f.name for f in decoded.fields] == ["c1", "c2"]
        assert decoded.fields[0].type_oid == 20

    def test_data_row_with_null(self):
        decoded = roundtrip_backend(m.DataRow([b"42", None, b"x"]))
        assert decoded.values == [b"42", None, b"x"]

    def test_command_complete(self):
        decoded = roundtrip_backend(m.CommandComplete("SELECT 4"))
        assert decoded.tag == "SELECT 4"

    def test_ready_for_query(self):
        decoded = roundtrip_backend(m.ReadyForQuery("I"))
        assert decoded.status == "I"

    def test_error_response_fields(self):
        decoded = roundtrip_backend(
            m.ErrorResponse(message="relation does not exist", code="42P01")
        )
        assert decoded.code == "42P01"
        assert "relation" in decoded.message

    def test_row_streaming_is_row_oriented(self):
        """The PG side of Figure 5: one DataRow message per row."""
        rows = [m.DataRow([b"1", b"1"]), m.DataRow([b"2", b"2"])]
        encoded = b"".join(encode_backend(r) for r in rows)
        assert encoded.count(b"D") >= 2


class TestAuthMechanisms:
    def test_trust(self):
        TrustAuth().verify(AuthContext("u"), "")

    def test_cleartext_ok(self):
        auth = CleartextAuth({"alice": "pw"})
        ctx = AuthContext("alice")
        auth.verify(ctx, auth.client_response(ctx, "pw"))

    def test_cleartext_bad_password(self):
        auth = CleartextAuth({"alice": "pw"})
        with pytest.raises(AuthenticationError):
            auth.verify(AuthContext("alice"), "nope")

    def test_md5_scheme_matches_pg_algorithm(self):
        # known-answer: md5 of 'secretalice' then salted
        response = md5_response("alice", "secret", b"\x01\x02\x03\x04")
        assert response.startswith("md5")
        assert len(response) == 35

    def test_md5_ok(self):
        auth = Md5Auth({"alice": "secret"})
        ctx = AuthContext("alice")
        auth.challenge(ctx)
        auth.verify(ctx, auth.client_response(ctx, "secret"))

    def test_md5_wrong_password(self):
        auth = Md5Auth({"alice": "secret"})
        ctx = AuthContext("alice")
        auth.challenge(ctx)
        with pytest.raises(AuthenticationError):
            auth.verify(ctx, auth.client_response(ctx, "wrong"))

    def test_kerberos_stub_roundtrip(self):
        auth = KerberosStubAuth(b"realm-key", principals={"svc_trading"})
        ctx = AuthContext("svc_trading")
        auth.verify(ctx, auth.client_response(ctx, ""))

    def test_kerberos_stub_rejects_unknown_principal(self):
        auth = KerberosStubAuth(b"realm-key", principals={"svc_trading"})
        ctx = AuthContext("mallory")
        with pytest.raises(AuthenticationError):
            auth.verify(ctx, auth.client_response(ctx, ""))

    def test_kerberos_stub_rejects_forged_ticket(self):
        auth = KerberosStubAuth(b"realm-key")
        with pytest.raises(AuthenticationError):
            auth.verify(AuthContext("svc"), "forged-token")
