"""Tests for the buffered PG frame reader and batched result framing.

Covers the PR's wire-path invariants:

* :class:`PgFrameStream` decodes the same messages as the legacy
  ``read_message``/``read_startup`` pair over the same bytes;
* batched telemetry (``_InboundStats`` and :func:`encode_data_rows`)
  produces *identical* counter totals to the per-message path;
* :func:`encode_data_rows` output is byte-for-byte what per-row
  ``encode_backend`` emits.
"""

import socket
import threading

import pytest

from repro.errors import ProtocolError
from repro.pgwire import messages as m
from repro.pgwire.codec import (
    PGWIRE_BYTES,
    PGWIRE_MESSAGES,
    PgFrameStream,
    decode_backend,
    decode_frontend,
    encode_backend,
    encode_data_rows,
    encode_frontend,
    encode_startup,
    read_message,
    read_startup,
)
BACKEND_SCRIPT = [
    m.AuthenticationRequest(0),
    m.ParameterStatus("server_version", "9.2-repro"),
    m.RowDescription(
        [m.FieldDescription("a", 20), m.FieldDescription("b", 25)]
    ),
    m.DataRow([b"1", b"x"]),
    m.DataRow([b"2", None]),
    m.DataRow([None, "é".encode("utf-8")]),
    m.CommandComplete("SELECT 3"),
    m.ReadyForQuery("I"),
]


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def _send_script(sock, script):
    sock.sendall(b"".join(encode_backend(message) for message in script))


class TestFrameStreamDecoding:
    def test_matches_legacy_read_message(self, pair):
        left, right = pair
        _send_script(right, BACKEND_SCRIPT)
        _send_script(right, BACKEND_SCRIPT)
        stream = PgFrameStream.over(left)
        streamed = [
            stream.read_message(decode_backend)
            for __ in range(len(BACKEND_SCRIPT))
        ]
        legacy = [
            read_message(stream.reader.recv_exact, decode_backend)
            for __ in range(len(BACKEND_SCRIPT))
        ]
        assert streamed == BACKEND_SCRIPT
        assert legacy == BACKEND_SCRIPT

    def test_startup_roundtrip(self, pair):
        left, right = pair
        startup = m.StartupMessage("alice", "analytics", {"app": "test"})
        right.sendall(encode_startup(startup))
        decoded = PgFrameStream.over(left).read_startup()
        assert decoded == startup

    def test_startup_matches_legacy(self, pair):
        left, right = pair
        startup = m.StartupMessage("bob", "db")
        right.sendall(encode_startup(startup))
        right.sendall(encode_startup(startup))
        stream = PgFrameStream.over(left)
        assert stream.read_startup() == startup
        assert read_startup(stream.reader.recv_exact) == startup

    def test_frontend_messages(self, pair):
        left, right = pair
        script = [m.Query("select 1"), m.Terminate()]
        right.sendall(b"".join(encode_frontend(q) for q in script))
        stream = PgFrameStream.over(left)
        assert [
            stream.read_message(decode_frontend) for __ in range(2)
        ] == script

    def test_bad_length_rejected(self, pair):
        left, right = pair
        right.sendall(b"D" + (2).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            PgFrameStream.over(left).read_frame()

    def test_frames_span_recv_boundaries(self, pair):
        left, right = pair
        wire = b"".join(encode_backend(msg) for msg in BACKEND_SCRIPT)

        def dribble():
            for i in range(0, len(wire), 3):
                right.sendall(wire[i : i + 3])

        thread = threading.Thread(target=dribble)
        thread.start()
        stream = PgFrameStream.over(left)
        decoded = [
            stream.read_message(decode_backend)
            for __ in range(len(BACKEND_SCRIPT))
        ]
        thread.join()
        assert decoded == BACKEND_SCRIPT


class TestBatchedDataRowEncoding:
    ROWS = [
        [b"1", b"alpha"],
        [b"2", None],
        [None, b""],
        [b"-17", "café".encode("utf-8")],
    ]

    def test_byte_identical_to_per_message_encoding(self):
        reference = b"".join(
            encode_backend(m.DataRow(cells)) for cells in self.ROWS
        )
        assert encode_data_rows(self.ROWS) == reference

    def test_empty_result_set(self):
        assert encode_data_rows([]) == b""

    def test_roundtrips_through_frame_stream(self, pair):
        left, right = pair
        right.sendall(encode_data_rows(self.ROWS))
        stream = PgFrameStream.over(left)
        decoded = [
            stream.read_message(decode_backend) for __ in range(len(self.ROWS))
        ]
        assert [message.values for message in decoded] == self.ROWS


class TestMetricsBatching:
    """Counter totals must be identical between the batched and the
    per-message paths — batching changes *when* counters move, not by
    how much."""

    @staticmethod
    def _totals():
        return (
            PGWIRE_BYTES.value(direction="in"),
            PGWIRE_MESSAGES.value(type="D", direction="in"),
            PGWIRE_MESSAGES.value(type="T", direction="in"),
            PGWIRE_MESSAGES.value(type="C", direction="in"),
            PGWIRE_MESSAGES.value(type="Z", direction="in"),
        )

    def test_inbound_totals_match_legacy(self, pair):
        left, right = pair
        script = BACKEND_SCRIPT[2:]  # T, D, D, D, C, Z
        wire = b"".join(encode_backend(message) for message in script)
        right.sendall(wire + wire)

        before = self._totals()
        stream = PgFrameStream.over(left)
        for __ in range(len(script)):
            stream.read_message(decode_backend)
        stream.flush()
        batched_delta = [
            after - b for after, b in zip(self._totals(), before)
        ]

        before = self._totals()
        rx = stream.reader.recv_exact
        for __ in range(len(script)):
            read_message(rx, decode_backend)
        legacy_delta = [
            after - b for after, b in zip(self._totals(), before)
        ]

        assert batched_delta == legacy_delta
        assert batched_delta[0] == len(wire)
        assert batched_delta[1] == 3  # three DataRow frames

    def test_flush_on_buffer_drain(self, pair):
        left, right = pair
        frame = encode_backend(m.ReadyForQuery("I"))
        right.sendall(frame)
        before = PGWIRE_MESSAGES.value(type="Z", direction="in")
        stream = PgFrameStream.over(left)
        stream.read_frame()
        # the buffer drained, so the stats flushed without an explicit
        # flush() call
        assert (
            PGWIRE_MESSAGES.value(type="Z", direction="in") - before == 1
        )

    def test_outbound_totals_match_per_message(self):
        rows = TestBatchedDataRowEncoding.ROWS
        bytes_before = PGWIRE_BYTES.value(direction="out")
        msgs_before = PGWIRE_MESSAGES.value(type="D", direction="out")
        per_message = b"".join(
            encode_backend(m.DataRow(cells)) for cells in rows
        )
        per_message_deltas = (
            PGWIRE_BYTES.value(direction="out") - bytes_before,
            PGWIRE_MESSAGES.value(type="D", direction="out") - msgs_before,
        )

        bytes_before = PGWIRE_BYTES.value(direction="out")
        msgs_before = PGWIRE_MESSAGES.value(type="D", direction="out")
        batched = encode_data_rows(rows)
        batched_deltas = (
            PGWIRE_BYTES.value(direction="out") - bytes_before,
            PGWIRE_MESSAGES.value(type="D", direction="out") - msgs_before,
        )

        assert batched == per_message
        assert batched_deltas == per_message_deltas == (len(batched), 4.0)
