"""Tests for the workload generators and the loader."""

import pytest

from repro.core.platform import HyperQ
from repro.errors import QTypeError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QKeyedTable, QTable, QVector
from repro.sqlengine.engine import Engine
from repro.workload.analytical import (
    INSTRUMENTS_COLUMNS,
    MARKS_COLUMNS,
    POSITIONS_COLUMNS,
    AnalyticalConfig,
    generate as generate_analytical,
)
from repro.workload.loader import load_q_source, load_table
from repro.workload.taq import MARKET_OPEN_MS, TaqConfig, generate as generate_taq


class TestTaqGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_taq(TaqConfig(n_symbols=3, quotes_per_symbol=50,
                                      trades_per_symbol=20))

    def test_shapes(self, data):
        assert len(data.trades) == 60
        assert len(data.quotes) == 150
        assert len(data.symbols) == 3

    def test_deterministic(self, data):
        again = generate_taq(TaqConfig(n_symbols=3, quotes_per_symbol=50,
                                       trades_per_symbol=20))
        assert again.trades == data.trades
        assert again.quotes == data.quotes

    def test_times_in_market_hours(self, data):
        for t in data.quotes.column("Time").items:
            assert MARKET_OPEN_MS <= t < 16 * 3600 * 1000

    def test_times_sorted(self, data):
        times = data.trades.column("Time").items
        assert times == sorted(times)

    def test_bid_below_ask(self, data):
        bids = data.quotes.column("Bid").items
        asks = data.quotes.column("Ask").items
        assert all(b < a for b, a in zip(bids, asks))

    def test_trades_price_near_prevailing_quote(self, data):
        """Trades are generated inside the prevailing bid/ask band, so the
        paper's Example 1 has meaningful joins."""
        interp = Interpreter()
        interp.set_global("trades", data.trades)
        interp.set_global("quotes", data.quotes)
        joined = interp.eval_text(
            "aj[`Symbol`Time; select Symbol, Time, Price from trades; "
            "select Symbol, Time, Bid, Ask from quotes]"
        )
        prices = joined.column("Price").items
        bids = joined.column("Bid").items
        asks = joined.column("Ask").items
        matched = [
            (p, b, a) for p, b, a in zip(prices, bids, asks) if b == b
        ]
        assert matched
        within = sum(1 for p, b, a in matched if b - 1e-9 <= p <= a + 1e-9)
        assert within / len(matched) > 0.9


class TestAnalyticalWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_analytical(AnalyticalConfig.small())

    def test_paper_shape_25_queries(self, workload):
        assert len(workload.queries) == 25

    def test_three_wide_tables(self, workload):
        assert set(workload.tables) == {"positions", "marks", "instruments"}

    def test_tables_exceed_500_columns(self, workload):
        positions = workload.tables["positions"]
        marks = workload.tables["marks"]
        instruments = workload.tables["instruments"]
        assert len(positions.columns) == POSITIONS_COLUMNS >= 500
        assert len(marks.columns) == MARKS_COLUMNS >= 500
        key_cols = instruments.key.columns + instruments.value.columns
        assert len(key_cols) == INSTRUMENTS_COLUMNS >= 500

    def test_instruments_keyed(self, workload):
        assert isinstance(workload.tables["instruments"], QKeyedTable)
        assert workload.tables["instruments"].key_columns == ["inst"]

    def test_join_heavy_queries_are_10_18_19_20(self, workload):
        three_table = {
            q.number for q in workload.queries if len(q.tables) == 3
        }
        assert three_table == {10, 18, 19, 20}

    def test_queries_have_joins_and_aggregates(self, workload):
        texts = " ".join(q.text for q in workload.queries)
        for feature in ("lj", "ej[", "aj[", "sum", "avg", "dev", "wavg", "by"):
            assert feature in texts

    def test_deterministic(self, workload):
        again = generate_analytical(AnalyticalConfig.small())
        assert again.tables["positions"] == workload.tables["positions"]

    def test_all_queries_parse(self, workload):
        from repro.qlang.parser import parse

        for query in workload.queries:
            parse(query.text)


class TestLoader:
    def test_ordcol_added(self):
        engine = Engine()
        table = QTable(["a"], [QVector(QType.LONG, [5, 6])])
        load_table(engine, "t", table)
        result = engine.execute('SELECT "a", "ordcol" FROM "t"')
        assert result.rows == [(5, 0), (6, 1)]

    def test_nulls_loaded_as_sql_null(self):
        from repro.qlang.qtypes import NULL_LONG

        engine = Engine()
        table = QTable(
            ["v", "s"],
            [QVector(QType.LONG, [1, NULL_LONG]),
             QVector(QType.SYMBOL, ["x", ""])],
        )
        load_table(engine, "t", table)
        result = engine.execute('SELECT "v", "s" FROM "t"')
        assert result.rows == [(1, "x"), (None, None)]

    def test_minutes_scaled_to_time(self):
        engine = Engine()
        table = QTable(["m"], [QVector(QType.MINUTE, [570])])
        load_table(engine, "t", table)
        assert engine.execute('SELECT "m" FROM "t"').scalar() == 570 * 60_000

    def test_keyed_table_annotates_mdi(self):
        hq = HyperQ()
        keyed = QKeyedTable(
            QTable(["k"], [QVector(QType.SYMBOL, ["a"])]),
            QTable(["v"], [QVector(QType.LONG, [1])]),
        )
        load_table(hq.engine, "kt", keyed, mdi=hq.mdi)
        assert hq.mdi.require_table("kt").keys == ["k"]

    def test_reload_replaces(self):
        engine = Engine()
        load_table(engine, "t", QTable(["a"], [QVector(QType.LONG, [1])]))
        load_table(engine, "t", QTable(["a"], [QVector(QType.LONG, [2, 3])]))
        assert engine.execute('SELECT count(*) FROM "t"').scalar() == 2

    def test_general_list_column_rejected(self):
        from repro.qlang.values import QList, QAtom

        engine = Engine()
        table = QTable(["g"], [QList([QAtom(QType.LONG, 1)])])
        with pytest.raises(QTypeError):
            load_table(engine, "t", table)

    def test_load_q_source_missing_table(self):
        engine = Engine()
        with pytest.raises(QTypeError):
            load_q_source(engine, Interpreter(), "x: 1", ["t"])
