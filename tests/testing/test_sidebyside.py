"""The side-by-side framework validating Hyper-Q against the reference
interpreter — the reproduction of the paper's QA methodology, and the
single strongest correctness check in this repository."""

import pytest

from repro.testing.sidebyside import SideBySideHarness

SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT`IBM`GOOG;
            Time:09:30:30 09:31:00 09:32:00 09:30:45 09:33:20 09:35:05;
            Price:100.0 50.0 101.0 30.0 49.5 102.5;
            Size:10 20 30 40 15 5);
quotes: ([] Symbol:`GOOG`GOOG`IBM`IBM`MSFT;
            Time:09:30:00 09:31:30 09:30:30 09:33:00 09:29:00;
            Bid:99.0 100.5 49.0 49.25 29.5;
            Ask:99.5 101.0 49.5 49.75 30.0);
ratings: ([Symbol:`GOOG`IBM] Rating:`buy`hold)
"""

TABLES = ["trades", "quotes", "ratings"]


@pytest.fixture(scope="module")
def harness():
    return SideBySideHarness(SOURCE, TABLES)


QUERIES = [
    # projections and filters
    "select from trades",
    "select Price from trades",
    "select Symbol, Price from trades",
    "select from trades where Symbol=`GOOG",
    "select from trades where Price>40",
    "select from trades where Price>40, Size>15",
    "select from trades where Symbol in `GOOG`IBM",
    "select from trades where Price within 40 105",
    "select from trades where Symbol=`GOOG, Price>100",
    "select from trades where i<3",
    # computed columns
    "select notional: Price*Size from trades",
    "select Symbol, half: Price%2 from trades",
    "select p: Price+1, s: Size-1 from trades",
    "select b: ?[Price>60; `hi; `lo] from trades",
    "select p: 0 ^ Price from trades",
    # aggregation
    "select max Price from trades",
    "select sum Size from trades",
    "select avg Price from trades",
    "select m: min Price, M: max Price from trades",
    "select count Size from trades",
    "select dev Price from trades",
    "select med Price from trades",
    # group by
    "select sum Size by Symbol from trades",
    "select max Price by Symbol from trades",
    "select avg Price, sum Size by Symbol from trades",
    "select count Size by Symbol from trades",
    # mixed aggregate broadcast
    "select Symbol, Price, mx: max Price from trades",
    # exec
    "exec Price from trades",
    "exec Symbol from trades",
    "exec sum Size by Symbol from trades",
    # update
    "update Notional: Price*Size from trades",
    "update Price: Price*2 from trades",
    "update s: sums Size from trades",
    "update s: sums Size by Symbol from trades",
    "update m: max Price by Symbol from trades",
    # delete
    "delete from trades where Symbol=`IBM",
    "delete Size from trades",
    # sorting and limits
    "`Price xasc trades",
    "`Price xdesc trades",
    "select[3] from trades",
    # joins
    "aj[`Symbol`Time; trades; quotes]",
    "aj0[`Symbol`Time; trades; quotes]",
    "trades lj ratings",
    "trades ij ratings",
    "ej[`Symbol; trades; quotes]",
    # aggregates over tables
    "avg exec Price from trades",
    "count select from trades where Price > 60",
    # scalar statements
    "1+2",
    "2*3+4",
    "7%2",
    # uniform verbs through windows
    "update d: deltas Price from trades",
    "update p: prev Price from trades",
    "update n: next Price from trades",
    "update m: 3 mavg Price from trades",
    "update r: maxs Price from trades",
    # nested templates
    "select from (select from trades where Price>40) where Size>15",
    "select sum Size by Symbol from select from trades where Price>35",
    # vector conditional, like, casts
    "select side: ?[Size>15; `big; `small] from trades",
    "select from trades where Symbol like \"GO*\"",
    "select p: `long$Price from trades",
    "update half: Price % 2 from trades",
    # multi-key grouping and computed group keys
    "select sum Size by Symbol, b: Price>60 from trades",
    "select n: count Symbol by bucket: 10 xbar Size from trades",
    # keyed-table semantics
    "select from ratings",
    "1!select from trades where Size>15",
    # admin utilities
    "tables[]",
    "cols trades",
    # sorting edge cases
    "`Size xdesc trades",
    "`Symbol`Time xasc trades",
    # weighted / moving analytics
    "update w: Size wavg Price by Symbol from trades",
    "update s: 2 msum Size from trades",
    "update mn: 3 mmin Price from trades",
    # fby (filter-by) and differ — classic q idioms via windows
    "select from trades where Price = (max; Price) fby Symbol",
    "select from trades where Size < (avg; Size) fby Symbol",
    "update mx: (max; Price) fby Symbol from trades",
    "update d: differ Symbol from trades",
    "select from trades where differ Symbol",
    # select[...] limit forms
    "select[2] from trades",
    "select[-2] from trades",
    "select[1 3] from trades",
    "select[2 99] from trades",
]


@pytest.mark.parametrize("query", QUERIES)
def test_side_by_side(harness, query):
    result = harness.check(query)
    assert result.passed, result.comparison.reason


def test_suite_report(harness):
    report = harness.run_suite(["select from trades", "1+2"])
    assert report.passed == 2
    assert report.failed == 0
    assert "2/2" in report.summary()


def test_variable_workflow_matches(harness):
    query = (
        "f: {[s] dt: select Price from trades where Symbol=s; "
        ":avg exec Price from dt}; f[`GOOG]"
    )
    result = harness.check(query)
    assert result.passed, result.comparison.reason


def test_both_sides_error_counts_as_match(harness):
    result = harness.check("select from nonexistent_table")
    assert result.passed
    assert result.q_error is not None
    assert result.hq_error is not None
