"""Property-based tests on core invariants.

* the two-valued/three-valued logic bridge: Q ``=`` on the interpreter
  agrees with ``IS NOT DISTINCT FROM`` through Hyper-Q on random nullable
  data;
* ordering transparency: results come back in interpreter order for any
  random table;
* interpreter algebraic identities (sum = +/, reverse∘reverse = id, ...).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import QAtom, QTable, QVector, q_match
from repro.testing.comparators import compare_values
from repro.workload.loader import load_table

nullable_longs = st.one_of(
    st.integers(-1_000, 1_000), st.just(NULL_LONG)
)
nullable_floats = st.one_of(
    st.floats(-1e6, 1e6, allow_nan=False), st.just(float("nan"))
)
small_symbols = st.sampled_from(["a", "b", "c", ""])


@st.composite
def random_tables(draw):
    n = draw(st.integers(1, 12))
    return QTable(
        ["s", "v", "f"],
        [
            QVector(
                QType.SYMBOL,
                draw(st.lists(small_symbols, min_size=n, max_size=n)),
            ),
            QVector(
                QType.LONG,
                draw(st.lists(nullable_longs, min_size=n, max_size=n)),
            ),
            QVector(
                QType.FLOAT,
                draw(st.lists(nullable_floats, min_size=n, max_size=n)),
            ),
        ],
    )


def run_both(table, query):
    interp = Interpreter()
    interp.set_global("t", table)
    hyperq = HyperQ()
    load_table(hyperq.engine, "t", table, mdi=hyperq.mdi)
    return interp.eval_text(query), hyperq.q(query)


class TestTwoValuedLogicBridge:
    @given(random_tables(), small_symbols)
    @settings(max_examples=40, deadline=None)
    def test_symbol_equality_with_nulls(self, table, needle):
        """Q `=` (null matches null) ≡ IS NOT DISTINCT FROM through SQL."""
        query = f"select v from t where s=`{needle}" if needle else \
            "select v from t where s=`"
        left, right = run_both(table, query)
        assert compare_values(left, right), (left, right)

    @given(random_tables())
    @settings(max_examples=40, deadline=None)
    def test_long_null_equality(self, table):
        left, right = run_both(table, "select s from t where v=0N")
        assert compare_values(left, right)

    @given(random_tables())
    @settings(max_examples=30, deadline=None)
    def test_range_predicate_drops_nulls_on_both_sides(self, table):
        left, right = run_both(table, "select s from t where v>0")
        assert compare_values(left, right)


class TestOrderingTransparency:
    @given(random_tables())
    @settings(max_examples=40, deadline=None)
    def test_select_preserves_row_order(self, table):
        left, right = run_both(table, "select from t")
        assert compare_values(left, right)

    @given(random_tables())
    @settings(max_examples=30, deadline=None)
    def test_sorting_matches(self, table):
        left, right = run_both(table, "`v xasc t")
        assert compare_values(left, right)

    @given(random_tables())
    @settings(max_examples=30, deadline=None)
    def test_group_by_matches(self, table):
        left, right = run_both(table, "select cnt: count v by s from t")
        assert compare_values(left, right)


class TestInterpreterIdentities:
    @given(st.lists(nullable_longs, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_sum_equals_plus_fold(self, items):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        total = interp.eval_text("sum xs")
        if items and all(x == NULL_LONG for x in items):
            # q: the sum of an all-null list is null
            assert total.is_null
            return
        # otherwise q's null-skipping sum equals the fold over 0-filled input
        fold = interp.eval_text("0 +/ 0^xs")
        assert total == fold

    @given(st.lists(st.integers(-100, 100), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_reverse_involution(self, items):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        assert q_match(
            interp.eval_text("reverse reverse xs"), interp.eval_text("xs")
        )

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_asc_is_sorted_permutation(self, items):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        result = interp.eval_text("asc xs")
        assert sorted(items) == result.items

    @given(st.lists(st.integers(-50, 50), max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_deltas_sums_inverse(self, items):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        assert q_match(
            interp.eval_text("sums deltas xs"), interp.eval_text("xs")
        )

    @given(st.lists(st.integers(0, 20), max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_count_distinct_bounds(self, items):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        distinct_count = interp.eval_text("count distinct xs").value
        assert distinct_count <= len(items)
        assert distinct_count == len(set(items))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=25),
           st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_take_length(self, items, n):
        interp = Interpreter()
        interp.set_global("xs", QVector(QType.LONG, items))
        interp.set_global("n", QAtom(QType.LONG, n))
        assert interp.eval_text("count n#xs").value == n


class TestParserPrinterAgreement:
    @given(st.lists(st.integers(-(2**31), 2**31), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_long_vector_literal_roundtrip(self, items):
        from repro.qlang.printer import format_value

        vec = QVector(QType.LONG, items)
        text = format_value(vec)
        assert q_match(Interpreter().eval_text(text), vec)

    @given(st.lists(st.sampled_from(["abc", "x", "Sym1"]), min_size=1,
                    max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_symbol_vector_literal_roundtrip(self, items):
        from repro.qlang.printer import format_value

        vec = QVector(QType.SYMBOL, items)
        assert q_match(Interpreter().eval_text(format_value(vec)), vec)
