"""Fixtures for the WLM suites: a market-data platform and session."""

import pytest

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.workload.loader import load_q_source

MARKET_SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40)
"""


@pytest.fixture()
def hyperq():
    hq = HyperQ()
    it = Interpreter()
    load_q_source(hq.engine, it, MARKET_SOURCE, ["trades"], mdi=hq.mdi)
    return hq


@pytest.fixture()
def session(hyperq):
    s = hyperq.create_session()
    yield s
    s.close()
