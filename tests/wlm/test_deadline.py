"""Tests for per-request deadlines and the thread-local request scope."""

import threading

import pytest

from repro.errors import DeadlineExceededError
from repro.wlm.deadline import (
    Deadline,
    current_context,
    current_deadline,
    note_retry,
    request_scope,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(2.5)
        assert deadline.remaining() == pytest.approx(-0.5)
        assert deadline.expired

    def test_check_raises_with_checkpoint_name(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("pass.bind")  # not expired: no-op
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("pass.bind")
        assert "pass.bind" in str(err.value)
        assert err.value.signal == "wlm-deadline"

    def test_cap_bounds_socket_timeouts(self):
        clock = FakeClock()
        deadline = Deadline.after(3.0, clock=clock)
        assert deadline.cap(10.0) == pytest.approx(3.0)
        assert deadline.cap(1.0) == pytest.approx(1.0)
        assert deadline.cap(None) == pytest.approx(3.0)  # uncapped input
        clock.advance(5.0)
        assert deadline.cap(10.0) == 0.0  # never negative


class TestRequestScope:
    def test_no_scope_means_no_deadline(self):
        assert current_context() is None
        assert current_deadline() is None

    def test_scope_installs_and_removes(self):
        deadline = Deadline.after(5.0)
        with request_scope(deadline, query_class="analytical") as ctx:
            assert current_deadline() is deadline
            assert ctx.query_class == "analytical"
        assert current_deadline() is None

    def test_nested_scope_inherits_parent_deadline(self):
        outer = Deadline.after(5.0)
        with request_scope(outer):
            with request_scope(None, query_class="admin"):
                assert current_deadline() is outer

    def test_earlier_deadline_wins(self):
        clock = FakeClock()
        late = Deadline.after(10.0, clock=clock)
        early = Deadline.after(1.0, clock=clock)
        with request_scope(late):
            with request_scope(early):
                assert current_deadline() is early
        with request_scope(early):
            with request_scope(late):  # callee cannot loosen
                assert current_deadline() is early

    def test_scope_is_thread_local(self):
        seen = {}
        with request_scope(Deadline.after(5.0)):

            def probe():
                seen["deadline"] = current_deadline()

            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["deadline"] is None

    def test_note_retry_accumulates_on_context(self):
        with request_scope(None) as ctx:
            note_retry()
            note_retry(2)
            assert ctx.retries == 3
        note_retry()  # no active scope: a no-op, not an error
