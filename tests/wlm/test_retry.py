"""Tests for retry policy, retry budget, circuit breaker and the
ResilientBackend composition."""

import pytest

from repro.config import CircuitBreakerConfig, FaultConfig, RetryConfig
from repro.errors import BackendSqlError, CircuitOpenError
from repro.wlm.deadline import Deadline, request_scope
from repro.wlm.faults import FaultInjector
from repro.wlm.retry import (
    BreakerState,
    CircuitBreaker,
    ResilientBackend,
    RetryBudget,
    RetryPolicy,
    is_idempotent,
    is_transient,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedBackend:
    """Raises the scripted exceptions in order, then succeeds forever."""

    name = "scripted"

    def __init__(self, failures=()):
        self.failures = list(failures)
        self.calls = 0

    def run_sql(self, sql):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return f"ok:{sql}"

    def catalog_version(self):
        return 0


def make_resilient(inner, retry=None, breaker=None, faults=None):
    policy = RetryPolicy(
        retry or RetryConfig(jitter_seed=7), sleep=lambda s: None
    )
    cb = CircuitBreaker("scripted", breaker or CircuitBreakerConfig())
    return ResilientBackend(inner, policy=policy, breaker=cb, faults=faults)


class TestTransience:
    def test_transport_errors_are_transient(self):
        assert is_transient(ConnectionError("reset"))
        assert is_transient(OSError("broken pipe"))

    def test_transient_sqlstates(self):
        assert is_transient(BackendSqlError("overload", code="53300"))
        assert is_transient(BackendSqlError("conn failure", code="08006"))
        assert is_transient(BackendSqlError("serialize", code="40001"))
        assert is_transient(BackendSqlError("shutdown", code="57P01"))

    def test_sql_rejections_are_not_transient(self):
        assert not is_transient(BackendSqlError("no table", code="42P01"))
        assert not is_transient(ValueError("bad plan"))

    def test_idempotency_is_first_keyword(self):
        assert is_idempotent("SELECT 1")
        assert is_idempotent("  with x as (select 1) select * from x")
        assert is_idempotent("SHOW server_version")
        assert not is_idempotent("INSERT INTO t VALUES (1)")
        assert not is_idempotent("CREATE TEMP TABLE t (x bigint)")
        assert not is_idempotent("")

    def test_data_modifying_ctes_are_not_idempotent(self):
        # PostgreSQL data-modifying CTEs mutate state even though the
        # statement starts with WITH: retrying could apply the write twice
        assert not is_idempotent(
            "WITH moved AS (DELETE FROM t RETURNING *) SELECT * FROM moved"
        )
        assert not is_idempotent(
            "with x as (insert into t values (1) returning a)"
            " select * from x"
        )
        assert not is_idempotent(
            "WITH x AS (UPDATE t SET a = 2 RETURNING a) SELECT * FROM x"
        )
        assert not is_idempotent("WITH x AS (SELECT 1) DELETE FROM t")
        assert is_idempotent("WITH x AS (SELECT 1) SELECT * FROM x")


class TestRetryBudget:
    def test_spend_until_exhausted(self):
        budget = RetryBudget(ratio=0.1, min_tokens=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_successes_refill(self):
        budget = RetryBudget(ratio=0.5, min_tokens=1.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        for __ in range(2):
            budget.record_success()
        assert budget.try_spend()

    def test_refill_is_capped(self):
        budget = RetryBudget(ratio=1.0, min_tokens=5.0)
        for __ in range(100):
            budget.record_success()
        assert budget.tokens == 10.0  # 2x min_tokens


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(
            RetryConfig(base_delay=0.1, max_delay=0.4, jitter_seed=1)
        )
        for attempt, ceiling in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.4)]:
            for __ in range(20):
                assert 0.0 <= policy.backoff(attempt) <= ceiling

    def test_attempt_limit(self):
        policy = RetryPolicy(RetryConfig(max_attempts=3))
        exc = ConnectionError("reset")
        assert policy.should_retry("SELECT 1", exc, attempt=1)
        assert policy.should_retry("SELECT 1", exc, attempt=2)
        assert not policy.should_retry("SELECT 1", exc, attempt=3)

    def test_writes_never_retried(self):
        policy = RetryPolicy(RetryConfig())
        assert not policy.should_retry(
            "INSERT INTO t VALUES (1)", ConnectionError("reset"), 1
        )

    def test_disabled_policy_never_retries(self):
        policy = RetryPolicy(RetryConfig(enabled=False))
        assert not policy.should_retry("SELECT 1", ConnectionError(), 1)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        defaults = dict(
            failure_threshold=3, reset_timeout=5.0, close_threshold=1
        )
        defaults.update(kwargs)
        return CircuitBreaker(
            "b", CircuitBreakerConfig(**defaults), clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        with pytest.raises(CircuitOpenError) as err:
            breaker.allow()
        assert err.value.signal == "wlm-open"
        assert err.value.retry_after == pytest.approx(5.0)

    def test_success_resets_the_count(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_probe_lifecycle(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == BreakerState.HALF_OPEN
        breaker.allow()  # first caller becomes the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second caller fails fast meanwhile
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        breaker.allow()  # closed again: everyone passes

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        expected = [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.OPEN),
        ]
        assert breaker.transitions == expected

    def test_close_threshold_needs_multiple_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, close_threshold=2)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.HALF_OPEN
        breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

    def test_allow_reports_probe_ownership(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.allow() is False  # closed: nobody is the probe
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() is True  # half-open: this caller probes
        breaker.record_success()
        assert breaker.allow() is False  # closed again

    def test_probe_abort_releases_the_slot_without_judging(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() is True
        breaker.record_probe_abort()
        # still half-open (no verdict on the backend), and the slot is
        # free: the next caller becomes the probe instead of failing fast
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(
            "b", CircuitBreakerConfig(enabled=False), clock=FakeClock()
        )
        for __ in range(100):
            breaker.record_failure()
        breaker.allow()  # never raises


class TestResilientBackend:
    def test_transparent_on_success(self):
        inner = ScriptedBackend()
        backend = make_resilient(inner)
        assert backend.run_sql("SELECT 1") == "ok:SELECT 1"
        assert inner.calls == 1

    def test_retries_transient_read_failures(self):
        inner = ScriptedBackend(
            failures=[ConnectionError("r1"), ConnectionError("r2")]
        )
        backend = make_resilient(inner)
        assert backend.run_sql("SELECT 1") == "ok:SELECT 1"
        assert inner.calls == 3

    def test_gives_up_after_max_attempts(self):
        inner = ScriptedBackend(failures=[ConnectionError("r")] * 10)
        backend = make_resilient(
            inner, retry=RetryConfig(max_attempts=2, jitter_seed=7)
        )
        with pytest.raises(ConnectionError):
            backend.run_sql("SELECT 1")
        assert inner.calls == 2

    def test_never_retries_writes(self):
        inner = ScriptedBackend(failures=[ConnectionError("r")])
        backend = make_resilient(inner)
        with pytest.raises(ConnectionError):
            backend.run_sql("INSERT INTO t VALUES (1)")
        assert inner.calls == 1

    def test_sql_rejection_passes_through_untouched(self):
        inner = ScriptedBackend(
            failures=[BackendSqlError("no table", code="42P01")]
        )
        backend = make_resilient(inner)
        with pytest.raises(BackendSqlError):
            backend.run_sql("SELECT * FROM missing")
        assert inner.calls == 1
        # a SQL rejection says nothing about backend health
        assert backend.breaker.snapshot()["failures"] == 0

    def test_breaker_opens_and_fails_fast(self):
        inner = ScriptedBackend(failures=[ConnectionError("r")] * 50)
        backend = make_resilient(
            inner,
            retry=RetryConfig(enabled=False),
            breaker=CircuitBreakerConfig(failure_threshold=3),
        )
        for __ in range(3):
            with pytest.raises(ConnectionError):
                backend.run_sql("SELECT 1")
        calls_before = inner.calls
        with pytest.raises(CircuitOpenError):
            backend.run_sql("SELECT 1")
        assert inner.calls == calls_before  # failed fast, no backend call

    def test_sql_rejection_on_probe_does_not_wedge_the_breaker(self):
        # regression: a non-transient error on the half-open probe used
        # to leave _probe_in_flight set forever, so the breaker rejected
        # every future request — permanent outage from one SQL error
        clock = FakeClock()
        inner = ScriptedBackend(
            failures=[ConnectionError("down")] * 3
            + [BackendSqlError("no table", code="42P01")]
        )
        breaker = CircuitBreaker(
            "scripted",
            CircuitBreakerConfig(failure_threshold=3, reset_timeout=5.0),
            clock=clock,
        )
        backend = ResilientBackend(
            inner,
            policy=RetryPolicy(RetryConfig(enabled=False)),
            breaker=breaker,
        )
        for __ in range(3):
            with pytest.raises(ConnectionError):
                backend.run_sql("SELECT 1")
        assert breaker.state == BreakerState.OPEN
        clock.advance(5.0)
        # this request is the half-open probe and dies on a SQL-level
        # rejection, which says nothing about backend health
        with pytest.raises(BackendSqlError):
            backend.run_sql("SELECT * FROM missing")
        assert breaker.state == BreakerState.HALF_OPEN
        # the slot was released: the next caller probes and re-closes
        assert backend.run_sql("SELECT 1") == "ok:SELECT 1"
        assert breaker.state == BreakerState.CLOSED

    def test_deadline_bounds_the_retry_loop(self):
        inner = ScriptedBackend(failures=[ConnectionError("r")] * 10)
        backend = make_resilient(
            inner, retry=RetryConfig(max_attempts=10, jitter_seed=7)
        )
        clock = FakeClock()
        deadline = Deadline(expires_at=-1.0, clock=clock)  # already expired
        from repro.errors import DeadlineExceededError

        with request_scope(deadline):
            with pytest.raises(DeadlineExceededError):
                backend.run_sql("SELECT 1")
        assert inner.calls == 0  # checked before touching the backend

    def test_fault_injector_sits_inside_the_retry_loop(self):
        inner = ScriptedBackend()
        faults = FaultInjector(
            FaultConfig(enabled=True, seed=3, error_rate=1.0),
            sleep=lambda s: None,
        )
        backend = make_resilient(
            inner, retry=RetryConfig(max_attempts=2, jitter_seed=7),
            faults=faults,
        )
        with pytest.raises(BackendSqlError) as err:
            backend.run_sql("SELECT 1")
        assert err.value.code == "53300"
        assert faults.injected["error"] == 2  # initial try + 1 retry
