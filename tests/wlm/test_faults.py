"""Tests for deterministic fault injection and its REPRO_FAULTS spec."""

import pytest

from repro.config import FaultConfig
from repro.errors import BackendSqlError
from repro.wlm.faults import FaultInjector
from repro.wlm.retry import is_transient


def drive(injector, calls=50):
    """Run the injection points ``calls`` times; return the outcome tags."""
    outcomes = []
    for __ in range(calls):
        try:
            injector.before_execute()
        except ConnectionError:
            outcomes.append("drop")
            continue
        except BackendSqlError:
            outcomes.append("error")
            continue
        injector.after_execute()
        outcomes.append("ok")
    return outcomes


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        config = FaultConfig(
            enabled=True, seed=42, drop_rate=0.2, error_rate=0.2,
            latency_rate=0.1, latency_seconds=0.0,
        )
        a = FaultInjector(config, sleep=lambda s: None)
        b = FaultInjector(config, sleep=lambda s: None)
        assert drive(a) == drive(b)
        assert a.injected == b.injected

    def test_different_seeds_differ(self):
        base = dict(enabled=True, drop_rate=0.3, error_rate=0.3)
        a = FaultInjector(FaultConfig(seed=1, **base))
        b = FaultInjector(FaultConfig(seed=2, **base))
        assert drive(a) != drive(b)


class TestInjectionPoints:
    def test_disabled_injector_is_inert(self):
        injector = FaultInjector(FaultConfig(enabled=False, drop_rate=1.0))
        injector.before_execute()
        injector.after_execute()
        assert sum(injector.injected.values()) == 0

    def test_drop_raises_connection_error(self):
        injector = FaultInjector(FaultConfig(enabled=True, drop_rate=1.0))
        with pytest.raises(ConnectionError):
            injector.before_execute()
        assert injector.injected["drop"] == 1

    def test_error_is_transient_sqlstate(self):
        injector = FaultInjector(FaultConfig(enabled=True, error_rate=1.0))
        with pytest.raises(BackendSqlError) as err:
            injector.before_execute()
        assert err.value.code == "53300"
        assert is_transient(err.value)

    def test_latency_and_slow_read_sleep(self):
        slept = []
        injector = FaultInjector(
            FaultConfig(
                enabled=True,
                latency_rate=1.0, latency_seconds=0.2,
                slow_read_rate=1.0, slow_read_seconds=0.1,
            ),
            sleep=slept.append,
        )
        injector.before_execute()
        injector.after_execute()
        assert slept == [0.2, 0.1]
        assert injector.injected["latency"] == 1
        assert injector.injected["slow_read"] == 1


class TestFaultSpec:
    def test_from_env_spec_parsing(self):
        config = FaultConfig.from_env(
            "seed=7,error_rate=0.3,latency_rate=0.1,latency_ms=200,"
            "drop_rate=0.05,slow_read_rate=0.2,slow_read_ms=50"
        )
        assert config.enabled
        assert config.seed == 7
        assert config.error_rate == 0.3
        assert config.latency_rate == 0.1
        assert config.latency_seconds == pytest.approx(0.2)
        assert config.drop_rate == 0.05
        assert config.slow_read_seconds == pytest.approx(0.05)

    def test_empty_spec_is_disabled(self):
        assert not FaultConfig.from_env("").enabled
        assert not FaultConfig.from_env("   ").enabled

    def test_malformed_parts_are_skipped(self):
        config = FaultConfig.from_env("error_rate=0.5,,bogus,=")
        assert config.enabled
        assert config.error_rate == 0.5

    def test_unknown_keys_are_dropped_not_fatal(self):
        # a typo ('drop=' for 'drop_rate=') must never crash config
        # construction — from_env runs as a dataclass default_factory
        config = FaultConfig.from_env("drop=0.3,error_rate=0.5")
        assert config.enabled
        assert config.error_rate == 0.5
        assert config.drop_rate == 0.0
