"""Session-level WLM behavior: classification threading, quotas and the
``wlm[]`` admin command."""

import pytest

from repro.config import HyperQConfig, WlmClassPolicy, WlmConfig
from repro.core.platform import HyperQ
from repro.errors import DeadlineExceededError, WlmShedError
from repro.qlang.interp import Interpreter
from repro.qlang.values import QTable
from repro.workload.loader import load_q_source
from tests.wlm.conftest import MARKET_SOURCE


def make_platform(wlm: WlmConfig) -> HyperQ:
    hq = HyperQ(config=HyperQConfig(wlm=wlm))
    load_q_source(
        hq.engine, Interpreter(), MARKET_SOURCE, ["trades"], mdi=hq.mdi
    )
    return hq


class TestWlmAdminCommand:
    def test_wlm_returns_class_rows(self, session):
        session.execute("select from trades")
        table = session.execute("wlm[]")
        assert isinstance(table, QTable)
        assert table.columns == [
            "name", "kind", "state", "limit", "active", "queued",
            "admitted", "shed",
        ]
        by_name = dict(
            zip(table.column("name").items, table.column("admitted").items)
        )
        assert by_name.get("analytical", 0) >= 1

    def test_wlm_is_billed_as_admin(self, session):
        session.execute("wlm[]")
        table = session.execute("wlm[]")
        by_name = dict(
            zip(table.column("name").items, table.column("admitted").items)
        )
        assert by_name.get("admin", 0) >= 1

    def test_breaker_rows_present(self, session):
        session.execute("select from trades")
        table = session.execute("wlm[]")
        kinds = set(table.column("kind").items)
        assert "breaker" in kinds

    def test_disabled_wlm_yields_empty_table(self):
        hq = make_platform(WlmConfig(enabled=False))
        session = hq.create_session()
        try:
            assert hq.wlm is None
            table = session.execute("wlm[]")
            assert isinstance(table, QTable)
            assert len(table.column("name").items) == 0
            # ordinary queries still work without a workload manager
            session.execute("select from trades")
        finally:
            session.close()


class TestQuotaEnforcement:
    def test_zero_concurrency_class_sheds(self):
        hq = make_platform(
            WlmConfig(
                classes={
                    "analytical": WlmClassPolicy(
                        max_concurrency=0, max_queue=0
                    ),
                }
            )
        )
        session = hq.create_session()
        try:
            with pytest.raises(WlmShedError) as err:
                session.execute("select from trades")
            assert err.value.reason == "queue-full"
            # other classes are untouched: admin still runs
            table = session.execute("wlm[]")
            by_name = dict(
                zip(table.column("name").items, table.column("shed").items)
            )
            assert by_name["analytical"] == 1
        finally:
            session.close()

    def test_cache_hit_bills_the_same_class(self):
        hq = make_platform(WlmConfig())
        session = hq.create_session()
        try:
            session.execute("select from trades")
            session.execute("select from trades")  # translation-cache hit
            table = session.execute("wlm[]")
            by_name = dict(
                zip(
                    table.column("name").items,
                    table.column("admitted").items,
                )
            )
            assert by_name["analytical"] == 2
        finally:
            session.close()


class TestDefaultDeadline:
    def test_expired_default_deadline_kills_the_request(self):
        hq = make_platform(WlmConfig(default_deadline=1e-9))
        session = hq.create_session()
        try:
            with pytest.raises(DeadlineExceededError) as err:
                session.execute("select from trades")
            assert err.value.signal == "wlm-deadline"
        finally:
            session.close()

    def test_generous_deadline_is_invisible(self):
        hq = make_platform(WlmConfig(default_deadline=30.0))
        session = hq.create_session()
        try:
            session.execute("select from trades")
        finally:
            session.close()
