"""Tests for the admission controller: quotas, FIFO queues, shedding."""

import threading
import time

import pytest

from repro.config import WlmClassPolicy, WlmConfig
from repro.errors import WlmShedError
from repro.wlm.admission import AdmissionController
from repro.wlm.deadline import Deadline, request_scope


def make_controller(**policies) -> AdmissionController:
    config = WlmConfig(classes={name: p for name, p in policies.items()})
    return AdmissionController(config)


class TestFastPath:
    def test_admit_and_release(self):
        ctrl = make_controller(analytical=WlmClassPolicy(max_concurrency=2))
        with ctrl.admit("analytical") as queued:
            assert queued == 0.0
            assert ctrl.snapshot()["analytical"]["active"] == 1
        snap = ctrl.snapshot()["analytical"]
        assert snap["active"] == 0
        assert snap["admitted"] == 1

    def test_unknown_class_gets_default_policy(self):
        ctrl = make_controller()
        with ctrl.admit("mystery"):
            assert ctrl.snapshot()["mystery"]["active"] == 1

    def test_classes_are_isolated(self):
        ctrl = make_controller(
            admin=WlmClassPolicy(max_concurrency=1),
            analytical=WlmClassPolicy(max_concurrency=1),
        )
        with ctrl.admit("admin"):
            # a full admin quota must not block analytical work
            with ctrl.admit("analytical") as queued:
                assert queued == 0.0


class TestShedding:
    def test_queue_full_sheds_immediately(self):
        ctrl = make_controller(
            analytical=WlmClassPolicy(max_concurrency=1, max_queue=0)
        )
        with ctrl.admit("analytical"):
            with pytest.raises(WlmShedError) as err:
                with ctrl.admit("analytical"):
                    pass
        assert err.value.reason == "queue-full"
        assert err.value.query_class == "analytical"
        assert err.value.signal == "wlm-shed"
        assert ctrl.snapshot()["analytical"]["shed"] == 1

    def test_enqueue_timeout_sheds(self):
        ctrl = make_controller(
            analytical=WlmClassPolicy(
                max_concurrency=1, max_queue=4, enqueue_timeout=0.05
            )
        )
        with ctrl.admit("analytical"):
            start = time.monotonic()
            with pytest.raises(WlmShedError) as err:
                with ctrl.admit("analytical"):
                    pass
            elapsed = time.monotonic() - start
        assert err.value.reason == "timeout"
        assert 0.01 < elapsed < 2.0
        # the shed request left the queue behind it clean
        assert ctrl.snapshot()["analytical"]["queued"] == 0

    def test_expired_deadline_sheds_with_deadline_reason(self):
        ctrl = make_controller(
            analytical=WlmClassPolicy(
                max_concurrency=1, max_queue=4, enqueue_timeout=30.0
            )
        )
        with ctrl.admit("analytical"):
            with request_scope(Deadline.after(0.02)):
                with pytest.raises(WlmShedError) as err:
                    with ctrl.admit("analytical"):
                        pass
        assert err.value.reason == "deadline"


class TestQueueing:
    def test_queued_request_admitted_when_slot_frees(self):
        ctrl = make_controller(
            analytical=WlmClassPolicy(
                max_concurrency=1, max_queue=4, enqueue_timeout=5.0
            )
        )
        holding = threading.Event()
        release = threading.Event()
        waited = {}

        def holder():
            with ctrl.admit("analytical"):
                holding.set()
                release.wait(timeout=10)

        def waiter():
            with ctrl.admit("analytical") as queued:
                waited["queued"] = queued

        t1 = threading.Thread(target=holder)
        t1.start()
        assert holding.wait(timeout=5)
        t2 = threading.Thread(target=waiter)
        t2.start()
        time.sleep(0.05)  # let the waiter actually queue
        assert ctrl.snapshot()["analytical"]["queued"] == 1
        release.set()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert waited["queued"] > 0.0

    def test_fifo_order_preserved(self):
        ctrl = make_controller(
            analytical=WlmClassPolicy(
                max_concurrency=1, max_queue=8, enqueue_timeout=10.0
            )
        )
        order = []
        lock = threading.Lock()
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with ctrl.admit("analytical"):
                holding.set()
                release.wait(timeout=10)

        def waiter(tag):
            with ctrl.admit("analytical"):
                with lock:
                    order.append(tag)
                time.sleep(0.01)

        t0 = threading.Thread(target=holder)
        t0.start()
        assert holding.wait(timeout=5)
        waiters = []
        for tag in range(4):
            t = threading.Thread(target=waiter, args=(tag,))
            t.start()
            waiters.append(t)
            time.sleep(0.05)  # serialize arrival order
        release.set()
        t0.join(timeout=10)
        for t in waiters:
            t.join(timeout=10)
        assert order == [0, 1, 2, 3]
