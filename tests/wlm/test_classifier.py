"""Tests for the query classifier: which admission quota a statement
bills, decided syntactically over the Q AST."""

from repro.qlang.parser import parse
from repro.wlm.classifier import (
    QueryClass,
    classify_program,
    classify_statement,
)


def classify(q_text: str) -> QueryClass:
    statements = parse(q_text).statements
    assert len(statements) == 1
    return classify_statement(statements[0])


class TestAdminClass:
    def test_admin_verbs(self):
        assert classify("tables[]") is QueryClass.ADMIN
        assert classify("metrics[]") is QueryClass.ADMIN
        assert classify("wlm[]") is QueryClass.ADMIN
        assert classify("cols trades") is QueryClass.ADMIN
        assert classify("meta trades") is QueryClass.ADMIN

    def test_function_definition_is_scope_bookkeeping(self):
        assert classify("f: {x + 1}") is QueryClass.ADMIN


class TestPointLookup:
    def test_literal_pinned_select(self):
        assert (
            classify("select from trades where Symbol = `GOOG")
            is QueryClass.POINT_LOOKUP
        )

    def test_literal_pinned_exec(self):
        assert (
            classify("exec Price from trades where Symbol = `IBM")
            is QueryClass.POINT_LOOKUP
        )

    def test_scalar_expression(self):
        assert classify("1 + 1") is QueryClass.POINT_LOOKUP

    def test_grouped_query_is_not_a_lookup(self):
        assert (
            classify("select sum Size by Symbol from trades "
                     "where Symbol = `GOOG")
            is QueryClass.ANALYTICAL
        )


class TestAnalytical:
    def test_unfiltered_select(self):
        assert classify("select from trades") is QueryClass.ANALYTICAL

    def test_aggregating_prefix_unwrapped(self):
        assert classify("count select from trades") is QueryClass.ANALYTICAL

    def test_non_literal_filter(self):
        assert (
            classify("select from trades where Price > 50.0")
            is QueryClass.ANALYTICAL
        )


class TestMaterializing:
    def test_data_assignment(self):
        assert classify("t: select from trades") is QueryClass.MATERIALIZING

    def test_update_template(self):
        assert (
            classify("update Price: 0.0 from trades")
            is QueryClass.MATERIALIZING
        )

    def test_delete_template(self):
        assert (
            classify("delete from trades where Symbol = `GOOG")
            is QueryClass.MATERIALIZING
        )


class TestProgramClassification:
    def test_heaviest_statement_wins(self):
        statements = parse(
            "tables[]; t: select from trades; 1 + 1"
        ).statements
        assert classify_program(statements) is QueryClass.MATERIALIZING

    def test_empty_program_is_admin(self):
        assert classify_program([]) is QueryClass.ADMIN

    def test_weights_are_ordered(self):
        weights = [
            QueryClass.ADMIN.weight,
            QueryClass.POINT_LOOKUP.weight,
            QueryClass.ANALYTICAL.weight,
            QueryClass.MATERIALIZING.weight,
        ]
        assert weights == sorted(weights)
