"""Tests for the scope hierarchy (Figure 3) and the FSM framework."""

import pytest

from repro.core.fsm import Fsm, FsmError
from repro.core.scopes import (
    LocalScope,
    ServerScope,
    SessionScope,
    VarKind,
    VariableDef,
)
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom


def scalar(name, value):
    return VariableDef(name, VarKind.SCALAR, value=QAtom(QType.LONG, value))


class TestScopeHierarchy:
    def test_lookup_falls_through(self):
        server = ServerScope()
        session = SessionScope(server)
        local = LocalScope(session)
        server.upsert(scalar("g", 1))
        assert local.lookup("g").value.value == 1

    def test_local_shadows_session_and_server(self):
        server = ServerScope()
        session = SessionScope(server)
        local = LocalScope(session)
        server.upsert(scalar("x", 1))
        session.upsert(scalar("x", 2))
        local.upsert(scalar("x", 3))
        assert local.lookup("x").value.value == 3
        assert session.lookup("x").value.value == 2

    def test_local_upsert_never_promotes(self):
        server = ServerScope()
        session = SessionScope(server)
        local = LocalScope(session)
        local.upsert(scalar("tmp", 9))
        assert session.lookup("tmp") is None
        assert server.lookup("tmp") is None

    def test_session_destroy_promotes_to_server(self):
        server = ServerScope()
        session = SessionScope(server)
        session.upsert(scalar("v", 5))
        promoted = session.destroy()
        assert promoted == ["v"]
        assert server.lookup("v").value.value == 5
        assert session.local_entries() == {}

    def test_delete(self):
        server = ServerScope()
        server.upsert(scalar("x", 1))
        assert server.delete("x")
        assert not server.delete("x")
        assert server.lookup("x") is None

    def test_names_sorted(self):
        server = ServerScope()
        server.upsert(scalar("b", 1))
        server.upsert(scalar("a", 2))
        assert server.names() == ["a", "b"]


class TestFsm:
    def build(self, trace):
        fsm = Fsm("test", "idle")
        fsm.add_state("working", on_enter=lambda m, p: trace.append(("enter", p)))
        fsm.add_state("done")
        fsm.add_transition(
            "idle", "go", "working",
            action=lambda m, p: trace.append(("action", p)),
        )
        fsm.add_transition("working", "finish", "done")
        return fsm

    def test_transition_with_action_and_entry(self):
        trace = []
        fsm = self.build(trace)
        fsm.fire("go", payload=42)
        assert fsm.state == "working"
        assert trace == [("action", 42), ("enter", 42)]

    def test_unknown_event_raises(self):
        fsm = self.build([])
        with pytest.raises(FsmError):
            fsm.fire("finish")  # not valid from idle

    def test_undeclared_state_rejected(self):
        fsm = Fsm("x", "a")
        with pytest.raises(FsmError):
            fsm.add_transition("a", "e", "nowhere")

    def test_events_fired_from_callbacks_are_queued(self):
        fsm = Fsm("chain", "s0")
        order = []
        fsm.add_state("s1", on_enter=lambda m, p: (order.append(1), m.fire("n2")))
        fsm.add_state("s2", on_enter=lambda m, p: order.append(2))
        fsm.add_transition("s0", "n1", "s1")
        fsm.add_transition("s1", "n2", "s2")
        fsm.fire("n1")
        assert fsm.state == "s2"
        assert order == [1, 2]

    def test_history_recorded(self):
        fsm = self.build([])
        fsm.fire("go")
        fsm.fire("finish")
        assert fsm.history == [("idle", "go", "working"),
                               ("working", "finish", "done")]

    def test_can_fire(self):
        fsm = self.build([])
        assert fsm.can_fire("go")
        assert not fsm.can_fire("finish")
