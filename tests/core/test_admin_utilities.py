"""Tests for the kdb+-style management utilities served from the MDI."""

import pytest

from repro.qlang.qtypes import QType
from repro.qlang.values import QTable, QVector


class TestTablesCommand:
    def test_lists_backend_tables(self, session):
        result = session.execute("tables[]")
        assert isinstance(result, QVector)
        assert set(result.items) >= {"trades", "quotes", "ratings"}

    def test_hides_internal_relations(self, session):
        session.execute("tmp: select from trades")
        result = session.execute("tables[]")
        assert not any(name.startswith("hq_") for name in result.items)

    def test_sorted(self, session):
        result = session.execute("tables[]")
        assert list(result.items) == sorted(result.items)


class TestColsCommand:
    def test_cols_of_backend_table(self, session):
        result = session.execute("cols trades")
        assert result == QVector(
            QType.SYMBOL, ["Symbol", "Time", "Price", "Size"]
        )

    def test_cols_excludes_ordcol(self, session):
        result = session.execute("cols trades")
        assert "ordcol" not in result.items

    def test_cols_of_session_variable(self, session):
        session.execute("dt: select Symbol, Price from trades")
        result = session.execute("cols dt")
        assert result.items == ["Symbol", "Price"]

    def test_cols_answered_from_metadata_cache(self, session):
        session.execute("cols trades")
        lookups_before = session.mdi.stats.lookups
        session.execute("cols trades")
        assert session.mdi.stats.hits >= 1
        assert session.mdi.stats.lookups == lookups_before + 1


class TestMetaCommand:
    def test_meta_shape(self, session):
        result = session.execute("meta trades")
        assert isinstance(result, QTable)
        assert result.columns == ["c", "t"]

    def test_meta_type_characters(self, session):
        result = session.execute("meta trades")
        by_name = dict(zip(result.column("c").items, result.column("t").items))
        assert by_name["Symbol"] == "s"
        assert by_name["Price"] == "f"
        assert by_name["Size"] == "j"
        assert by_name["Time"] == "t"

    def test_meta_matches_interpreter_modulo_temporal_width(self, session, interp):
        """The backend has a single `time` type, so second/minute columns
        come back as `t` — the expected (documented) type degradation."""
        left = interp.eval_text("meta trades")
        right = session.execute("meta trades")
        assert left.column("c") == right.column("c")
        intraday = set("uvt")
        for lchar, rchar in zip(
            left.column("t").items, right.column("t").items
        ):
            if lchar in intraday:
                assert rchar in intraday
            else:
                assert lchar == rchar

    def test_unknown_table_still_errors(self, session):
        from repro.errors import QNameError

        with pytest.raises(QNameError):
            session.execute("meta ghost_table")


class TestCheckCommand:
    """``check`` surfaces the qcheck analyzer on the session protocol."""

    def test_check_empty_lists_rule_catalog(self, session):
        result = session.execute("check[]")
        assert isinstance(result, QTable)
        assert result.columns == ["code", "name", "severity", "purpose"]
        codes = result.column("code").items
        assert len(codes) >= 5
        assert all(code.startswith("QC") for code in codes)

    def test_check_clean_query_reports_nothing(self, session):
        result = session.execute(
            'check "select Price from trades where Symbol=`GOOG"'
        )
        assert isinstance(result, QTable)
        assert result.columns == ["code", "severity", "rule", "pos", "message"]
        assert len(result.column("code").items) == 0

    def test_check_reports_unbound_name(self, session):
        result = session.execute('check "select frobnicate from trades"')
        codes = result.column("code").items
        assert "QC001" in codes
        severities = result.column("severity").items
        assert severities[codes.index("QC001")] == "error"

    def test_check_sees_session_variables(self, session):
        session.execute("vt: select from trades")
        clean = session.execute('check "select Symbol from vt"')
        assert len(clean.column("code").items) == 0

    def test_check_reports_parse_errors_as_qc000(self, session):
        result = session.execute('check "select from ("')
        assert "QC000" in result.column("code").items

    def test_check_does_not_shadow_user_function(self, session):
        """A user-defined ``check`` still wins over the admin command
        when applied to a non-string argument."""
        session.execute("check: {[x] select from trades where Size > x}")
        result = session.execute("check[25]")
        assert isinstance(result, QTable)
        assert "Symbol" in result.columns
