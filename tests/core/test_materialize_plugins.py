"""Tests for the materializer and the plugin registry."""

import pytest

from repro.config import MaterializationMode
from repro.core.algebrizer.binder import Binder
from repro.core.materialize import Materializer
from repro.core.plugins import PluginError, PluginRegistry
from repro.core.scopes import VarKind
from repro.qlang.parser import parse_expression
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom


@pytest.fixture()
def setup(hyperq):
    session = hyperq.create_session()
    binder = Binder(session.mdi, session.session_scope, hyperq.config)
    materializer = Materializer(session.mdi, hyperq.config, session.serializer)
    return hyperq, session, binder, materializer


class TestMaterializer:
    def bind_table(self, binder, text):
        return binder.bind(parse_expression(text))

    def test_physical_emits_create_temp_table(self, setup):
        hq, session, binder, materializer = setup
        bound = self.bind_table(binder, "select from trades where Price > 50")
        step = materializer.materialize_table(
            "dt", bound, session.session_scope, MaterializationMode.PHYSICAL
        )
        assert step.kind == "temp_table"
        assert step.sql.startswith('CREATE TEMPORARY TABLE "hq_temp_')
        assert session.session_scope.lookup("dt").kind == VarKind.TABLE

    def test_logical_emits_create_view(self, setup):
        hq, session, binder, materializer = setup
        bound = self.bind_table(binder, "select from trades")
        step = materializer.materialize_table(
            "v", bound, session.session_scope, MaterializationMode.LOGICAL
        )
        assert step.kind == "view"
        assert "CREATE OR REPLACE VIEW" in step.sql
        assert session.session_scope.lookup("v").kind == VarKind.VIEW

    def test_temp_names_increment(self, setup):
        hq, session, binder, materializer = setup
        bound = self.bind_table(binder, "select from trades")
        first = materializer.materialize_table(
            "a", bound, session.session_scope, MaterializationMode.PHYSICAL
        )
        second = materializer.materialize_table(
            "b", bound, session.session_scope, MaterializationMode.PHYSICAL
        )
        assert first.relation != second.relation

    def test_meta_recorded_from_bound_plan(self, setup):
        hq, session, binder, materializer = setup
        bound = self.bind_table(binder, "select Price from trades")
        materializer.materialize_table(
            "dt", bound, session.session_scope, MaterializationMode.PHYSICAL
        )
        meta = session.session_scope.lookup("dt").meta
        assert meta.has_column("Price")
        assert meta.ordcol == "ordcol"

    def test_scalar_store(self, setup):
        hq, session, __, materializer = setup
        materializer.store_scalar(
            "x", QAtom(QType.LONG, 5), session.session_scope
        )
        definition = session.session_scope.lookup("x")
        assert definition.kind == VarKind.SCALAR
        assert definition.value == QAtom(QType.LONG, 5)

    def test_function_stored_as_text(self, setup):
        hq, session, __, materializer = setup
        materializer.store_function("f", "{x+1}", session.session_scope)
        assert session.session_scope.lookup("f").source == "{x+1}"


class TestPluginRegistry:
    def test_register_and_resolve_exact(self):
        registry = PluginRegistry()
        registry.register("kdb", "3.0", "endpoint", lambda: "v3")
        assert registry.create("kdb", "3.0", "endpoint") == "v3"

    def test_wildcard_fallback(self):
        registry = PluginRegistry()
        registry.register("postgres", "*", "gateway", lambda: "any")
        assert registry.create("postgres", "9.2", "gateway") == "any"

    def test_exact_beats_wildcard(self):
        registry = PluginRegistry()
        registry.register("kdb", "*", "endpoint", lambda: "any")
        registry.register("kdb", "3.0", "endpoint", lambda: "v3")
        assert registry.create("kdb", "3.0", "endpoint") == "v3"
        assert registry.create("kdb", "2.8", "endpoint") == "any"

    def test_duplicate_rejected(self):
        registry = PluginRegistry()
        registry.register("kdb", "3.0", "endpoint", lambda: 1)
        with pytest.raises(PluginError):
            registry.register("kdb", "3.0", "endpoint", lambda: 2)

    def test_missing_raises(self):
        registry = PluginRegistry()
        with pytest.raises(PluginError):
            registry.resolve("oracle", "12c", "gateway")

    def test_default_registry_has_kdb_and_pg(self):
        import repro.server.hyperq_server  # noqa: F401 — registers plugins
        from repro.core.plugins import default_registry

        systems = {(s, r) for s, __, r in default_registry.systems()}
        assert ("kdb", "endpoint") in systems
        assert ("postgres", "gateway") in systems
