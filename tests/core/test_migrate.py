"""Tests for the data movement / schema mapping tool (paper future work)."""

import pytest

from repro.core.migrate import DataMover
from repro.core.platform import HyperQ
from repro.errors import QTypeError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom, QList, QTable, QVector
from repro.sqlengine.engine import Engine
from repro.testing.comparators import compare_values


@pytest.fixture()
def source():
    interp = Interpreter()
    interp.eval_text(
        "trades: ([] Symbol:`GOOG`IBM; Time:09:30 09:31; "
        "Price:100.0 50.0; Size:10 0N); "
        "ratings: ([Symbol:`GOOG`IBM] Rating:`buy`hold)"
    )
    return interp


def q_tables(interp, names):
    return {name: interp.get_global(name) for name in names}


class TestSchemaMapping:
    def test_column_mappings(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend, mdi=hq.mdi)
        report = mover.migrate_table(
            "trades", source.get_global("trades")
        )
        by_name = {m.name: m for m in report.columns}
        assert by_name["Symbol"].sql_type == "varchar"
        assert by_name["Price"].sql_type == "double precision"
        assert by_name["Size"].sql_type == "bigint"
        assert by_name["ordcol"].sql_type == "bigint"

    def test_degradation_notes(self, source):
        hq = HyperQ()
        report = DataMover(hq.backend).migrate_table(
            "trades", source.get_global("trades")
        )
        minute = [m for m in report.columns if m.name == "Time"][0]
        assert minute.note is not None
        assert "time" in minute.note

    def test_general_list_rejected(self):
        hq = HyperQ()
        table = QTable(["g"], [QList([QAtom(QType.LONG, 1)])])
        with pytest.raises(QTypeError):
            DataMover(hq.backend).migrate_table("bad", table)


class TestDataMovement:
    def test_counts_and_nulls(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend, mdi=hq.mdi)
        report = mover.migrate_table("trades", source.get_global("trades"))
        assert report.rows_moved == 2
        assert report.verified
        result = hq.engine.execute('SELECT "Size" FROM "trades" ORDER BY "ordcol"')
        assert result.rows == [(10,), (None,)]

    def test_batching(self):
        hq = HyperQ()
        n = 1234
        table = QTable(["v"], [QVector(QType.LONG, list(range(n)))])
        mover = DataMover(hq.backend, batch_rows=100)
        report = mover.migrate_table("big", table)
        assert report.rows_moved == n
        assert hq.engine.execute('SELECT count(*) FROM "big"').scalar() == n

    def test_ordcol_continuous(self):
        hq = HyperQ()
        table = QTable(["v"], [QVector(QType.LONG, [7, 8, 9])])
        DataMover(hq.backend, batch_rows=2).migrate_table("t", table)
        result = hq.engine.execute('SELECT "ordcol" FROM "t" ORDER BY "ordcol"')
        assert [r[0] for r in result.rows] == [0, 1, 2]

    def test_keyed_table_annotated(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend, mdi=hq.mdi)
        report = mover.migrate_table("ratings", source.get_global("ratings"))
        assert report.keys == ["Symbol"]
        assert hq.mdi.require_table("ratings").keys == ["Symbol"]

    def test_replace_existing(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend)
        mover.migrate_table("trades", source.get_global("trades"))
        mover.migrate_table("trades", source.get_global("trades"))
        assert hq.engine.execute('SELECT count(*) FROM "trades"').scalar() == 2

    def test_works_through_network_gateway(self, source):
        """Data movement over the wire, not just in-process."""
        from repro.server.gateway import NetworkGateway
        from repro.server.pgserver import PgWireServer

        engine = Engine()
        with PgWireServer(engine) as server:
            with NetworkGateway(*server.address) as gateway:
                report = DataMover(gateway).migrate_table(
                    "trades", source.get_global("trades")
                )
                assert report.verified
                assert engine.execute(
                    'SELECT count(*) FROM "trades"'
                ).scalar() == 2


class TestEndToEndMigration:
    def test_migrate_then_query_side_by_side(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend, mdi=hq.mdi)
        report = mover.migrate(q_tables(source, ["trades", "ratings"]))
        assert report.total_rows == 4
        assert "migrated 2 tables" in report.summary()

        for query in [
            "select from trades",
            "select sum Size by Symbol from trades",
            "trades lj ratings",
        ]:
            left = source.eval_text(query)
            right = hq.q(query)
            comparison = compare_values(left, right)
            assert comparison, f"{query}: {comparison.reason}"

    def test_verify_hook(self, source):
        hq = HyperQ()
        mover = DataMover(hq.backend, mdi=hq.mdi)
        seen = []

        def check(name):
            seen.append(name)
            return True

        mover.migrate(q_tables(source, ["trades"]), verify_with=check)
        assert seen == ["trades"]
