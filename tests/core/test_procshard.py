"""Unit tests for the process-shard transport (``repro.core.procshard``).

Codec round-trips need no child process; the lifecycle tests spawn a
single worker (spawn cost dominates, so shard counts stay minimal and
the worker is shared per class where state allows).
"""

import math
import os
import subprocess
import sys

import pytest

from repro.config import ShardingConfig
from repro.core.procshard import (
    ProcessShardBackend,
    decode_reply,
    encode_exception,
    encode_result,
    encode_scalar,
    iter_load_chunks,
    pack_load,
    spawn_process_shards,
    unpack_load,
)
from repro.errors import (
    BackendSqlError,
    DeadlineExceededError,
    ProtocolError,
    SqlExecutionError,
)
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType
from repro.wlm.deadline import Deadline, request_scope


def _roundtrip(result: ResultSet) -> ResultSet:
    return decode_reply(encode_result(result))


class TestCodec:
    def test_uniform_primitive_columns_roundtrip(self):
        result = ResultSet.from_columns(
            [
                Column("n", SqlType.BIGINT),
                Column("x", SqlType.DOUBLE),
                Column("ok", SqlType.BOOLEAN),
                Column("sym", SqlType.VARCHAR),
            ],
            [
                [1, -(2 ** 63), 2 ** 63 - 1],
                [0.5, -1.25, 3.0],
                [True, False, True],
                ["a", "", "hello world"],
            ],
        )
        back = _roundtrip(result)
        assert back.column_data == result.column_data
        assert back.command == "SELECT"
        assert [
            (c.name, c.sql_type, c.type_text) for c in back.columns
        ] == [(c.name, c.sql_type, c.type_text) for c in result.columns]

    def test_nan_roundtrips_bit_exact(self):
        back = _roundtrip(ResultSet.from_columns(
            [Column("x", SqlType.DOUBLE)], [[float("nan"), 1.5]]
        ))
        assert math.isnan(back.column_data[0][0])
        assert back.column_data[0][1] == 1.5

    def test_null_and_mixed_columns_take_pickle_path(self):
        from decimal import Decimal

        result = ResultSet.from_columns(
            [
                Column("a", SqlType.BIGINT),
                Column("b", SqlType.NUMERIC),
                Column("c", SqlType.VARCHAR),
            ],
            [
                [1, None, 3],
                [Decimal("1.50"), Decimal("-2"), None],
                ["x", None, "y\x00z"],
            ],
        )
        back = _roundtrip(result)
        assert back.column_data == result.column_data
        assert type(back.column_data[1][0]) is Decimal

    def test_bools_do_not_masquerade_as_longs(self):
        # bool is an int subclass; the long tag must reject it or the
        # round-trip would return 1 where the engine produced True
        back = _roundtrip(ResultSet.from_columns(
            [Column("v", SqlType.BIGINT)], [[True, 2]]
        ))
        assert back.column_data[0] == [True, 2]
        assert type(back.column_data[0][0]) is bool

    def test_empty_result_roundtrips(self):
        back = _roundtrip(ResultSet.from_columns(
            [Column("n", SqlType.BIGINT)], [[]], command="SELECT"
        ))
        assert back.column_data == [[]]
        assert back.rows == []

    def test_scalar_envelope(self):
        assert decode_reply(encode_scalar("pong")) == "pong"
        assert decode_reply(encode_scalar(7)) == 7

    def test_error_envelope_preserves_class_and_sqlstate(self):
        err = BackendSqlError("boom", code="53300")
        with pytest.raises(BackendSqlError) as excinfo:
            decode_reply(encode_exception(err))
        assert excinfo.value.code == "53300"
        assert excinfo.value.backend_message == "boom"

    def test_error_envelope_rebuilds_repro_classes(self):
        with pytest.raises(SqlExecutionError):
            decode_reply(encode_exception(SqlExecutionError("div by zero")))
        with pytest.raises(DeadlineExceededError):
            decode_reply(encode_exception(DeadlineExceededError("late")))

    def test_unknown_error_class_degrades_to_backend_error(self):
        class Weird(Exception):
            pass

        with pytest.raises(BackendSqlError) as excinfo:
            decode_reply(encode_exception(Weird("odd")))
        assert "Weird" in str(excinfo.value)

    def test_load_blob_roundtrip(self):
        columns = [Column("id", SqlType.BIGINT), Column("s", SqlType.TEXT)]
        rows = [[1, "a"], [2, None]]
        got_columns, got_rows = unpack_load(pack_load(columns, rows))
        assert [(c.name, c.sql_type) for c in got_columns] == [
            ("id", SqlType.BIGINT), ("s", SqlType.TEXT)
        ]
        assert got_rows == rows

    def test_load_chunks_split_and_reassemble(self):
        # wide partitions must split into bounded frames: a single-frame
        # load of the 600-column fact table trips the endpoint's
        # max_message_bytes and gets the connection fatally closed
        columns = [Column("id", SqlType.BIGINT), Column("s", SqlType.TEXT)]
        rows = [[i, "x" * 50] for i in range(400)]
        target = 4096
        blobs = list(iter_load_chunks(columns, rows, target_bytes=target))
        assert len(blobs) > 1
        reassembled = []
        for seq, blob in enumerate(blobs):
            # the estimate may overshoot the target, but never by the
            # 8x margin that separates the default from the frame limit
            assert len(blob) < target * 8
            got_columns, got_rows = unpack_load(blob)
            assert [c.name for c in got_columns] == ["id", "s"]
            reassembled.extend(got_rows)
        assert reassembled == rows

    def test_small_load_stays_single_chunk(self):
        columns = [Column("id", SqlType.BIGINT)]
        rows = [[1], [2]]
        blobs = list(iter_load_chunks(columns, rows))
        assert len(blobs) == 1
        assert unpack_load(blobs[0])[1] == rows

    def test_malformed_reply_raises_protocol_error(self):
        from repro.qlang.qtypes import QType
        from repro.qlang.values import QList, QVector

        with pytest.raises(ProtocolError):
            decode_reply(QList([]))
        with pytest.raises(ProtocolError):
            decode_reply(QVector(QType.LONG, [1]))


@pytest.fixture(scope="module")
def worker():
    """One shared worker process (spawns are the expensive part)."""
    shard = ProcessShardBackend(0, ShardingConfig(mode="process"))
    shard.start()
    shard.load_columns(
        "t",
        [Column("id", SqlType.BIGINT), Column("px", SqlType.DOUBLE)],
        [[1, 1.5], [2, 2.5], [3, float("nan")]],
    )
    yield shard
    shard.close()


class TestWorkerLifecycle:
    def test_sql_roundtrip(self, worker):
        result = worker.run_sql("SELECT id, px FROM t ORDER BY id")
        assert result.rows[0] == (1, 1.5)
        assert math.isnan(result.rows[2][1])

    def test_ping_and_version(self, worker):
        assert worker.ping() is True
        assert isinstance(worker.catalog_version(), int)

    def test_sql_errors_cross_with_classification(self, worker):
        from repro.errors import SqlCatalogError

        with pytest.raises(SqlCatalogError):
            worker.run_sql("SELECT * FROM no_such_table")

    def test_expired_deadline_raises_before_sending(self, worker):
        with request_scope(deadline=Deadline.after(-1.0)):
            with pytest.raises(DeadlineExceededError):
                worker.run_sql("SELECT 1")

    def test_live_deadline_passes_through(self, worker):
        with request_scope(deadline=Deadline.after(30.0)):
            result = worker.run_sql("SELECT count(*) AS n FROM t")
        assert result.rows == [(3,)]

    def test_process_info_reports_worker(self, worker):
        info = worker.process_info()
        assert info["mode"] == "process"
        assert info["alive"] is True
        assert info["pid"] > 0
        # rss comes from procfs; tolerate platforms without it
        assert info["rss_kb"] >= 0

    def test_chunked_load_over_the_wire(self, worker, monkeypatch):
        import repro.core.procshard as procshard_module

        monkeypatch.setattr(procshard_module, "LOAD_CHUNK_BYTES", 2048)
        columns = [Column("id", SqlType.BIGINT), Column("s", SqlType.TEXT)]
        rows = [[i, "v" * 40] for i in range(300)]
        worker.load_columns("chunked", columns, rows)
        result = worker.run_sql(
            "SELECT count(*) AS n, min(id) AS lo, max(id) AS hi"
            " FROM chunked"
        )
        assert result.rows == [(300, 0, 299)]


class TestCrashRespawn:
    def test_kill_respawns_with_partition_and_writes_intact(self):
        shard = ProcessShardBackend(
            0, ShardingConfig(mode="process", max_respawns=2)
        )
        shard.start()
        try:
            shard.load_columns(
                "t", [Column("id", SqlType.BIGINT)], [[1], [2]]
            )
            shard.run_sql("CREATE TABLE w (x INTEGER)")
            shard.run_sql("INSERT INTO w VALUES (42)")
            old_pid = shard.process_info()["pid"]
            shard.kill_next_request = True
            # the in-flight statement surfaces as a transient the retry
            # layer would absorb
            with pytest.raises(ConnectionError):
                shard.run_sql("SELECT * FROM t")
            assert shard.restarts == 1
            assert shard.process_info()["pid"] != old_pid
            # partition reloaded, journaled writes replayed
            assert shard.run_sql(
                "SELECT count(*) AS n FROM t"
            ).rows == [(2,)]
            assert shard.run_sql("SELECT x FROM w").rows == [(42,)]
        finally:
            shard.close()

    def test_respawn_budget_exhaustion_is_not_transient(self):
        shard = ProcessShardBackend(
            0, ShardingConfig(mode="process", max_respawns=0)
        )
        shard.start()
        try:
            shard.kill_next_request = True
            with pytest.raises(BackendSqlError) as excinfo:
                shard.run_sql("SELECT 1")
            assert excinfo.value.code == "58000"
        finally:
            shard.close()

    def test_close_is_idempotent_and_reaps_the_worker(self):
        shard = ProcessShardBackend(0, ShardingConfig(mode="process"))
        shard.start()
        pid = shard.process_info()["pid"]
        assert pid > 0
        shard.close()
        shard.close()
        assert shard.process_info()["alive"] is False
        assert shard.ping() is False
        with pytest.raises(ProtocolError):
            shard.run_sql("SELECT 1")


class TestPool:
    def test_spawn_pool_barrier_and_teardown(self):
        shards = spawn_process_shards(2, ShardingConfig(mode="process"))
        try:
            assert [s.index for s in shards] == [0, 1]
            assert all(s.ping() for s in shards)
            pids = {s.process_info()["pid"] for s in shards}
            assert len(pids) == 2
        finally:
            for shard in shards:
                shard.close()


class TestOrphanWatchdog:
    def test_worker_exits_when_declared_parent_is_gone(self):
        # --parent declares a coordinator pid that is not this process;
        # the worker's ppid watchdog must notice and exit on its own —
        # the same comparison fires when a real coordinator dies
        # ungracefully (SIGKILL, OOM) and the worker is reparented
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server.shardworker",
                "--shard", "0", "--parent", "1",
            ],
            stdout=subprocess.DEVNULL,
            env=env,
        )
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            pytest.fail("orphaned shard worker did not exit on its own")
        assert proc.returncode == 0
