"""Unit tests for the XTRA -> SQL serializer."""

import pytest

from repro.core.serializer import Serializer, quote_ident, quote_string
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    XtraColumn,
    XtraConstTable,
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraJoin,
    XtraLimit,
    XtraSort,
    XtraUnionAll,
    XtraWindow,
)
from repro.errors import TranslationError
from repro.sqlengine.engine import Engine
from repro.sqlengine.types import SqlType


@pytest.fixture()
def serializer():
    return Serializer()


def get_op():
    return XtraGet(
        "trades",
        [
            XtraColumn("Symbol", SqlType.VARCHAR),
            XtraColumn("Price", SqlType.DOUBLE),
            XtraColumn("ordcol", SqlType.BIGINT, False, implicit=True),
        ],
    )


class TestQuoting:
    def test_identifiers_always_quoted(self):
        assert quote_ident("Price") == '"Price"'

    def test_embedded_quote_doubled(self):
        assert quote_ident('we"ird') == '"we""ird"'

    def test_string_quotes(self):
        assert quote_string("O'Hare") == "'O''Hare'"


class TestRelational:
    def test_get(self, serializer):
        sql = serializer.serialize(get_op())
        assert sql == 'SELECT "Symbol", "Price", "ordcol" FROM "trades"'

    def test_filter_nests(self, serializer):
        op = XtraFilter(
            get_op(),
            sc.SCmp(
                "=",
                sc.SColRef("Symbol", SqlType.VARCHAR),
                sc.SConst("GOOG", SqlType.VARCHAR),
                null_safe=True,
            ),
        )
        sql = serializer.serialize(op)
        assert "WHERE" in sql
        assert "IS NOT DISTINCT FROM" in sql

    def test_strict_comparison(self, serializer):
        op = XtraFilter(
            get_op(),
            sc.SCmp(
                ">",
                sc.SColRef("Price", SqlType.DOUBLE),
                sc.SConst(5.0, SqlType.DOUBLE),
            ),
        )
        assert '("Price" > 5.0)' in serializer.serialize(op)

    def test_groupagg(self, serializer):
        op = XtraGroupAgg(
            get_op(),
            [("Symbol", sc.SColRef("Symbol", SqlType.VARCHAR))],
            [("m", sc.SAgg("max", sc.SColRef("Price", SqlType.DOUBLE)))],
        )
        sql = serializer.serialize(op)
        assert 'GROUP BY "Symbol"' in sql
        assert 'max("Price") AS "m"' in sql

    def test_scalar_agg_no_group_by(self, serializer):
        op = XtraGroupAgg(
            get_op(), [], [("c", sc.SAgg("count", None, type_=SqlType.BIGINT))]
        )
        sql = serializer.serialize(op)
        assert "GROUP BY" not in sql
        assert "count(*)" in sql

    def test_sort_nulls_first_on_asc(self, serializer):
        op = XtraSort(get_op(), [(sc.SColRef("Price", SqlType.DOUBLE), False)])
        assert 'ORDER BY "Price" NULLS FIRST' in serializer.serialize(op)

    def test_sort_desc_nulls_last(self, serializer):
        op = XtraSort(get_op(), [(sc.SColRef("Price", SqlType.DOUBLE), True)])
        assert "DESC NULLS LAST" in serializer.serialize(op)

    def test_limit(self, serializer):
        assert serializer.serialize(XtraLimit(get_op(), 5)).endswith("LIMIT 5")

    def test_left_join_on_condition(self, serializer):
        right = XtraGet("q", [XtraColumn("rsym", SqlType.VARCHAR)], ordcol=None)
        op = XtraJoin(
            "left",
            get_op(),
            right,
            sc.SCmp(
                "=",
                sc.SColRef("Symbol", SqlType.VARCHAR),
                sc.SColRef("rsym", SqlType.VARCHAR),
            ),
        )
        sql = serializer.serialize(op)
        assert "LEFT OUTER JOIN" in sql
        assert " ON " in sql

    def test_union_all(self, serializer):
        op = XtraUnionAll(get_op(), get_op())
        assert "UNION ALL" in serializer.serialize(op)

    def test_window_rendering(self, serializer):
        window = sc.SWindow(
            "lead",
            [sc.SColRef("Price", SqlType.DOUBLE)],
            partition_by=[sc.SColRef("Symbol", SqlType.VARCHAR)],
            order_by=[(sc.SColRef("Price", SqlType.DOUBLE), False)],
        )
        op = XtraWindow(get_op(), [("nxt", window)])
        sql = serializer.serialize(op)
        assert 'lead("Price") OVER (PARTITION BY "Symbol" ORDER BY "Price")' in sql

    def test_window_frame_uppercased(self, serializer):
        window = sc.SWindow(
            "sum",
            [sc.SColRef("Price", SqlType.DOUBLE)],
            order_by=[(sc.SColRef("ordcol", SqlType.BIGINT), False)],
            frame="rows between 2 preceding and current row",
        )
        op = XtraWindow(get_op(), [("s", window)])
        assert "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW" in serializer.serialize(op)

    def test_const_table_union_of_selects(self, serializer):
        op = XtraConstTable(
            [XtraColumn("a", SqlType.BIGINT), XtraColumn("b", SqlType.VARCHAR)],
            [[1, "x"], [2, "y"]],
        )
        sql = serializer.serialize(op)
        assert sql.count("SELECT") == 2
        assert "UNION ALL" in sql

    def test_empty_const_table(self, serializer):
        op = XtraConstTable([XtraColumn("a", SqlType.BIGINT)], [])
        sql = serializer.serialize(op)
        assert "LIMIT 0" in sql

    def test_unknown_op_raises(self, serializer):
        class Bogus:
            pass

        with pytest.raises(TranslationError):
            serializer.serialize(Bogus())


class TestLiterals:
    def render(self, value, sql_type):
        return Serializer()._literal(value, sql_type)

    def test_null_typed(self):
        assert self.render(None, SqlType.BIGINT) == "NULL::bigint"

    def test_booleans(self):
        assert self.render(True, SqlType.BOOLEAN) == "TRUE"
        assert self.render(False, SqlType.BOOLEAN) == "FALSE"

    def test_varchar(self):
        assert self.render("GOOG", SqlType.VARCHAR) == "'GOOG'::varchar"

    def test_string_escaping(self):
        assert self.render("O'Hare", SqlType.TEXT) == "'O''Hare'::text"

    def test_date(self):
        assert self.render(6021, SqlType.DATE) == "'2016-06-26'::date"

    def test_time(self):
        assert self.render(34_200_000, SqlType.TIME) == "'09:30:00.000'::time"

    def test_nan_becomes_null(self):
        assert self.render(float("nan"), SqlType.DOUBLE) == (
            "NULL::double precision"
        )

    def test_infinity(self):
        assert "Infinity" in self.render(float("inf"), SqlType.DOUBLE)


class TestRoundTripThroughEngine:
    """Serialized SQL must parse and execute on the engine substrate."""

    def test_every_shape_executes(self):
        engine = Engine()
        engine.execute(
            'CREATE TABLE "trades" ("Symbol" varchar, "Price" double precision,'
            ' "ordcol" bigint)'
        )
        engine.execute(
            "INSERT INTO \"trades\" VALUES ('GOOG', 1.0, 0), ('IBM', 2.0, 1)"
        )
        serializer = Serializer()
        shapes = [
            get_op(),
            XtraFilter(
                get_op(),
                sc.SCmp(
                    ">",
                    sc.SColRef("Price", SqlType.DOUBLE),
                    sc.SConst(0.0, SqlType.DOUBLE),
                ),
            ),
            XtraGroupAgg(
                get_op(),
                [("Symbol", sc.SColRef("Symbol", SqlType.VARCHAR))],
                [("m", sc.SAgg("max", sc.SColRef("Price", SqlType.DOUBLE),
                               type_=SqlType.DOUBLE))],
            ),
            XtraSort(get_op(), [(sc.SColRef("Price", SqlType.DOUBLE), True)]),
            XtraLimit(get_op(), 1),
        ]
        for op in shapes:
            result = engine.execute(serializer.serialize(op))
            assert result.rows is not None
