"""Unit tests for the Algebrizer's binder (Q AST -> XTRA)."""

import pytest

from repro.core.algebrizer.binder import Binder, BoundScalar, BoundTable
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraJoin,
    XtraProject,
    XtraSort,
    XtraWindow,
    walk,
)
from repro.errors import QNameError, QNotSupportedError, QTypeError
from repro.qlang.parser import parse_expression
from repro.sqlengine.types import SqlType


@pytest.fixture()
def binder(hyperq):
    session = hyperq.create_session()
    return Binder(session.mdi, session.session_scope, hyperq.config)


def bind(binder, text):
    return binder.bind(parse_expression(text))


def ops_of(bound, op_type):
    return [op for op in walk(bound.op) if isinstance(op, op_type)]


class TestTableBinding:
    def test_table_name_binds_to_get(self, binder):
        bound = bind(binder, "select from trades")
        gets = ops_of(bound, XtraGet)
        assert len(gets) == 1
        assert gets[0].table == "trades"

    def test_get_includes_ordcol(self, binder):
        bound = bind(binder, "select from trades")
        get = ops_of(bound, XtraGet)[0]
        assert get.ordcol == "ordcol"
        assert get.has_column("ordcol")

    def test_unknown_table_verbose_error(self, binder):
        with pytest.raises(QNameError) as excinfo:
            bind(binder, "select from nosuch")
        # the paper touts verbose error messages as a Hyper-Q improvement
        assert "catalog" in str(excinfo.value)

    def test_where_becomes_filter_chain(self, binder):
        bound = bind(binder, "select from trades where Price>40, Size>15")
        filters = ops_of(bound, XtraFilter)
        assert len(filters) == 2

    def test_keyed_table_keys_from_metadata(self, binder):
        bound = bind(binder, "select from ratings")
        assert bound.keys == ["Symbol"]

    def test_symbol_literal_maps_to_varchar(self, binder):
        bound = bind(binder, "select from trades where Symbol=`GOOG")
        predicate = ops_of(bound, XtraFilter)[0].predicate
        assert isinstance(predicate, sc.SCmp)
        assert predicate.right.type_ == SqlType.VARCHAR

    def test_comparison_bound_strict_before_xformer(self, binder):
        bound = bind(binder, "select from trades where Symbol=`GOOG")
        predicate = ops_of(bound, XtraFilter)[0].predicate
        assert predicate.null_safe is False  # Xformer upgrades it later


class TestSelectShapes:
    def test_projection(self, binder):
        bound = bind(binder, "select Price from trades")
        project = ops_of(bound, XtraProject)[0]
        names = [name for name, __ in project.projections]
        assert "Price" in names
        assert "ordcol" in names  # implicit order column survives

    def test_scalar_aggregation_gets_const_ordcol(self, binder):
        bound = bind(binder, "select max Price from trades")
        project = ops_of(bound, XtraProject)[0]
        ord_exprs = [s for n, s in project.projections if n == "ordcol"]
        assert isinstance(ord_exprs[0], sc.SConst)

    def test_group_by_becomes_groupagg_plus_sort(self, binder):
        bound = bind(binder, "select sum Size by Symbol from trades")
        assert ops_of(bound, XtraGroupAgg)
        assert isinstance(bound.op, XtraSort) or ops_of(bound, XtraSort)
        assert bound.keys == ["Symbol"]
        assert bound.shape == "keyed"

    def test_mixed_agg_becomes_window(self, binder):
        bound = bind(binder, "select Price, mx: max Price from trades")
        project = ops_of(bound, XtraProject)[0]
        mx = dict(project.projections)["mx"]
        assert isinstance(mx, sc.SWindow)

    def test_exec_single_column_vector_shape(self, binder):
        bound = bind(binder, "exec Price from trades")
        assert bound.shape == "vector"

    def test_exec_multi_column_dict_shape(self, binder):
        bound = bind(binder, "exec Price, Size from trades")
        assert bound.shape == "dict"

    def test_exec_by_keyed_dict_shape(self, binder):
        bound = bind(binder, "exec sum Size by Symbol from trades")
        assert bound.shape == "dict_keyed"

    def test_update_keeps_all_columns(self, binder):
        bound = bind(binder, "update N: Price*Size from trades")
        project = ops_of(bound, XtraProject)[0]
        names = [name for name, __ in project.projections]
        assert set(names) >= {"Symbol", "Price", "Size", "ordcol", "N"}

    def test_update_by_injects_partitioned_window(self, binder):
        bound = bind(binder, "update s: sums Size by Symbol from trades")
        project = ops_of(bound, XtraProject)[0]
        window = dict(project.projections)["s"]
        assert isinstance(window, sc.SWindow)
        assert window.partition_by  # partitioned by the group key

    def test_delete_columns(self, binder):
        bound = bind(binder, "delete Size from trades")
        project = ops_of(bound, XtraProject)[0]
        names = [name for name, __ in project.projections]
        assert "Size" not in names

    def test_delete_rows_filter_complement(self, binder):
        bound = bind(binder, "delete from trades where Symbol=`IBM")
        assert ops_of(bound, XtraFilter)


class TestScalarBinding:
    def test_literal_arith(self, binder):
        bound = bind(binder, "1+2")
        assert isinstance(bound, BoundScalar)

    def test_division_is_float(self, binder):
        bound = bind(binder, "7%2")
        assert bound.scalar.sql_type == SqlType.DOUBLE

    def test_within_becomes_between(self, binder):
        bound = bind(binder, "select from trades where Price within 40 105")
        predicate = ops_of(bound, XtraFilter)[0].predicate
        assert isinstance(predicate, sc.SBetween)

    def test_in_becomes_inlist(self, binder):
        bound = bind(binder, "select from trades where Symbol in `GOOG`IBM")
        predicate = ops_of(bound, XtraFilter)[0].predicate
        assert isinstance(predicate, sc.SIn)
        assert len(predicate.items) == 2

    def test_like_translates_glob(self, binder):
        bound = bind(binder, 'select from trades where Symbol like "GO*"')
        predicate = ops_of(bound, XtraFilter)[0].predicate
        assert isinstance(predicate, sc.SLike)
        assert predicate.pattern == "GO%"

    def test_fill_becomes_coalesce(self, binder):
        bound = bind(binder, "select p: 0 ^ Price from trades")
        project = ops_of(bound, XtraProject)[0]
        assert isinstance(dict(project.projections)["p"], sc.SFunc)

    def test_cond_becomes_case(self, binder):
        bound = bind(binder, "select b: $[Price>60; `hi; `lo] from trades")
        project = ops_of(bound, XtraProject)[0]
        assert isinstance(dict(project.projections)["b"], sc.SCase)

    def test_uniform_verbs_become_windows(self, binder):
        bound = bind(binder, "update s: sums Size from trades")
        project = ops_of(bound, XtraProject)[0]
        assert isinstance(dict(project.projections)["s"], sc.SWindow)

    def test_mavg_has_bounded_frame(self, binder):
        bound = bind(binder, "update m: 3 mavg Price from trades")
        project = ops_of(bound, XtraProject)[0]
        window = dict(project.projections)["m"]
        assert "2 preceding" in window.frame

    def test_aggregate_over_table(self, binder):
        bound = bind(binder, "avg exec Price from trades")
        assert isinstance(bound, BoundTable)
        assert bound.shape == "atom"

    def test_unsupported_construct_raises(self, binder):
        with pytest.raises(QNotSupportedError):
            bind(binder, "update f: fills Price from trades")

    def test_scalar_on_table_variable_is_type_error(self, binder):
        with pytest.raises((QTypeError, QNotSupportedError)):
            bind(binder, "select p: Price + trades from trades")


class TestJoinBinding:
    def test_aj_lowers_to_left_join_with_lead(self, binder):
        bound = bind(binder, "aj[`Symbol`Time; trades; quotes]")
        joins = ops_of(bound, XtraJoin)
        assert joins and joins[0].kind == "left"
        windows = ops_of(bound, XtraWindow)
        assert any(
            w.name == "lead" for op in windows for __, w in op.windows
        )

    def test_aj_output_order_restored(self, binder):
        bound = bind(binder, "aj[`Symbol`Time; trades; quotes]")
        assert isinstance(bound.op, XtraSort)

    def test_aj_property_check_missing_column(self, binder):
        with pytest.raises(QTypeError) as excinfo:
            bind(binder, "aj[`Symbol`Nope; trades; quotes]")
        assert "Nope" in str(excinfo.value)

    def test_lj_requires_keyed_right(self, binder):
        with pytest.raises(QTypeError):
            bind(binder, "trades lj quotes")

    def test_lj_on_keyed_table(self, binder):
        bound = bind(binder, "trades lj ratings")
        joins = ops_of(bound, XtraJoin)
        assert joins[0].kind == "left"

    def test_ij_inner(self, binder):
        bound = bind(binder, "trades ij ratings")
        assert ops_of(bound, XtraJoin)[0].kind == "inner"

    def test_uj_union_all(self, binder):
        from repro.core.xtra.ops import XtraUnionAll

        bound = bind(binder, "trades uj quotes")
        assert ops_of(bound, XtraUnionAll)
