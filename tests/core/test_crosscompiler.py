"""Tests for the Cross Compiler: QT pipeline, PT pivot (Figure 5)."""

import math

import pytest

from repro.core.crosscompiler import (
    ProtocolTranslator,
    StageTimings,
    pivot_result,
)
from repro.errors import TranslationError
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QTable,
    QVector,
)
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType


def result(columns, rows):
    return ResultSet([Column(n, t) for n, t in columns], rows)


class TestPivot:
    def test_table_shape(self):
        rs = result(
            [("sym", SqlType.VARCHAR), ("price", SqlType.DOUBLE)],
            [("GOOG", 1.0), ("IBM", 2.0)],
        )
        value = pivot_result(rs, "table", [])
        assert isinstance(value, QTable)
        assert value.columns == ["sym", "price"]
        assert value.column("sym").items == ["GOOG", "IBM"]

    def test_internal_columns_stripped(self):
        rs = result(
            [("ordcol", SqlType.BIGINT), ("v", SqlType.BIGINT),
             ("hq_r1_x", SqlType.BIGINT)],
            [(0, 10, 99)],
        )
        value = pivot_result(rs, "table", [])
        assert value.columns == ["v"]

    def test_atom_shape(self):
        rs = result([("m", SqlType.DOUBLE)], [(3.5,)])
        value = pivot_result(rs, "atom", [])
        assert value == QAtom(QType.FLOAT, 3.5)

    def test_atom_shape_requires_1x1(self):
        rs = result([("m", SqlType.DOUBLE)], [(1.0,), (2.0,)])
        with pytest.raises(TranslationError):
            pivot_result(rs, "atom", [])

    def test_vector_shape(self):
        rs = result([("v", SqlType.BIGINT)], [(1,), (2,), (3,)])
        value = pivot_result(rs, "vector", [])
        assert value == QVector(QType.LONG, [1, 2, 3])

    def test_dict_shape(self):
        rs = result(
            [("a", SqlType.BIGINT), ("b", SqlType.BIGINT)], [(1, 2), (3, 4)]
        )
        value = pivot_result(rs, "dict", [])
        assert isinstance(value, QDict)
        assert value.keys == QVector(QType.SYMBOL, ["a", "b"])

    def test_dict_keyed_shape(self):
        rs = result(
            [("sym", SqlType.VARCHAR), ("total", SqlType.BIGINT)],
            [("GOOG", 40), ("IBM", 20)],
        )
        value = pivot_result(rs, "dict_keyed", ["sym"])
        assert isinstance(value, QDict)
        assert value.keys.items == ["GOOG", "IBM"]
        assert value.values.items == [40, 20]

    def test_keyed_table_shape(self):
        rs = result(
            [("sym", SqlType.VARCHAR), ("a", SqlType.BIGINT),
             ("b", SqlType.BIGINT)],
            [("GOOG", 1, 2)],
        )
        value = pivot_result(rs, "keyed", ["sym"])
        assert isinstance(value, QKeyedTable)
        assert value.key.columns == ["sym"]
        assert value.value.columns == ["a", "b"]

    def test_null_becomes_typed_null(self):
        rs = result(
            [("v", SqlType.BIGINT), ("f", SqlType.DOUBLE),
             ("s", SqlType.VARCHAR)],
            [(None, None, None)],
        )
        value = pivot_result(rs, "table", [])
        assert value.column("v").atom_at(0).is_null
        assert math.isnan(value.column("f").items[0])
        assert value.column("s").items[0] == ""

    def test_type_mapping(self):
        rs = result(
            [
                ("b", SqlType.BOOLEAN),
                ("i", SqlType.INTEGER),
                ("d", SqlType.DATE),
                ("t", SqlType.TIME),
            ],
            [(True, 5, 6021, 34_200_000)],
        )
        value = pivot_result(rs, "table", [])
        assert value.column("b").qtype == QType.BOOLEAN
        assert value.column("i").qtype == QType.INT
        assert value.column("d").qtype == QType.DATE
        assert value.column("t").qtype == QType.TIME


class TestStageTimings:
    def test_total(self):
        t = StageTimings(parse=1.0, algebrize=2.0, optimize=3.0, serialize=4.0)
        assert t.total == 10.0

    def test_add(self):
        a = StageTimings(parse=1.0)
        a.add(StageTimings(parse=0.5, serialize=2.0))
        assert a.parse == 1.5
        assert a.serialize == 2.0


class TestProtocolTranslatorFsm:
    def test_execute_and_pivot_via_fsm(self):
        from repro.core.crosscompiler import TranslationResult

        calls = []

        def execute(translation):
            calls.append(translation.sql)
            return result([("v", SqlType.BIGINT)], [(7,)])

        pt = ProtocolTranslator(execute)
        translation = TranslationResult(
            sql="SELECT 7", shape="atom", keys=[], timings=StageTimings()
        )
        value = pt.respond(translation)
        assert calls == ["SELECT 7"]
        assert value == QAtom(QType.LONG, 7)
