"""Tests for the write path: `` `t insert rows`` through Hyper-Q."""

import pytest

from repro.errors import QNotSupportedError, QTypeError
from repro.qlang.qtypes import QType
from repro.qlang.values import QVector


class TestInsert:
    def test_insert_returns_new_row_indices(self, session):
        result = session.execute(
            "`trades insert ([] Symbol:`AAPL`TSLA; "
            "Time:09:40:00 09:41:00; Price:90.0 700.0; Size:5 6)"
        )
        assert result == QVector(QType.LONG, [4, 5])

    def test_inserted_rows_visible_and_ordered_last(self, session):
        session.execute(
            "`trades insert ([] Symbol:`AAPL`TSLA; "
            "Time:09:40:00 09:41:00; Price:90.0 700.0; Size:5 6)"
        )
        result = session.execute("select from trades")
        assert len(result) == 6
        assert result.column("Symbol").items[-2:] == ["AAPL", "TSLA"]

    def test_insert_column_order_independent(self, session):
        session.execute(
            "`trades insert ([] Size: enlist 9; Price: enlist 1.0; "
            "Time: enlist 10:00:00; Symbol: enlist `Z)"
        )
        result = session.execute("select from trades where Symbol=`Z")
        assert result.column("Size").items == [9]
        assert result.column("Price").items == [1.0]

    def test_insert_from_query(self, session):
        """Append a filtered selection of the table back into itself."""
        result = session.execute(
            "`trades insert select from trades where Symbol=`GOOG"
        )
        assert len(result) == 2
        assert session.execute("count select from trades").value == 6

    def test_insert_column_mismatch_rejected(self, session):
        with pytest.raises(QTypeError):
            session.execute("`trades insert ([] wrong: enlist 1)")

    def test_insert_needs_literal_target(self, session):
        with pytest.raises((QNotSupportedError, QTypeError)):
            session.execute("trades insert ([] Symbol: enlist `X)")

    def test_upsert_behaves_like_insert_on_plain_table(self, session):
        result = session.execute(
            "`trades upsert ([] Symbol: enlist `U; Time: enlist 11:00:00; "
            "Price: enlist 2.0; Size: enlist 3)"
        )
        assert result == QVector(QType.LONG, [4])

    def test_insert_into_session_variable(self, session):
        session.execute("mine: select from trades where Size > 15")
        before = session.execute("count select from mine").value
        session.execute(
            "`mine insert select from trades where Symbol=`GOOG"
        )
        after = session.execute("count select from mine").value
        assert after == before + 2

    def test_translate_only_emits_insert_sql(self, session):
        outcome = session.translate(
            "`trades insert ([] Symbol: enlist `X; Time: enlist 09:00:00; "
            "Price: enlist 1.0; Size: enlist 1)"
        )
        assert any(s.startswith("INSERT INTO") for s in outcome.sql_statements)

    def test_insert_matches_interpreter(self, session, interp):
        from repro.testing.comparators import compare_values

        text = (
            "`trades insert ([] Symbol: enlist `N; Time: enlist 12:00:00; "
            "Price: enlist 4.0; Size: enlist 4); select from trades"
        )
        left = interp.eval_text(text)
        right = session.execute(text)
        comparison = compare_values(left, right)
        assert comparison, comparison.reason
