"""Tests for the metadata interface and its configurable cache."""

import time

import pytest

from repro.config import CacheInvalidation, MetadataCacheConfig
from repro.core.metadata import MetadataInterface
from repro.core.platform import DirectGateway
from repro.errors import MetadataError
from repro.sqlengine.engine import Engine
from repro.sqlengine.types import SqlType


@pytest.fixture()
def backend():
    engine = Engine()
    engine.execute(
        "CREATE TABLE trades (sym varchar, price double precision, ordcol bigint)"
    )
    return DirectGateway(engine)


def mdi_with(backend, **kwargs):
    return MetadataInterface(backend, MetadataCacheConfig(**kwargs))


class TestLookup:
    def test_columns_and_types(self, backend):
        mdi = mdi_with(backend)
        meta = mdi.require_table("trades")
        assert [c.name for c in meta.columns] == ["sym", "price", "ordcol"]
        assert meta.columns[1].sql_type == SqlType.DOUBLE

    def test_ordcol_detected(self, backend):
        meta = mdi_with(backend).require_table("trades")
        assert meta.ordcol == "ordcol"

    def test_missing_table_is_none(self, backend):
        assert mdi_with(backend).lookup_table("nope") is None

    def test_require_missing_raises(self, backend):
        with pytest.raises(MetadataError):
            mdi_with(backend).require_table("nope")

    def test_key_annotation(self, backend):
        mdi = mdi_with(backend)
        mdi.annotate_keys("trades", ["sym"])
        assert mdi.require_table("trades").keys == ["sym"]

    def test_data_columns_excludes_ordcol(self, backend):
        meta = mdi_with(backend).require_table("trades")
        assert [c.name for c in meta.data_columns] == ["sym", "price"]


class TestCache:
    def test_second_lookup_hits(self, backend):
        mdi = mdi_with(backend)
        mdi.lookup_table("trades")
        mdi.lookup_table("trades")
        assert mdi.stats.hits == 1
        assert mdi.stats.misses == 1

    def test_disabled_cache_always_misses(self, backend):
        mdi = mdi_with(backend, enabled=False)
        mdi.lookup_table("trades")
        mdi.lookup_table("trades")
        assert mdi.stats.hits == 0
        assert mdi.stats.misses == 2

    def test_always_invalidation_behaves_like_disabled(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.ALWAYS)
        mdi.lookup_table("trades")
        mdi.lookup_table("trades")
        assert mdi.stats.hits == 0

    def test_version_invalidation_on_ddl(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.VERSION)
        mdi.lookup_table("trades")
        backend.engine.execute("CREATE TABLE other (a bigint)")  # bumps version
        mdi.lookup_table("trades")
        assert mdi.stats.misses == 2

    def test_none_invalidation_ignores_ddl(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.NONE)
        mdi.lookup_table("trades")
        backend.engine.execute("CREATE TABLE other (a bigint)")
        mdi.lookup_table("trades")
        assert mdi.stats.hits == 1

    def test_ttl_expiry(self, backend):
        mdi = mdi_with(backend, expiration_seconds=0.0,
                       invalidation=CacheInvalidation.NONE)
        mdi.lookup_table("trades")
        time.sleep(0.001)
        mdi.lookup_table("trades")
        assert mdi.stats.misses == 2

    def test_explicit_invalidation(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.NONE)
        mdi.lookup_table("trades")
        mdi.invalidate("trades")
        mdi.lookup_table("trades")
        assert mdi.stats.misses == 2

    def test_negative_results_cached(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.NONE)
        mdi.lookup_table("ghost")
        mdi.lookup_table("ghost")
        assert mdi.stats.hits == 1

    def test_hit_rate(self, backend):
        mdi = mdi_with(backend, invalidation=CacheInvalidation.NONE)
        mdi.lookup_table("trades")
        mdi.lookup_table("trades")
        mdi.lookup_table("trades")
        assert mdi.stats.hit_rate == pytest.approx(2 / 3)


class TestStalenessWindow:
    """Regression: a DDL landing *during* the information_schema fetch
    must not stamp the pre-DDL metadata with the post-DDL catalog
    version.  ``lookup_table`` samples the version before the fetch, so
    such an entry looks stale and the next lookup re-fetches."""

    class RacyGateway(DirectGateway):
        """Runs a schema-changing DDL immediately after the catalog
        fetch returns — inside the historical staleness window."""

        def __init__(self, engine):
            super().__init__(engine)
            self.raced = False

        def run_sql(self, sql):
            result = super().run_sql(sql)
            if "information_schema.columns" in sql and not self.raced:
                self.raced = True
                self.engine.execute("DROP TABLE trades")
                self.engine.execute(
                    "CREATE TABLE trades (sym varchar, "
                    "price double precision, extra bigint, ordcol bigint)"
                )
            return result

    def test_ddl_during_fetch_is_not_cached_as_fresh(self):
        engine = Engine()
        engine.execute(
            "CREATE TABLE trades "
            "(sym varchar, price double precision, ordcol bigint)"
        )
        gateway = self.RacyGateway(engine)
        mdi = mdi_with(gateway, invalidation=CacheInvalidation.VERSION)
        first = mdi.require_table("trades")
        assert "extra" not in [c.name for c in first.columns]  # pre-DDL view
        # the entry was stamped with the pre-fetch version, so the DDL
        # that raced the fetch makes it look stale: re-fetch, not a hit
        second = mdi.require_table("trades")
        assert "extra" in [c.name for c in second.columns]
        assert mdi.stats.hits == 0
        assert mdi.stats.misses == 2
