"""Unit tests for sharded scatter-gather execution: the partition map,
the distributed-rewrite pass (locality analysis, plan modes, partial
aggregation) and the ShardedBackend (routing, merging, hedging,
deadlines, health)."""

import threading
import time
import zlib

import pytest

from repro.config import ShardingConfig
from repro.core.metadata import PartitionMap, TablePartitioning
from repro.core.platform import DirectGateway, HyperQ
from repro.core.sharded import ShardedBackend
from repro.core.xformer.distributed import extract_plan
from repro.errors import BackendSqlError, DeadlineExceededError
from repro.qlang.interp import Interpreter
from repro.sqlengine.engine import Engine
from repro.wlm import WorkloadManager
from repro.wlm.deadline import Deadline, request_scope
from repro.wlm.retry import ResilientBackend
from repro.workload.loader import qtable_to_columns

MARKET_SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT`IBM`GOOG;
            Price:100.0 50.0 101.0 30.0 51.0 99.5;
            Size:10 20 30 40 50 60);
ratings: ([Symbol:`GOOG`IBM`MSFT] Rating:`buy`hold`sell)
"""


def market_partition_map(shard_count: int) -> PartitionMap:
    return PartitionMap(shard_count).hash_table("trades", "Symbol")


def build_sharded(
    shard_count=2,
    config=None,
    wlm=None,
    replicas=False,
    children=None,
    replica_children=None,
):
    children = children or [
        DirectGateway(Engine()) for __ in range(shard_count)
    ]
    if replicas and replica_children is None:
        replica_children = [
            DirectGateway(Engine()) for __ in range(shard_count)
        ]
    backend = ShardedBackend(
        children,
        market_partition_map(shard_count),
        config=config,
        wlm=wlm,
        replicas=replica_children,
    )
    platform = HyperQ(backend=backend)
    interp = Interpreter()
    interp.eval_text(MARKET_SOURCE)
    for name in ("trades", "ratings"):
        keys, columns, rows = qtable_to_columns(interp.get_global(name))
        backend.load_table(name, columns, rows)
        if keys:
            platform.mdi.annotate_keys(name, keys)
    return platform, backend


@pytest.fixture()
def sharded():
    platform, backend = build_sharded(2)
    yield platform, backend
    backend.close()


def run_plan(platform, q_text):
    """Translate+execute one statement; return (value, plan dict|None)."""
    session = platform.create_session()
    try:
        outcome = session.run(q_text)
    finally:
        session.close()
    plans = [
        plan
        for plan, __ in (extract_plan(s) for s in outcome.sql_statements)
        if plan is not None
    ]
    return outcome.value, (plans[-1] if plans else None)


class TestPartitionMap:
    def test_hash_routing_is_stable_and_crc32_based(self):
        spec = TablePartitioning("t", "k")
        assert spec.shard_for("GOOG", 4) == zlib.crc32(b"GOOG") % 4
        assert spec.shard_for("GOOG", 4) == spec.shard_for("GOOG", 4)

    def test_null_keys_go_to_shard_zero(self):
        spec = TablePartitioning("t", "k")
        assert spec.shard_for(None, 8) == 0

    def test_range_routing_uses_bounds(self):
        spec = TablePartitioning("t", "k", strategy="range", bounds=(10, 20))
        assert spec.shard_for(5, 3) == 0
        assert spec.shard_for(10, 3) == 1
        assert spec.shard_for(25, 3) == 2

    def test_fingerprint_changes_with_topology(self):
        two = market_partition_map(2)
        four = market_partition_map(4)
        assert two.fingerprint() != four.fingerprint()
        other = PartitionMap(2).hash_table("trades", "Price")
        assert two.fingerprint() != other.fingerprint()

    def test_lookup_and_membership(self):
        pmap = market_partition_map(2)
        assert pmap.is_partitioned("trades")
        assert not pmap.is_partitioned("ratings")
        assert pmap.lookup("trades").key == "Symbol"


class TestPlanModes:
    def test_replicated_only_query_runs_single(self, sharded):
        platform, __ = sharded
        value, plan = run_plan(platform, "select from ratings")
        assert plan is not None and plan["mode"] == "single"
        assert len(value) == 3

    def test_point_lookup_routes_to_one_shard(self, sharded):
        platform, __ = sharded
        value, plan = run_plan(
            platform, "select from trades where Symbol = `GOOG"
        )
        assert plan is not None and plan["mode"] == "single"
        assert plan["shard"] == zlib.crc32(b"GOOG") % 2
        assert len(value) == 3

    def test_local_scan_scatters_with_ordcol_merge(self, sharded):
        platform, __ = sharded
        value, plan = run_plan(platform, "select from trades where Size > 15")
        assert plan is not None and plan["mode"] == "scatter"
        assert sorted(plan["targets"]) == [0, 1]
        assert plan["merge_keys"][-1][0] == "ordcol"
        assert list(value.column("Size").items) == [20, 30, 40, 50, 60]

    def test_group_aggregate_decomposes_into_partials(self, sharded):
        platform, __ = sharded
        value, plan = run_plan(
            platform, "select total: sum Size, mean: avg Price by Symbol from trades"
        )
        assert plan is not None and plan["mode"] == "partial"
        partial_sql = plan["tasks"][0]["sql"]
        assert "sum_exact" in partial_sql  # float sums merge exactly
        assert "hq_partials" in plan["merge_sql"]
        assert list(value.value.column("total").items) == [100, 70, 40]

    def test_union_of_disjoint_point_lookups_keeps_both_shards(self, sharded):
        # GOOG hashes to shard 0 and IBM to shard 1: intersecting both
        # branches' filter constraints into one global target set would
        # be empty (coerced to one shard) and silently drop a branch —
        # each gather task must derive targets from its own subtree
        platform, __ = sharded
        value, plan = run_plan(
            platform,
            "(select from trades where Symbol = `GOOG) uj"
            " (select from trades where Symbol = `IBM)",
        )
        assert plan is not None and plan["mode"] == "gather"
        task_targets = sorted(tuple(t["targets"]) for t in plan["tasks"])
        assert task_targets == [(0,), (1,)]
        assert list(value.column("Symbol").items) == [
            "GOOG", "GOOG", "GOOG", "IBM", "IBM"
        ]

    def test_join_gathers_the_unfiltered_side_from_every_shard(self, sharded):
        # non-co-partitioned join: the filtered side pins shard 0, but
        # the unfiltered side's rows live on every shard and must not
        # inherit the sibling subtree's constraint
        platform, __ = sharded
        value, plan = run_plan(
            platform,
            "ej[`Size; select Size, Sym:Symbol from trades"
            " where Symbol = `GOOG; select Size, Price from trades]",
        )
        assert plan is not None and plan["mode"] == "gather"
        task_targets = sorted(tuple(t["targets"]) for t in plan["tasks"])
        assert task_targets == [(0,), (0, 1)]
        assert len(value) == 3

    def test_window_not_partitioned_by_key_is_not_scattered(self, sharded):
        # running sums over the whole table cross shard boundaries: the
        # planner must not claim shard-locality for them
        platform, __ = sharded
        value, plan = run_plan(
            platform, "update cum: sums Size from trades"
        )
        assert plan is None or plan["mode"] in ("gather", "partial")
        assert list(value.column("cum").items) == [10, 30, 60, 100, 150, 210]


class TestShardedBackend:
    def test_route_rows_partitions_and_replicates(self, sharded):
        __, backend = sharded
        spec = backend.partition_map.lookup("trades")
        interp = Interpreter()
        interp.eval_text(MARKET_SOURCE)
        keys, columns, rows = qtable_to_columns(interp.get_global("trades"))
        buckets = backend.route_rows("trades", columns, rows)
        assert sum(len(b) for b in buckets) == len(rows)
        key_index = [c.name for c in columns].index("Symbol")
        for shard, bucket in enumerate(buckets):
            assert all(
                spec.shard_for(r[key_index], 2) == shard for r in bucket
            )
        # unpartitioned tables replicate whole
        __, rcolumns, rrows = qtable_to_columns(interp.get_global("ratings"))
        rbuckets = backend.route_rows("ratings", rcolumns, rrows)
        assert all(len(b) == len(rrows) for b in rbuckets)

    def test_catalog_version_is_sum_of_children(self, sharded):
        __, backend = sharded
        before = backend.catalog_version()
        backend.run_sql("CREATE TABLE bump_one (x BIGINT)")
        # the broadcast DDL bumps every shard, so the summed version
        # moves by at least the shard count
        assert backend.catalog_version() >= before + 2

    def test_wlm_does_not_rewrap_sharded_backends(self, sharded):
        __, backend = sharded
        assert WorkloadManager().wrap_backend(backend) is backend

    def test_children_are_individually_resilient(self, sharded):
        __, backend = sharded
        names = set()
        for shard in backend._shards:
            assert isinstance(shard.primary, ResilientBackend)
            names.add(shard.primary.breaker.name)
        assert names == {"shard0", "shard1"}

    def test_shard_snapshot_reports_health(self, sharded):
        platform, backend = sharded
        platform.q("select from trades where Size > 15")
        rows = backend.shard_snapshot()
        assert [r["shard"] for r in rows] == [0, 1]
        assert all(r["state"] == "closed" for r in rows)
        assert sum(r["queries"] for r in rows) >= 2  # the scatter fanout

    def test_shards_admin_command(self, sharded):
        platform, __ = sharded
        platform.q("select from trades where Size > 15")
        table = platform.q("shards[]")
        assert list(table.column("shard").items) == [0, 1]
        assert sum(table.column("queries").items) >= 2

    def test_unsharded_platform_answers_shards_with_empty_table(self):
        platform = HyperQ()
        table = platform.q("shards[]")
        assert len(table) == 0


class TestUnplannedStatements:
    def test_catalog_probes_go_to_one_shard(self, sharded):
        __, backend = sharded
        result = backend.run_sql(
            "SELECT table_schema, column_name, data_type "
            "FROM information_schema.columns WHERE table_name = 'trades' "
            "ORDER BY ordinal_position"
        )
        assert len(result.rows) > 0

    def test_reads_over_partitioned_tables_fall_back_to_mirror(self, sharded):
        __, backend = sharded
        result = backend.run_sql(
            'SELECT "Symbol", "Size" FROM "trades" ORDER BY "ordcol"'
        )
        assert [r[1] for r in result.rows] == [10, 20, 30, 40, 50, 60]

    def test_writes_not_touching_partitioned_tables_broadcast(self, sharded):
        __, backend = sharded
        backend.run_sql("CREATE TABLE side_note (x BIGINT)")
        for shard in backend._shards:
            result = shard.primary.run_sql("SELECT count(*) FROM side_note")
            assert result.rows[0][0] == 0

    def test_mirror_sees_broadcast_dml_writes(self, sharded):
        # DML on a replicated table moves no catalog version, so the
        # mirror cannot rely on version checks alone: a broadcast write
        # must invalidate it or reads keep serving pre-write copies
        __, backend = sharded
        join = (
            'SELECT count(*) FROM "trades" t JOIN "ratings" r '
            'ON t."Symbol" = r."Symbol"'
        )
        assert backend.run_sql(join).rows[0][0] == 6
        backend.run_sql('DELETE FROM "ratings" WHERE "Symbol" = \'GOOG\'')
        assert backend.run_sql(join).rows[0][0] == 3

    def test_insert_into_partitioned_table_is_rejected(self, sharded):
        __, backend = sharded
        with pytest.raises(BackendSqlError):
            backend.run_sql('INSERT INTO "trades" VALUES (1)')

    def test_ctas_over_partitioned_input_replicates_the_result(self, sharded):
        __, backend = sharded
        backend.run_sql(
            'CREATE TABLE big_trades AS SELECT * FROM "trades" '
            'WHERE "Size" > 25'
        )
        for shard in backend._shards:
            result = shard.primary.run_sql(
                'SELECT count(*) FROM big_trades'
            )
            assert result.rows[0][0] == 4


class _SlowGateway(DirectGateway):
    """A gateway with a settable pre-execution delay."""

    def __init__(self, engine):
        super().__init__(engine)
        self.delay = 0.0
        self.calls = 0

    def run_sql(self, sql):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return super().run_sql(sql)


class TestHedgingAndDeadlines:
    def test_slow_primary_is_hedged_to_replica(self):
        children = [_SlowGateway(Engine()) for __ in range(2)]
        replicas = [_SlowGateway(Engine()) for __ in range(2)]
        platform, backend = build_sharded(
            2,
            config=ShardingConfig(hedge_delay=0.02),
            children=children,
            replica_children=replicas,
            replicas=True,
        )
        try:
            children[1].delay = 0.5  # shard 1 primary stalls
            result = backend.run_sql(
                '/*hq-shard:v1 {"mode":"scatter","targets":[0,1],'
                '"sql":"SELECT \\"Size\\", \\"ordcol\\" FROM \\"trades\\"",'
                '"columns":[["Size","bigint",false],["ordcol","bigint",true]],'
                '"merge_keys":[["ordcol",false]]}*/ignored'
            )
            assert [r[0] for r in result.rows] == [10, 20, 30, 40, 50, 60]
            snapshot = backend.shard_snapshot()
            assert snapshot[1]["hedges"] == 1
            assert replicas[1].calls >= 1
        finally:
            backend.close()

    def test_expired_deadline_names_the_laggard_shard(self):
        children = [_SlowGateway(Engine()) for __ in range(2)]
        platform, backend = build_sharded(
            2, config=ShardingConfig(hedge_delay=0.0), children=children
        )
        try:
            children[0].delay = 1.0
            children[1].delay = 1.0
            with request_scope(deadline=Deadline.after(0.05)):
                with pytest.raises(DeadlineExceededError) as excinfo:
                    backend.run_sql('SELECT * FROM "trades"')
            assert "shard" in str(excinfo.value)
        finally:
            backend.close()

    def test_deadline_propagates_into_shard_workers(self):
        children = [_SlowGateway(Engine()) for __ in range(2)]
        platform, backend = build_sharded(2, children=children)
        try:
            seen = []

            original = DirectGateway.run_sql

            def spy(self, sql):
                from repro.wlm.deadline import current_deadline
                seen.append(current_deadline())
                return original(self, sql)

            children[0].__class__.run_sql = spy
            try:
                with request_scope(deadline=Deadline.after(30.0)):
                    backend.run_sql('SELECT count(*) FROM "ratings"')
            finally:
                children[0].__class__.run_sql = original
            assert seen and all(d is not None for d in seen)
        finally:
            backend.close()


class TestTopologyCacheKey:
    def test_translations_do_not_leak_across_topologies(self):
        platform2, backend2 = build_sharded(2)
        platform4, backend4 = build_sharded(4)
        try:
            q = "select from trades where Size > 15"
            __, plan2 = run_plan(platform2, q)
            __, plan4 = run_plan(platform4, q)
            assert sorted(plan2["targets"]) == [0, 1]
            assert sorted(plan4["targets"]) == [0, 1, 2, 3]
        finally:
            backend2.close()
            backend4.close()

    def test_partition_fingerprint_feeds_the_cache_key(self):
        platform, backend = build_sharded(2)
        try:
            fingerprint = platform.mdi.partition_fingerprint()
            assert fingerprint != ()
            assert fingerprint[0] == 2  # shard count leads the digest
        finally:
            backend.close()


def test_thread_safety_of_concurrent_scatters(sharded):
    platform, __ = sharded
    errors = []

    def worker():
        try:
            for __ in range(5):
                value = platform.q("select total: sum Size by Symbol from trades")
                assert list(value.value.column("total").items) == [100, 70, 40]
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
