"""Tests for the session layer: query life cycle, scopes, materialization."""

import pytest

from repro.config import HyperQConfig, MaterializationMode
from repro.core.scopes import VarKind
from repro.errors import QNameError, QNotSupportedError
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom, QTable, QVector


class TestQueryLifeCycle:
    def test_select_returns_qtable(self, session):
        result = session.execute("select from trades")
        assert isinstance(result, QTable)
        assert len(result) == 4

    def test_internal_columns_hidden(self, session):
        result = session.execute("select from trades")
        assert "ordcol" not in result.columns

    def test_scalar_statement(self, session):
        assert session.execute("1+2") == QAtom(QType.LONG, 3)

    def test_exec_returns_vector(self, session):
        result = session.execute("exec Size from trades")
        assert isinstance(result, QVector)

    def test_timings_recorded(self, session):
        outcome = session.run("select from trades where Price > 50")
        t = outcome.timings
        assert t.parse > 0
        assert t.algebrize > 0
        assert t.serialize > 0
        assert t.total < 1.0  # translation is cheap

    def test_rule_applications_reported(self, session):
        outcome = session.run("select Price from trades where Symbol=`GOOG")
        assert outcome.rule_applications.get("two_valued_logic", 0) >= 1
        assert outcome.rule_applications.get("column_pruning", 0) >= 1

    def test_translate_only_produces_sql_without_execution(self, session):
        outcome = session.translate("select from trades where Price > 50")
        assert outcome.value is None
        assert len(outcome.sql_statements) == 1
        assert "SELECT" in outcome.sql_statements[0]

    def test_translated_sql_quotes_case_sensitive_names(self, session):
        outcome = session.translate("select Price from trades")
        assert '"Price"' in outcome.sql_statements[0]

    def test_two_valued_logic_in_emitted_sql(self, session):
        outcome = session.translate("select from trades where Symbol=`GOOG")
        assert "IS NOT DISTINCT FROM" in outcome.sql_statements[0]

    def test_final_order_by_in_emitted_sql(self, session):
        outcome = session.translate("select Price from trades")
        assert 'ORDER BY "ordcol"' in outcome.sql_statements[0]


class TestVariables:
    def test_scalar_assignment_stays_in_variable_store(self, session):
        session.execute("x: 42")
        definition = session.session_scope.lookup("x")
        assert definition.kind == VarKind.SCALAR
        assert session.execute("x + 1") == QAtom(QType.LONG, 43)

    def test_scalar_used_in_where(self, session):
        session.execute("threshold: 60.0")
        result = session.execute("select from trades where Price > threshold")
        assert len(result) == 2

    def test_table_assignment_materializes(self, session):
        session.execute("goog: select from trades where Symbol=`GOOG")
        definition = session.session_scope.lookup("goog")
        assert definition.kind == VarKind.TABLE
        assert definition.relation.startswith("hq_temp_")
        result = session.execute("select from goog")
        assert len(result) == 2

    def test_dynamic_retyping(self, session):
        session.execute("x: 1")
        session.execute("x: select from trades")
        definition = session.session_scope.lookup("x")
        assert definition.kind == VarKind.TABLE

    def test_function_stored_as_text(self, session):
        session.execute("f: {[s] select from trades where Symbol=s}")
        definition = session.session_scope.lookup("f")
        assert definition.kind == VarKind.FUNCTION
        assert definition.source.startswith("{")

    def test_undefined_variable_verbose_error(self, session):
        with pytest.raises(QNameError) as excinfo:
            session.execute("select from missing_table")
        assert "scope" in str(excinfo.value) or "catalog" in str(excinfo.value)


class TestFunctionUnrolling:
    def test_papers_example_3(self, session):
        """The paper's Example 3: function with local table variable."""
        session.execute(
            "f: {[Sym] dt: select Price from trades where Symbol=Sym; "
            ":exec max Price from dt}"
        )
        result = session.execute("f[`GOOG]")
        assert result.value == 101.0

    def test_example_3_generates_temp_table_sql(self, session):
        session.execute(
            "f: {[Sym] dt: select Price from trades where Symbol=Sym; "
            ":exec max Price from dt}"
        )
        outcome = session.run("f[`GOOG]")
        create = [
            s for s in outcome.sql_statements if "CREATE TEMPORARY TABLE" in s
        ]
        assert create, "local table variable must materialize physically"
        assert "IS NOT DISTINCT FROM" in create[0]

    def test_local_variable_does_not_leak(self, session):
        session.execute(
            "f: {[Sym] dt: select from trades where Symbol=Sym; :count select from dt}"
        )
        session.execute("f[`GOOG]")
        with pytest.raises(QNameError):
            session.execute("select from dt")

    def test_function_redefinition_wins(self, session):
        session.execute("f: {[s] 1}")
        session.execute("f: {[s] 2}")
        assert session.execute("f[`x]").value == 2

    def test_scalar_param_shadows_session_variable(self, session):
        session.execute("v: 100")
        session.execute("g: {[v] select from trades where Size=v}")
        result = session.execute("g[20]")
        assert len(result) == 1


class TestSessionScopes:
    def test_promotion_on_close(self, hyperq):
        s1 = hyperq.create_session()
        s1.execute("promoted_var: 7")
        s1.close()
        s2 = hyperq.create_session()
        assert s2.execute("promoted_var") == QAtom(QType.LONG, 7)
        s2.close()

    def test_promoted_table_survives_sessions(self, hyperq):
        s1 = hyperq.create_session()
        s1.execute("big: select from trades where Size > 15")
        s1.close()
        s2 = hyperq.create_session()
        result = s2.execute("count select from big")
        assert result.value == 3
        s2.close()

    def test_temp_tables_dropped_on_close(self, hyperq):
        s1 = hyperq.create_session()
        s1.execute("tmp_only: select from trades")
        relation = s1.session_scope.lookup("tmp_only").relation
        s1.close()
        # the temp relation itself is gone (promoted copy lives elsewhere)
        assert relation not in hyperq.engine.catalog.temp_tables

    def test_close_is_idempotent(self, session):
        session.execute("x: 1")
        first = session.close()
        assert "x" in first
        assert session.close() == []

    def test_close_promotes_temp_table_to_hq_global_relation(self, hyperq):
        """Figure 3: a session temp table promoted at close becomes an
        ``hq_global_<name>`` permanent relation in the backend."""
        s1 = hyperq.create_session()
        s1.execute("promo: select from trades where Price > 50")
        temp_relation = s1.session_scope.lookup("promo").relation
        assert temp_relation.startswith("hq_temp_")
        promoted = s1.close()
        assert "promo" in promoted

        # the server-scope definition now points at the permanent relation
        definition = hyperq.server_scope.lookup("promo")
        assert definition.relation == "hq_global_promo"
        assert definition.meta is not None
        assert definition.meta.name == "hq_global_promo"
        assert definition.meta.schema == "public"

        # permanent relation exists in the backend with the rows; the
        # pg_temp relation it was copied from is gone
        rows = hyperq.engine.execute(
            'SELECT count(*) FROM "hq_global_promo"'
        ).scalar()
        assert rows == 2
        assert temp_relation not in hyperq.engine.catalog.temp_tables

    def test_promoted_relation_visible_in_new_session_sql(self, hyperq):
        s1 = hyperq.create_session()
        s1.execute("keepme: select Symbol, Price from trades")
        s1.close()
        s2 = hyperq.create_session()
        outcome = s2.run("select from keepme")
        assert '"hq_global_keepme"' in outcome.sql_statements[0]
        assert len(outcome.value) == 4
        s2.close()


class TestMaterializationModes:
    def test_logical_mode_creates_view(self, hyperq):
        config = HyperQConfig(materialization=MaterializationMode.LOGICAL)
        session = hyperq.create_session()
        session.config = config
        session.materializer.config = config
        session.execute("v: select from trades where Price > 50")
        definition = session.session_scope.lookup("v")
        assert definition.kind == VarKind.VIEW
        assert definition.relation.startswith("hq_view_")
        assert len(session.execute("select from v")) == 2
        session.close()

    def test_function_locals_always_physical(self, hyperq):
        config = HyperQConfig(materialization=MaterializationMode.LOGICAL)
        session = hyperq.create_session()
        session.config = config
        session.materializer.config = config
        session.execute(
            "f: {[s] dt: select from trades where Symbol=s; "
            ":count select from dt}"
        )
        outcome = session.run("f[`GOOG]")
        assert any("CREATE TEMPORARY TABLE" in s for s in outcome.sql_statements)
        session.close()


class TestUnsupportedSurface:
    def test_compound_assignment_rejected(self, session):
        session.execute("x: 1")
        with pytest.raises(QNotSupportedError):
            session.execute("x+:1")

    def test_indexed_amend_rejected(self, session):
        session.execute("x: 1")
        with pytest.raises(QNotSupportedError):
            session.execute("x[0]: 2")
