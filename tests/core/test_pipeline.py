"""Tests for the pass pipeline, TranslationUnit IR, and translation cache."""

import pytest

from repro.config import (
    HyperQConfig,
    TranslationCacheConfig,
    XformerConfig,
)
from repro.core.pipeline import (
    Pass,
    TranslationCache,
    TranslationPipeline,
    normalize_q_source,
    scope_fingerprint,
)
from repro.core.xformer.framework import Xformer
from repro.errors import InvariantError, TranslationError
from repro.qlang.parser import parse_expression


@pytest.fixture()
def pipeline(hyperq):
    session = hyperq.create_session()
    return session, session.pipeline


class TestPassManager:
    def test_default_pass_order(self, pipeline):
        # the test env enables analysis (REPRO_ANALYSIS), so the qcheck
        # pass leads the paper's bind -> xform -> serialize order; the
        # distribute pass trails (it annotates the serialized SQL)
        __, pl = pipeline
        assert pl.pass_names == [
            "analyze", "bind", "xform", "serialize", "distribute",
        ]

    def test_translate_fills_the_unit(self, pipeline):
        session, pl = pipeline
        unit = pl.translate(
            parse_expression("select from trades where Price > 50"),
            session.session_scope,
        )
        assert unit.sql is not None and "SELECT" in unit.sql
        assert unit.shape == "table"
        assert unit.bound is not None
        assert [s.name for s in unit.stages] == [
            "analyze", "bind", "xform", "serialize", "distribute",
        ]
        assert all(s.seconds >= 0.0 for s in unit.stages)

    def test_unit_records_rule_applications(self, pipeline):
        session, pl = pipeline
        unit = pl.translate(
            parse_expression("select Price from trades where Symbol=`GOOG"),
            session.session_scope,
        )
        assert unit.rule_applications.get("two_valued_logic", 0) >= 1

    def test_custom_pass_registration_and_order(self, pipeline):
        session, pl = pipeline

        class NotePass(Pass):
            name = "note"
            stage = "optimize"

            def run(self, unit, pipeline):
                unit.diagnostics.append("saw the unit")

        pl.register_pass(NotePass(), after="bind")
        assert pl.pass_names == [
            "analyze", "bind", "note", "xform", "serialize", "distribute",
        ]
        unit = pl.translate(
            parse_expression("select from trades"), session.session_scope
        )
        assert unit.diagnostics == ["saw the unit"]
        assert [s.name for s in unit.stages][2] == "note"

    def test_duplicate_pass_name_rejected(self, pipeline):
        __, pl = pipeline

        class Dup(Pass):
            name = "bind"

        with pytest.raises(TranslationError):
            pl.register_pass(Dup())

    def test_unknown_anchor_rejected(self, pipeline):
        __, pl = pipeline

        class P(Pass):
            name = "p"

        with pytest.raises(TranslationError):
            pl.register_pass(P(), before="no-such-pass")

    def test_to_result_requires_serialize(self, pipeline):
        session, pl = pipeline
        bare = TranslationPipeline(pl.mdi, pl.config, passes=[])
        unit = bare.translate(
            parse_expression("select from trades"), session.session_scope
        )
        with pytest.raises(TranslationError):
            unit.to_result()


class TestNormalizeQSource:
    def test_whitespace_collapses(self):
        assert normalize_q_source("select   from\n  trades") == (
            "select from trades"
        )

    def test_leading_trailing_stripped(self):
        assert normalize_q_source("  1+2  ") == "1+2"

    def test_string_literals_preserved(self):
        a = normalize_q_source('select from t where s="a  b"')
        b = normalize_q_source('select from t where s="a b"')
        assert a != b
        assert '"a  b"' in a

    def test_escaped_quote_inside_string(self):
        text = 'x: "he said \\"hi\\"  there"'
        assert '\\"hi\\"  there' in normalize_q_source(text)

    def test_equivalent_sources_normalize_equal(self):
        assert normalize_q_source("select  from trades ") == (
            normalize_q_source("select from\ttrades")
        )


class TestScopeFingerprint:
    def test_changes_when_variable_defined(self, hyperq):
        session = hyperq.create_session()
        before = scope_fingerprint(session.session_scope)
        session.execute("fp_x: 41")
        after = scope_fingerprint(session.session_scope)
        assert before != after
        session.close()

    def test_scalar_value_participates(self, hyperq):
        session = hyperq.create_session()
        session.execute("fp_y: 1")
        one = scope_fingerprint(session.session_scope)
        session.execute("fp_y: 2")
        two = scope_fingerprint(session.session_scope)
        assert one != two
        session.close()


class TestTranslationCache:
    def test_repeat_statement_hits(self, hyperq):
        session = hyperq.create_session()
        q = "select Price from trades where Symbol=`GOOG"
        cold = session.run(q)
        warm = session.run(q)
        assert cold.cache_hits == 0
        assert warm.cache_hits == 1
        assert warm.sql_statements == cold.sql_statements
        assert warm.value == cold.value
        # cache hits skip the pipeline: no bind/serialize time accrues
        assert warm.timings.algebrize == 0.0
        assert warm.timings.serialize == 0.0
        # rule applications are replayed from the cached entry
        assert warm.rule_applications == cold.rule_applications
        session.close()

    def test_shared_across_sessions(self, hyperq):
        q = "select from trades where Price > 50"
        s1 = hyperq.create_session()
        s1.run(q)
        s1.close()
        s2 = hyperq.create_session()
        warm = s2.run(q)
        assert warm.cache_hits == 1
        s2.close()

    def test_whitespace_variants_share_an_entry(self, hyperq):
        session = hyperq.create_session()
        session.run("select from trades")
        warm = session.run("select   from \n trades")
        assert warm.cache_hits == 1
        session.close()

    def test_invalidated_on_catalog_version_change(self, hyperq):
        session = hyperq.create_session()
        q = "select from trades"
        session.run(q)
        assert session.run(q).cache_hits == 1
        # DDL bumps the engine catalog version -> the key changes
        hyperq.engine.execute("CREATE TABLE cache_bump (x BIGINT)")
        missed = session.run(q)
        assert missed.cache_hits == 0
        # and the re-translation re-primes the cache at the new version
        assert session.run(q).cache_hits == 1
        session.close()

    def test_invalidated_on_scope_change(self, hyperq):
        session = hyperq.create_session()
        q = "select from trades where Price > threshold"
        session.execute("threshold: 50")
        first = session.run(q)
        session.execute("threshold: 100")
        second = session.run(q)
        assert second.cache_hits == 0
        assert first.sql_statements != second.sql_statements
        session.close()

    def test_xformer_config_participates_in_key(self, hyperq):
        session = hyperq.create_session()
        q = "select Price from trades where Symbol=`GOOG"
        session.run(q)
        session.xformer = Xformer(XformerConfig(two_valued_logic=False))
        missed = session.run(q)
        assert missed.cache_hits == 0
        assert "IS NOT DISTINCT FROM" not in missed.sql_statements[0]
        session.close()

    def test_side_effecting_statements_not_cached(self, hyperq):
        session = hyperq.create_session()
        session.execute("sv: 1")
        assert len(session.translation_cache) == 0
        session.run("sv: 2")
        assert len(session.translation_cache) == 0
        session.close()

    def test_admin_commands_not_cached(self, hyperq):
        session = hyperq.create_session()
        session.execute("tables[]")
        assert len(session.translation_cache) == 0
        session.close()

    def test_disabled_cache_never_hits(self, hyperq):
        config = HyperQConfig(
            translation_cache=TranslationCacheConfig(enabled=False)
        )
        session = hyperq.create_session()
        session.translation_cache = TranslationCache(config.translation_cache)
        q = "select from trades"
        session.run(q)
        assert session.run(q).cache_hits == 0
        session.close()

    def test_lru_eviction_bounds_entries(self, hyperq):
        session = hyperq.create_session()
        session.translation_cache = TranslationCache(
            TranslationCacheConfig(max_entries=2)
        )
        session.run("select from trades")
        session.run("select Price from trades")
        session.run("select Size from trades")
        assert len(session.translation_cache) == 2
        # the oldest entry was evicted: translating it again misses
        assert session.run("select from trades").cache_hits == 0
        session.close()

    def test_hit_miss_counters_exported(self, hyperq):
        from repro.core.pipeline import (
            TRANSLATION_CACHE_HITS,
            TRANSLATION_CACHE_MISSES,
        )

        hits_before = TRANSLATION_CACHE_HITS.value()
        misses_before = TRANSLATION_CACHE_MISSES.value()
        session = hyperq.create_session()
        q = "select Size from trades where Price > 99"
        session.run(q)
        session.run(q)
        session.close()
        assert TRANSLATION_CACHE_HITS.value() == hits_before + 1
        assert TRANSLATION_CACHE_MISSES.value() >= misses_before + 1

    def test_translate_mode_also_served_from_cache(self, hyperq):
        session = hyperq.create_session()
        q = "select from trades where Size > 15"
        executed = session.run(q)
        translated = session.translate(q)
        assert translated.cache_hits == 1
        assert translated.value is None
        assert translated.sql_statements == executed.sql_statements
        session.close()


class TestInvariantChecking:
    """The pipeline verifies XTRA invariants after every pass and blames
    the pass that produced the broken tree (not a later stage)."""

    def _corrupt_pass(self):
        from repro.core.xtra import scalars as sc
        from repro.core.xtra.ops import XtraFilter

        class CorruptPass(Pass):
            """Deliberately wraps the tree in a filter on a column that
            no input produces — a stand-in for a buggy rewrite rule."""

            name = "corrupt"
            stage = "optimize"

            def run(self, unit, pipeline):
                unit.bound.op = XtraFilter(
                    unit.bound.op,
                    sc.SCmp(
                        "=",
                        sc.SColRef("no_such_column"),
                        sc.SConst(1, None),
                    ),
                )

        return CorruptPass()

    def test_mutated_pass_is_caught_and_named(self, pipeline):
        session, pl = pipeline
        pl.register_pass(self._corrupt_pass(), after="xform")
        with pytest.raises(InvariantError) as excinfo:
            pl.translate(
                parse_expression("select from trades"),
                session.session_scope,
            )
        # attribution: the corrupting pass, not serialize
        assert excinfo.value.pass_name == "corrupt"
        assert "corrupt" in str(excinfo.value)
        assert "serialize" not in str(excinfo.value)
        codes = {v.code for v in excinfo.value.violations}
        assert "XI003" in codes  # unresolvable column reference

    def test_violating_pass_recorded_on_trace_span(self, hyperq):
        from repro.obs import tracing

        session = hyperq.create_session()
        session.pipeline.register_pass(self._corrupt_pass(), after="xform")
        with tracing.span("test.root") as root:
            with pytest.raises(InvariantError):
                session.pipeline.translate(
                    parse_expression("select from trades"),
                    session.session_scope,
                )
        spans = [s for s in root.children if s.name == "pass.corrupt"]
        assert spans and spans[0].attrs.get("violating_pass") == "corrupt"
        assert spans[0].attrs.get("invariant_violations", 0) >= 1
        session.close()

    def test_clean_translations_pass_the_checker(self, pipeline):
        session, pl = pipeline
        unit = pl.translate(
            parse_expression("select Price from trades where Symbol=`GOOG"),
            session.session_scope,
        )
        assert unit.sql is not None

    def test_checks_disabled_ship_broken_sql_to_the_backend(self, hyperq):
        """Without the checker the corrupt tree serializes fine — the
        bogus column reference only explodes at the backend.  This is
        the late-failure mode the invariant checker exists to prevent."""
        from repro.config import AnalysisConfig, HyperQConfig

        config = HyperQConfig(analysis=AnalysisConfig(enabled=False))
        pl = TranslationPipeline(hyperq.mdi, config)
        pl.register_pass(self._corrupt_pass(), after="xform")
        session = hyperq.create_session()
        unit = pl.translate(
            parse_expression("select from trades"),
            session.session_scope,
        )
        assert "no_such_column" in unit.sql
        session.close()
