"""Unit tests for the Xformer rules (paper Section 3.3)."""

import pytest

from repro.config import XformerConfig
from repro.core.algebrizer.binder import Binder
from repro.core.xformer.framework import Xformer
from repro.core.xformer.rules import default_rules
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraSort,
    walk,
)
from repro.qlang.parser import parse_expression


@pytest.fixture()
def binder(hyperq):
    session = hyperq.create_session()
    return Binder(session.mdi, session.session_scope, hyperq.config)


def bound_op(binder, text):
    return binder.bind(parse_expression(text)).op


def transformed(binder, text, config=None):
    op = bound_op(binder, text)
    xformer = Xformer(config or XformerConfig())
    return xformer.transform(op)


def scalars_in(op):
    out = []

    def collect(scalar):
        out.append(scalar)
        for child in scalar.children():
            collect(child)

    for node in walk(op):
        if isinstance(node, XtraFilter):
            collect(node.predicate)
        if hasattr(node, "projections"):
            for __, s in node.projections:
                collect(s)
        if hasattr(node, "condition") and node.condition is not None:
            collect(node.condition)
    return out


class TestTwoValuedLogic:
    def test_nullable_equality_upgraded(self, binder):
        op, ctx = transformed(binder, "select from trades where Symbol=`GOOG")
        cmps = [s for s in scalars_in(op) if isinstance(s, sc.SCmp)]
        assert any(c.null_safe for c in cmps)
        assert ctx.applications.get("two_valued_logic", 0) >= 1

    def test_join_condition_upgraded(self, binder):
        op, __ = transformed(binder, "aj[`Symbol`Time; trades; quotes]")
        cmps = [
            s for s in scalars_in(op)
            if isinstance(s, sc.SCmp) and s.op == "="
        ]
        assert cmps and all(c.null_safe for c in cmps)

    def test_range_comparisons_not_touched(self, binder):
        op, __ = transformed(binder, "select from trades where Price>40")
        cmps = [s for s in scalars_in(op) if isinstance(s, sc.SCmp)]
        assert all(not c.null_safe for c in cmps if c.op == ">")

    def test_rule_can_be_disabled(self, binder):
        config = XformerConfig(two_valued_logic=False)
        op, ctx = transformed(
            binder, "select from trades where Symbol=`GOOG", config
        )
        cmps = [s for s in scalars_in(op) if isinstance(s, sc.SCmp)]
        assert all(not c.null_safe for c in cmps)


class TestColumnPruning:
    def test_unused_columns_pruned_from_get(self, binder):
        op, ctx = transformed(binder, "select Price from trades")
        get = [n for n in walk(op) if isinstance(n, XtraGet)][0]
        names = {c.name for c in get.output}
        assert "Size" not in names
        assert "Price" in names
        assert ctx.applications.get("column_pruning", 0) >= 1

    def test_filter_columns_kept(self, binder):
        op, __ = transformed(
            binder, "select Price from trades where Symbol=`GOOG"
        )
        get = [n for n in walk(op) if isinstance(n, XtraGet)][0]
        assert "Symbol" in {c.name for c in get.output}

    def test_pruning_disabled_keeps_all(self, binder):
        config = XformerConfig(column_pruning=False)
        op, __ = transformed(binder, "select Price from trades", config)
        get = [n for n in walk(op) if isinstance(n, XtraGet)][0]
        assert "Size" in {c.name for c in get.output}

    def test_select_star_keeps_everything(self, binder):
        op, __ = transformed(binder, "select from trades")
        get = [n for n in walk(op) if isinstance(n, XtraGet)][0]
        assert {c.name for c in get.output} >= {
            "Symbol", "Time", "Price", "Size", "ordcol",
        }


class TestOrderRules:
    def test_final_plan_is_sorted(self, binder):
        op, __ = transformed(binder, "select Price from trades")
        assert isinstance(op, XtraSort)

    def test_scalar_agg_not_wrapped_in_extra_sort(self, binder):
        # the Project adds a constant ordcol; sorting by it is trivial
        op, __ = transformed(binder, "select max Price from trades")
        assert isinstance(op, XtraSort)

    def test_order_elision_under_scalar_agg(self, binder):
        # aggregation over a sorted table: the inner sort is dropped
        op, ctx = transformed(binder, "avg exec Price from `Price xasc trades")
        aggs = [n for n in walk(op) if isinstance(n, XtraGroupAgg)]
        assert aggs
        assert not any(
            isinstance(child, XtraSort)
            for agg in aggs
            for child in agg.children()
        )
        assert ctx.applications.get("order_elision", 0) >= 1

    def test_order_sensitive_agg_keeps_sort(self, binder):
        op, __ = transformed(binder, "last exec Price from `Price xasc trades")
        aggs = [n for n in walk(op) if isinstance(n, XtraGroupAgg)]
        assert aggs
        assert any(
            isinstance(node, XtraSort)
            for agg in aggs
            for node in walk(agg.child)
        )


class TestFilterMerge:
    def test_adjacent_filters_merged(self, binder):
        op, ctx = transformed(
            binder, "select from trades where Price>40, Size>15, Symbol=`GOOG"
        )
        filters = [n for n in walk(op) if isinstance(n, XtraFilter)]
        assert len(filters) == 1
        assert ctx.applications.get("filter_merge", 0) >= 2

    def test_merged_predicate_is_conjunction(self, binder):
        op, __ = transformed(
            binder, "select from trades where Price>40, Size>15"
        )
        predicate = [n for n in walk(op) if isinstance(n, XtraFilter)][0].predicate
        assert isinstance(predicate, sc.SBool)
        assert predicate.op == "AND"

    def test_disabled_keeps_chain(self, binder):
        config = XformerConfig(filter_merge=False)
        op, __ = transformed(
            binder, "select from trades where Price>40, Size>15", config
        )
        filters = [n for n in walk(op) if isinstance(n, XtraFilter)]
        assert len(filters) == 2

    def test_merge_shrinks_sql(self, binder, hyperq):
        from repro.config import HyperQConfig

        merged = hyperq.translate(
            "select Price from trades where Price>40, Size>15, Size<100"
        ).sql_statements[0]
        session = hyperq.create_session()
        session.config = HyperQConfig(
            xformer=XformerConfig(filter_merge=False)
        )
        session.xformer = type(session.xformer)(session.config.xformer)
        unmerged = session.translate(
            "select Price from trades where Price>40, Size>15, Size<100"
        ).sql_statements[0]
        session.close()
        assert len(merged) < len(unmerged)


class TestConstantFolding:
    def test_literal_arith_folded(self, binder):
        op, ctx = transformed(binder, "select p: Price * 2 + 3 from trades")
        # 2+3 is not foldable here (right-to-left gives Price*(2+3))
        consts = [
            s for s in scalars_in(op)
            if isinstance(s, sc.SConst) and s.value == 5
        ]
        assert consts
        assert ctx.applications.get("constant_folding", 0) >= 1


class TestFramework:
    def test_default_rule_order(self):
        names = [rule.name for rule in default_rules()]
        assert names.index("two_valued_logic") < names.index("column_pruning")
        assert names[-1] == "order_injection"

    def test_each_rule_declares_purpose(self):
        purposes = {rule.purpose for rule in default_rules()}
        assert purposes >= {"correctness", "performance", "transparency"}
