"""Fixtures for the caching subsystem: a market platform plus a
call-counting gateway so tests can assert which statements actually
reached the backend."""

import pytest

from repro.core.platform import DirectGateway, HyperQ
from repro.qlang.interp import Interpreter
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source

MARKET_SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Time:09:30:30 09:31:00 09:32:00 09:30:45;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40);
quotes: ([] Symbol:`GOOG`GOOG`IBM;
            Time:09:30:00 09:31:00 09:30:30;
            Bid:99.0 100.5 49.0;
            Ask:99.5 101.0 49.5)
"""

MARKET_TABLES = ["trades", "quotes"]


class CountingGateway(DirectGateway):
    """DirectGateway that records every statement it executes."""

    def __init__(self, engine):
        super().__init__(engine)
        self.statements: list[str] = []

    def run_sql(self, sql):
        self.statements.append(sql)
        return super().run_sql(sql)

    def count(self, fragment: str = "") -> int:
        return sum(1 for s in self.statements if fragment in s)


def make_platform(config=None):
    engine = Engine()
    gateway = CountingGateway(engine)
    hq = HyperQ(engine=engine, backend=gateway, config=config)
    load_q_source(engine, Interpreter(), MARKET_SOURCE, MARKET_TABLES,
                  mdi=hq.mdi)
    return hq, gateway


@pytest.fixture()
def platform():
    hq, gateway = make_platform()
    return hq, gateway


@pytest.fixture()
def session(platform):
    hq, __ = platform
    s = hq.create_session()
    yield s
    s.close()
