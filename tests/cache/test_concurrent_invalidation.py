"""Concurrent DML writers vs. cached readers (docs/CACHING.md).

Writers hammer ``trades`` with inserts while readers repeatedly run
cacheable analytical queries over both ``trades`` and ``quotes``.  The
invariants: after the dust settles, a cached read is indistinguishable
from a fresh recomputation (no stale entry survives its table's last
write), the untouched ``quotes`` results kept hitting, and — under
``REPRO_LOCKCHECK=1`` (the CI lockcheck legs) — the session-teardown
gate in tests/conftest.py fails the run on any CC005 lock-order cycle
across the cache/version-counter/WLM lock stack."""

import threading

from repro.qipc.encode import encode_value

from tests.cache.conftest import make_platform

WRITERS = 3
ROWS_PER_WRITER = 8
READERS = 3
READS_PER_READER = 12

TRADES_Q = "select sum Size by Symbol from trades"
QUOTES_Q = "select max Bid by Symbol from quotes"


def insert_stmt(writer: int, row: int) -> str:
    return (
        f"`trades insert ([] Symbol: enlist `W{writer}; "
        f"Time: enlist 10:00:00; Price: enlist {float(row + 1)}; "
        f"Size: enlist {row + 1})"
    )


class TestConcurrentInvalidation:
    def test_writers_never_leave_stale_reads(self):
        hq, __ = make_platform()
        errors: list[BaseException] = []
        start = threading.Barrier(WRITERS + READERS)

        def writer(index: int):
            session = hq.create_session()
            try:
                start.wait(10.0)
                for row in range(ROWS_PER_WRITER):
                    session.execute(insert_stmt(index, row))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                session.close()

        def reader():
            session = hq.create_session()
            try:
                start.wait(10.0)
                for __ in range(READS_PER_READER):
                    session.execute(TRADES_Q)
                    session.execute(QUOTES_Q)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=writer, args=(i,), name=f"writer-{i}")
            for i in range(WRITERS)
        ] + [
            threading.Thread(target=reader, name=f"reader-{i}")
            for i in range(READERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors, errors

        # every write landed
        total = hq.q("count select from trades")
        assert total.value == 4 + WRITERS * ROWS_PER_WRITER

        # a post-race cached read equals a from-scratch recomputation
        for q in (TRADES_Q, QUOTES_Q):
            cached = encode_value(hq.q(q))
            hq.result_cache.clear()
            assert encode_value(hq.q(q)) == cached, q

        stats = hq.result_cache.snapshot()
        assert stats.hits > 0  # quotes reads (at least) kept hitting
        assert stats.invalidations > 0  # trades writes dropped entries
