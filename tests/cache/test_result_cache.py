"""The semantic result cache: version-keyed invalidation, byte-bounded
LRU, single-flight coalescing, WLM gating, and the ``rcache[]`` admin
command (docs/CACHING.md)."""

import threading

import pytest

from repro.cache import QueryExecutor, ResultCache
from repro.config import HyperQConfig, ResultCacheConfig
from repro.core.pipeline import StageTimings, TranslationResult
from repro.qlang.values import QTable
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType

from tests.cache.conftest import make_platform


def rs(values, name="v"):
    return ResultSet.from_columns(
        [Column(name, SqlType.BIGINT)], [list(values)]
    )


def make_cache(**kwargs) -> ResultCache:
    kwargs.setdefault("sweep_interval", 0.0)  # no background thread
    return ResultCache(ResultCacheConfig(**kwargs))


class TestFillAndFetch:
    def test_roundtrip(self):
        cache = make_cache()
        cache.fill(("k",), ["trades"], rs([1, 2]))
        hit = cache.fetch(("k",))
        assert hit is not None
        assert [r[0] for r in hit.rows] == [1, 2]

    def test_miss_returns_none(self):
        assert make_cache().fetch(("absent",)) is None

    def test_disabled_cache_never_fills(self):
        cache = make_cache(enabled=False)
        cache.fill(("k",), ["trades"], rs([1]))
        assert cache.fetch(("k",)) is None

    def test_hits_are_isolated_views(self):
        """Callers rebind .rows (LIMIT/sort); the payload must not move."""
        cache = make_cache()
        cache.fill(("k",), [], rs([1, 2, 3]))
        first = cache.fetch(("k",))
        first.rows = [(99,)]
        first.column_data[0].append(98)
        second = cache.fetch(("k",))
        assert [r[0] for r in second.rows] == [1, 2, 3]

    def test_fill_copies_the_producer_result(self):
        cache = make_cache()
        live = rs([1, 2])
        cache.fill(("k",), [], live)
        live.column_data[0].append(3)  # backend mutates its rows later
        assert [r[0] for r in cache.fetch(("k",)).rows] == [1, 2]


class TestInvalidation:
    def test_write_drops_only_dependent_entries(self):
        """The headline guarantee: a write to trades must not evict
        results over quotes."""
        cache = make_cache()
        cache.fill(("q-trades",), ["trades"], rs([1]))
        cache.fill(("q-quotes",), ["quotes"], rs([2]))
        cache.fill(("q-join",), ["trades", "quotes"], rs([3]))
        cache.on_write(["trades"])
        assert cache.fetch(("q-trades",)) is None
        assert cache.fetch(("q-join",)) is None
        assert cache.fetch(("q-quotes",)) is not None
        assert cache.stats.invalidations == 2

    def test_clear(self):
        cache = make_cache()
        cache.fill(("k",), ["t"], rs([1]))
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0

    def test_ttl_sweep_retires_expired(self):
        cache = make_cache(ttl_seconds=0.0001)
        cache.fill(("k",), [], rs([1]))
        import time

        time.sleep(0.01)
        assert cache.sweep() == 1
        assert len(cache) == 0


class TestByteLru:
    def test_eviction_is_lru_ordered(self):
        cache = make_cache(max_bytes=1)  # everything over budget
        cache.fill(("a",), [], rs([1]))
        assert len(cache) == 0  # single oversized entry dropped outright

    def test_oldest_evicted_first(self):
        one = rs(list(range(100)))
        nbytes = ResultCache(ResultCacheConfig()).config  # noqa: F841
        cache = make_cache(max_bytes=10_000)
        cache.fill(("a",), [], rs(list(range(100))))
        cache.fill(("b",), [], rs(list(range(100))))
        cache.fetch(("a",))  # a is now most recently used
        for i in range(20):
            cache.fill((f"c{i}",), [], rs(list(range(100))))
        # b (least recently used) must have gone before a
        assert cache.fetch(("b",)) is None
        assert cache.total_bytes <= 10_000
        assert cache.stats.evictions > 0
        assert one is not None

    def test_bytes_accounting_returns_to_zero(self):
        cache = make_cache()
        cache.fill(("a",), ["t"], rs([1, 2, 3]))
        assert cache.total_bytes > 0
        cache.on_write(["t"])
        assert cache.total_bytes == 0


class TestSingleFlight:
    def test_concurrent_requests_coalesce(self):
        cache = make_cache(flight_timeout=5.0)
        release = threading.Event()
        produced = []

        def producer():
            release.wait(5.0)
            produced.append(1)
            return rs([42])

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_execute(("k",), [], producer)
                )
            )
            for __ in range(6)
        ]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(10.0)
        assert len(produced) == 1, "only the leader may execute"
        assert len(results) == 6
        assert all([r[0] for r in res.rows] == [42] for res in results)
        assert cache.stats.coalesced >= 1

    def test_leader_failure_propagates_and_releases_waiters(self):
        cache = make_cache(flight_timeout=5.0)
        calls = []

        def failing_then_ok():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("backend down")
            return rs([7])

        with pytest.raises(RuntimeError):
            cache.get_or_execute(("k",), [], failing_then_ok)
        # the flight is gone: the next requester retries as leader
        result = cache.get_or_execute(("k",), [], failing_then_ok)
        assert [r[0] for r in result.rows] == [7]


class TestSizeAwareAdmission:
    """``min_produce_ms``: productions cheaper than the floor are served
    but never cached — a probe costs as much as re-executing them."""

    def test_cheap_production_skips_the_cache(self):
        cache = make_cache(min_produce_ms=50.0)
        result = cache.get_or_execute(("k",), ["t"], lambda: rs([1]))
        assert [r[0] for r in result.rows] == [1]
        assert cache.fetch(("k",)) is None
        assert cache.stats.skipped_cheap == 1

    def test_expensive_production_is_admitted(self):
        import time

        cache = make_cache(min_produce_ms=1.0)

        def slow():
            time.sleep(0.01)
            return rs([2])

        cache.get_or_execute(("k",), ["t"], slow)
        assert cache.fetch(("k",)) is not None
        assert cache.stats.skipped_cheap == 0

    def test_zero_floor_admits_everything(self):
        cache = make_cache(min_produce_ms=0.0)
        cache.get_or_execute(("k",), ["t"], lambda: rs([3]))
        assert cache.fetch(("k",)) is not None

    def test_skip_count_surfaces_in_rcache_rows(self):
        cache = make_cache(min_produce_ms=50.0)
        cache.get_or_execute(("k",), ["t"], lambda: rs([4]))
        rows = dict(cache.snapshot().as_rows())
        assert rows["skipped_cheap"] == 1


class TestExecutorGating:
    """WLM interaction: only analytical/point_lookup are cacheable;
    materializing and admin statements bypass (and invalidate)."""

    class FakeBackend:
        def __init__(self):
            self.calls = 0

        def run_sql(self, sql):
            self.calls += 1
            return rs([self.calls])

    class FakeMdi:
        def catalog_version(self):
            return 1

        def table_version_vector(self, tables):
            return tuple((t, 0) for t in sorted(set(tables)))

        def partition_fingerprint(self):
            return ()

        def bump_table_version(self, name):
            return 1

    def translation(self, sql="SELECT 1", qclass="analytical", tables=()):
        return TranslationResult(
            sql=sql, shape="table", keys=[], timings=StageTimings(),
            query_class=qclass, tables=list(tables),
        )

    def make_executor(self):
        backend = self.FakeBackend()
        cache = make_cache()
        executor = QueryExecutor(
            backend, self.FakeMdi(), cache, None, HyperQConfig()
        )
        return executor, backend, cache

    def test_analytical_repeats_hit(self):
        executor, backend, cache = self.make_executor()
        t = self.translation(tables=["trades"])
        executor.execute(t)
        executor.execute(t)
        assert backend.calls == 1
        assert cache.stats.hits == 1

    def test_point_lookup_cacheable(self):
        executor, backend, __ = self.make_executor()
        t = self.translation(qclass="point_lookup", tables=["trades"])
        executor.execute(t)
        executor.execute(t)
        assert backend.calls == 1

    def test_materializing_bypasses_and_invalidates(self):
        executor, backend, cache = self.make_executor()
        read = self.translation(tables=["trades"])
        executor.execute(read)
        write = self.translation(
            sql="CREATE TABLE x AS SELECT 1", qclass="materializing",
            tables=["trades"],
        )
        executor.execute(write)
        executor.execute(write)
        assert backend.calls == 3  # never served from cache
        # and the dependent read entry was dropped
        assert cache.stats.invalidations >= 1

    def test_admin_class_bypasses(self):
        executor, backend, cache = self.make_executor()
        t = self.translation(qclass="admin")
        executor.execute(t)
        executor.execute(t)
        assert backend.calls == 2
        assert len(cache) == 0
        assert cache.stats.bypasses == 2

    def test_session_private_relations_never_cached(self):
        executor, backend, cache = self.make_executor()
        t = self.translation(tables=["hq_temp_1"])
        executor.execute(t)
        executor.execute(t)
        assert backend.calls == 2
        assert len(cache) == 0

    def test_run_sql_bumps_versions_and_drops(self):
        executor, backend, cache = self.make_executor()
        read = self.translation(tables=["trades"])
        executor.execute(read)
        assert len(cache) == 1
        executor.run_sql("INSERT INTO trades VALUES (1)",
                         invalidates=["trades"])
        assert len(cache) == 0


class TestEndToEnd:
    def test_repeat_analytical_skips_backend(self):
        hq, gateway = make_platform()
        q = "select sum Size by Symbol from trades"
        first = hq.q(q)
        selects_after_first = gateway.count("SELECT")
        second = hq.q(q)
        assert second == first
        assert gateway.count("SELECT") == selects_after_first
        assert hq.result_cache.snapshot().hits >= 1

    def test_dml_invalidates_only_written_table(self):
        hq, gateway = make_platform()
        trades_q = "select sum Size by Symbol from trades"
        quotes_q = "select max Bid by Symbol from quotes"
        hq.q(trades_q)
        hq.q(quotes_q)
        hq.q(
            "`trades insert ([] Symbol: enlist `Z; Time: enlist 10:00:00; "
            "Price: enlist 1.0; Size: enlist 7)"
        )
        hits_before = hq.result_cache.snapshot().hits
        fresh = hq.q(trades_q).unkey()  # must recompute: trades changed
        assert fresh.column("Size").items != []
        assert "Z" in fresh.column("Symbol").items
        hq.q(quotes_q)  # must still hit: quotes untouched
        assert hq.result_cache.snapshot().hits == hits_before + 1

    def test_ddl_moves_every_key(self):
        hq, gateway = make_platform()
        q = "select sum Size by Symbol from trades"
        hq.q(q)
        hq.engine.execute("CREATE TABLE unrelated (a bigint)")  # DDL
        before = gateway.count("SELECT")
        hq.q(q)  # catalog version moved: stale key unreachable
        assert gateway.count("SELECT") > before

    def test_cache_off_differential(self):
        from repro.qipc.encode import encode_value

        on, __ = make_platform()
        off, __ = make_platform(
            HyperQConfig(result_cache=ResultCacheConfig(enabled=False))
        )
        queries = [
            "select sum Size by Symbol from trades",
            "select from trades where Price > 40.0",
            "exec max Bid from quotes",
        ]
        for q in queries:
            for __ in range(2):  # second round exercises hits on `on`
                assert encode_value(on.q(q)) == encode_value(off.q(q))
        assert on.result_cache.snapshot().hits >= len(queries)

    def test_rcache_admin_command(self, session):
        session.execute("select sum Size by Symbol from trades")
        session.execute("select sum Size by Symbol from trades")
        table = session.execute("rcache[]")
        assert isinstance(table, QTable)
        assert table.columns == ["layer", "stat", "value"]
        stats = dict(
            zip(
                zip(table.column("layer").items, table.column("stat").items),
                table.column("value").items,
            )
        )
        assert stats[("rcache", "hits")] >= 1
        assert ("temptier", "handles") in stats

    def test_rcache_is_billed_as_admin(self):
        hq, __ = make_platform()
        session = hq.create_session()
        try:
            session.execute("rcache[]")
            table = session.execute("wlm[]")
            by_name = dict(
                zip(table.column("name").items,
                    table.column("admitted").items)
            )
            assert by_name.get("admin", 0) >= 1
        finally:
            session.close()
