"""The interactive temp-data tier: serializer-shape matcher, positional
maps with zone pruning, lazy handles, and the materialization fallback
(docs/CACHING.md)."""

from repro.cache.temptier import (
    MatchedQuery,
    PositionalMap,
    match_tier_sql,
)
from repro.config import HyperQConfig, TempTierConfig
from repro.qipc.encode import encode_value

from tests.cache.conftest import make_platform


def scan_sql(relation="hq_temp_1", cols=('"a"', '"b"')):
    inner = f'SELECT {", ".join(cols)} FROM "{relation}"'
    return f'SELECT * FROM ({inner}) AS hq_t1 ORDER BY "ordcol" NULLS FIRST'


def filtered_sql(pred, relation="hq_temp_1"):
    base = f'SELECT "a", "b" FROM "{relation}"'
    inner = f"SELECT * FROM ({base}) AS hq_t1 WHERE ({pred})"
    return f'SELECT * FROM ({inner}) AS hq_t2 ORDER BY "ordcol" NULLS FIRST'


class TestMatcher:
    def test_plain_scan(self):
        matched = match_tier_sql(scan_sql())
        assert matched == MatchedQuery(relation="hq_temp_1")

    def test_count_shape(self):
        sql = (
            'SELECT count(*) AS "count" FROM '
            '(SELECT 1 FROM "hq_temp_3") AS hq_t7'
        )
        matched = match_tier_sql(sql)
        assert matched.relation == "hq_temp_3"
        assert matched.count_only

    def test_single_predicate(self):
        matched = match_tier_sql(filtered_sql('"a" > 5'))
        assert matched.predicates == [("a", ">", 5)]

    def test_and_chain(self):
        matched = match_tier_sql(
            filtered_sql("(\"a\" >= 5) AND (\"b\" IS NOT DISTINCT FROM "
                         "'GOOG'::varchar)")
        )
        assert matched.predicates == [
            ("a", ">=", 5),
            ("b", "IS NOT DISTINCT FROM", "GOOG"),
        ]

    def test_left_nested_and_chain(self):
        matched = match_tier_sql(
            filtered_sql('(("a" > 1) AND ("a" < 9)) AND ("b" <> 4)')
        )
        assert sorted(matched.predicates) == [
            ("a", "<", 9), ("a", ">", 1), ("b", "<>", 4),
        ]

    def test_identity_projection(self):
        base = 'SELECT "a", "b" FROM "hq_temp_1"'
        inner = f'SELECT "b" AS "b" FROM ({base}) AS hq_t1'
        sql = (
            f'SELECT * FROM ({inner}) AS hq_t2 '
            f'ORDER BY "ordcol" NULLS FIRST'
        )
        matched = match_tier_sql(sql)
        assert matched.projection == ["b"]

    def test_rename_is_not_our_shape(self):
        base = 'SELECT "a" FROM "hq_temp_1"'
        inner = f'SELECT "a" AS "z" FROM ({base}) AS hq_t1'
        sql = (
            f'SELECT * FROM ({inner}) AS hq_t2 '
            f'ORDER BY "ordcol" NULLS FIRST'
        )
        assert match_tier_sql(sql) is None

    def test_string_literal_escapes(self):
        matched = match_tier_sql(
            filtered_sql("\"b\" = 'it''s'::varchar")
        )
        assert matched.predicates == [("b", "=", "it's")]

    def test_boolean_and_float_literals(self):
        matched = match_tier_sql(
            filtered_sql('("a" = TRUE) AND ("b" <= -2.5)')
        )
        assert matched.predicates == [("a", "=", True), ("b", "<=", -2.5)]

    def test_unsupported_literal_rejected(self):
        assert match_tier_sql(filtered_sql('"a" = now()')) is None

    def test_or_predicate_rejected(self):
        assert match_tier_sql(
            filtered_sql('("a" > 1) OR ("a" < 9)')
        ) is None

    def test_join_rejected(self):
        sql = (
            'SELECT * FROM (SELECT "a" FROM "t1" JOIN "t2" USING (k)) '
            'AS hq_t1 ORDER BY "ordcol" NULLS FIRST'
        )
        assert match_tier_sql(sql) is None

    def test_aggregate_rejected(self):
        sql = (
            'SELECT * FROM (SELECT sum("a") AS "a" FROM "hq_temp_1" '
            'GROUP BY "b") AS hq_t1 ORDER BY "ordcol" NULLS FIRST'
        )
        assert match_tier_sql(sql) is None

    def test_arbitrary_sql_rejected(self):
        assert match_tier_sql('INSERT INTO "hq_temp_1" VALUES (1)') is None
        assert match_tier_sql('SELECT 1') is None


class TestPositionalMap:
    def make_map(self):
        # one column, monotone, 3 blocks of 2: [1,2], [3,4], [5,6]
        return PositionalMap([[1, 2, 3, 4, 5, 6]], block_rows=2)

    def test_equality_prunes_to_one_block(self):
        assert self.make_map().candidate_blocks(0, "=", 3) == {1}

    def test_range_prunes_prefix(self):
        assert self.make_map().candidate_blocks(0, ">", 4) == {2}
        assert self.make_map().candidate_blocks(0, ">=", 4) == {1, 2}

    def test_range_prunes_suffix(self):
        assert self.make_map().candidate_blocks(0, "<", 3) == {0}
        assert self.make_map().candidate_blocks(0, "<=", 3) == {0, 1}

    def test_inequality_cannot_prune(self):
        assert self.make_map().candidate_blocks(0, "<>", 3) == {0, 1, 2}

    def test_all_null_block_skipped(self):
        pmap = PositionalMap([[None, None, 1, 2]], block_rows=2)
        assert pmap.candidate_blocks(0, "=", 1) == {1}

    def test_cross_type_comparison_never_prunes(self):
        pmap = PositionalMap([["x", "y"]], block_rows=2)
        assert pmap.candidate_blocks(0, ">", 5) == {0}

    def test_nulls_excluded_from_zones(self):
        pmap = PositionalMap([[None, 9, 1, None]], block_rows=2)
        assert pmap.candidate_blocks(0, ">", 5) == {0}
        assert pmap.zones[0][0].has_null


def lazy_platform(config=None):
    return make_platform(config)


def eager_platform():
    return make_platform(
        HyperQConfig(temp_tier=TempTierConfig(enabled=False))
    )


class TestLazyHandles:
    def test_assignment_defers_backend_write(self):
        hq, gateway = lazy_platform()
        s = hq.create_session()
        try:
            s.execute("dt: select from trades where Price > 40.0")
            relation = s.session_scope.lookup("dt").relation
            assert s.temp_tier.is_lazy(relation)
            assert relation not in hq.engine.catalog.temp_tables
            assert gateway.count("CREATE TEMPORARY TABLE") == 0
        finally:
            s.close()

    def test_scan_served_without_materializing(self):
        hq, __ = lazy_platform()
        s = hq.create_session()
        try:
            s.execute("dt: select from trades where Price > 40.0")
            result = s.execute("select from dt")
            assert len(result) == 3
            relation = s.session_scope.lookup("dt").relation
            assert s.temp_tier.is_lazy(relation)
            assert s.temp_tier.served >= 1
        finally:
            s.close()

    def test_count_served_from_row_count(self):
        hq, __ = lazy_platform()
        s = hq.create_session()
        try:
            s.execute("dt: select from trades")
            assert s.execute("count select from dt").value == 4
            assert s.temp_tier.is_lazy(
                s.session_scope.lookup("dt").relation
            )
        finally:
            s.close()

    def test_aggregate_triggers_materialization(self):
        hq, __ = lazy_platform()
        s = hq.create_session()
        try:
            s.execute("dt: select from trades")
            s.execute("select sum Size by Symbol from dt")
            relation = s.session_scope.lookup("dt").relation
            assert not s.temp_tier.is_lazy(relation)
            assert relation in hq.engine.catalog.temp_tables
            assert s.temp_tier.fallbacks == 1
        finally:
            s.close()

    def test_zone_pruning_skips_blocks(self):
        hq, __ = lazy_platform(
            HyperQConfig(temp_tier=TempTierConfig(block_rows=1))
        )
        s = hq.create_session()
        try:
            s.execute("dt: select from trades")
            result = s.execute("select from dt where Price > 100.0")
            assert len(result) == 1
            assert s.temp_tier.blocks_pruned > 0
        finally:
            s.close()

    def test_untouched_lazy_local_never_reaches_backend(self):
        """A function-local variable served entirely from the tier:
        no CREATE, no DROP — the backend never hears about it.
        (Session-level variables do materialize at close: promotion
        copies them into an ``hq_global_`` relation.)"""
        hq, gateway = lazy_platform()
        s = hq.create_session()
        s.execute(
            "f: {[s] dt: select from trades where Symbol=s; "
            ":count select from dt}"
        )
        assert s.execute("f[`GOOG]").value == 2
        s.close()
        temp_statements = [
            stmt for stmt in gateway.statements if "hq_temp_" in stmt
        ]
        assert temp_statements == []


class TestDifferentialAgainstEager:
    QUERIES = [
        "select from dt",
        "select from dt where Price > 40.0",
        "select from dt where Symbol=`GOOG",
        "select Price from dt",
        "count select from dt",
        "select sum Size by Symbol from dt",  # forces the fallback
        "select from dt",  # passthrough after materialization
    ]

    def test_byte_identical_to_eager_ctas(self):
        lazy_hq, __ = lazy_platform()
        eager_hq, __ = eager_platform()
        lazy_s = lazy_hq.create_session()
        eager_s = eager_hq.create_session()
        try:
            for s in (lazy_s, eager_s):
                s.execute("dt: select from trades where Size > 5")
            for q in self.QUERIES:
                assert encode_value(lazy_s.execute(q)) == encode_value(
                    eager_s.execute(q)
                ), q
        finally:
            lazy_s.close()
            eager_s.close()

    def test_snapshot_isolated_from_later_dml(self):
        """Eager CTAS semantics: DML on the source table after the
        assignment must not leak into the variable — on either the
        snapshot read path or the materialization fallback."""
        lazy_hq, __ = lazy_platform()
        eager_hq, __ = eager_platform()
        lazy_s = lazy_hq.create_session()
        eager_s = eager_hq.create_session()
        insert = (
            "`trades insert ([] Symbol: enlist `Z; Time: enlist 10:00:00; "
            "Price: enlist 500.0; Size: enlist 7)"
        )
        try:
            for s in (lazy_s, eager_s):
                s.execute("dt: select from trades")
                s.execute(insert)
            assert lazy_s.execute("count select from dt").value == 4
            for q in ("select from dt",
                      "select sum Size by Symbol from dt",
                      "select from dt"):
                assert encode_value(lazy_s.execute(q)) == encode_value(
                    eager_s.execute(q)
                ), q
            # the source table did take the write
            assert lazy_s.execute("count select from trades").value == 5
        finally:
            lazy_s.close()
            eager_s.close()

    def test_insert_into_lazy_variable_materializes_first(self):
        lazy_hq, __ = lazy_platform()
        eager_hq, __ = eager_platform()
        lazy_s = lazy_hq.create_session()
        eager_s = eager_hq.create_session()
        insert = (
            "`dt insert ([] Symbol: enlist `Q; Time: enlist 11:00:00; "
            "Price: enlist 9.0; Size: enlist 1)"
        )
        try:
            for s in (lazy_s, eager_s):
                s.execute("dt: select from trades")
                s.execute(insert)
            assert lazy_s.execute("count select from dt").value == 5
            assert encode_value(lazy_s.execute("select from dt")) == \
                encode_value(eager_s.execute("select from dt"))
        finally:
            lazy_s.close()
            eager_s.close()

    def test_promotion_materializes_lazy_variable(self):
        hq, __ = lazy_platform()
        s1 = hq.create_session()
        s1.execute("promo: select from trades where Price > 50")
        s1.close()
        rows = hq.engine.execute(
            'SELECT count(*) FROM "hq_global_promo"'
        ).scalar()
        assert rows == 2
        s2 = hq.create_session()
        try:
            assert s2.execute("count select from promo").value == 2
        finally:
            s2.close()

    def test_chained_lazy_variables(self):
        """A second assignment whose defining SELECT reads an earlier
        lazy handle: the tier serves the inner scan when it can."""
        lazy_hq, __ = lazy_platform()
        eager_hq, __ = eager_platform()
        lazy_s = lazy_hq.create_session()
        eager_s = eager_hq.create_session()
        try:
            for s in (lazy_s, eager_s):
                s.execute("dt: select from trades where Size > 5")
                s.execute("dt2: select from dt where Price > 40.0")
            assert encode_value(lazy_s.execute("select from dt2")) == \
                encode_value(eager_s.execute("select from dt2"))
            assert lazy_s.execute("count select from dt2").value == 3
        finally:
            lazy_s.close()
            eager_s.close()


class TestDisabledTier:
    def test_disabled_tier_registers_nothing(self):
        hq, __ = eager_platform()
        s = hq.create_session()
        try:
            s.execute("dt: select from trades")
            relation = s.session_scope.lookup("dt").relation
            assert len(s.temp_tier) == 0
            assert relation in hq.engine.catalog.temp_tables
        finally:
            s.close()
