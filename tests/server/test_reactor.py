"""Unit tests for the event-loop connection core (repro/server/reactor).

Covers the reactor primitives (timers, cross-thread callbacks), the
feed-bytes/poll-frame read units, the QIPC protocol FSM driven with a
fake transport (no sockets), and the loop-timer deadline path where the
reactor answers a client whose worker is stuck in the backend.
"""

import threading
import time

import pytest

from repro.config import FaultConfig, HyperQConfig, WlmConfig
from repro.core.platform import DirectGateway
from repro.errors import ProtocolError, QError
from repro.obs import metrics
from repro.pgwire import messages as m
from repro.pgwire.codec import PgFrameStream, encode_backend, encode_startup
from repro.qipc.encode import encode_value
from repro.qipc.handshake import Credentials, client_hello
from repro.qipc.messages import (
    MessageType,
    QipcMessage,
    frame,
    poll_message,
    unframe,
)
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom, QVector
from repro.server.client import QConnection
from repro.server.common import BufferedSocketReader
from repro.server.endpoint import QipcEndpoint
from repro.server.hyperq_server import HyperQServer
from repro.server.reactor import Reactor, TimerHandle
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source


class TestReactorPrimitives:
    def test_call_soon_threadsafe_runs_on_loop_thread(self):
        reactor = Reactor("test")
        reactor.start()
        try:
            done = threading.Event()
            seen = {}

            def record():
                seen["thread"] = threading.current_thread().name
                done.set()

            reactor.call_soon_threadsafe(record)
            assert done.wait(timeout=5.0)
            assert seen["thread"] == "reactor-test"
        finally:
            reactor.stop()

    def test_timers_fire_in_schedule_order(self):
        reactor = Reactor("test")
        reactor.start()
        try:
            fired = []
            reactor.call_later(0.05, lambda: fired.append("late"))
            reactor.call_later(0.01, lambda: fired.append("early"))
            deadline = time.monotonic() + 5.0
            while len(fired) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fired == ["early", "late"]
        finally:
            reactor.stop()

    def test_cancelled_timer_never_fires(self):
        reactor = Reactor("test")
        reactor.start()
        try:
            fired = []
            handle = reactor.call_later(0.02, lambda: fired.append("no"))
            handle.cancel()
            confirm = threading.Event()
            reactor.call_later(0.08, confirm.set)
            assert confirm.wait(timeout=5.0)
            assert fired == []
        finally:
            reactor.stop()

    def test_timer_handle_orders_by_when_then_seq(self):
        a = TimerHandle(1.0, 0, lambda: None)
        b = TimerHandle(1.0, 1, lambda: None)
        c = TimerHandle(0.5, 2, lambda: None)
        assert sorted([b, a, c]) == [c, a, b]

    def test_loop_lag_metric_minted_by_heartbeat(self):
        before = (
            metrics.get_registry().flat().get(
                "server_loop_lag_ms_count{server=lagtest}", 0.0
            )
        )
        from repro.config import ServerConfig

        reactor = Reactor("lagtest", ServerConfig(heartbeat_seconds=0.02))
        reactor.start()
        try:
            time.sleep(0.15)
        finally:
            reactor.stop()
        after = (
            metrics.get_registry().flat().get(
                "server_loop_lag_ms_count{server=lagtest}", 0.0
            )
        )
        assert after > before


class TestNonBlockingReadUnits:
    def test_detached_reader_feed_and_poll(self):
        reader = BufferedSocketReader.detached()
        assert reader.poll(4) is None
        reader.feed(b"ab")
        assert reader.peek(4) is None
        reader.feed(b"cdef")
        assert reader.peek(4) == b"abcd"
        assert reader.poll(4) == b"abcd"
        assert reader.poll(2) == b"ef"
        assert reader.poll(1) is None

    def test_detached_reader_poll_until(self):
        reader = BufferedSocketReader.detached()
        reader.feed(b"user:pw")
        assert reader.poll_until(b"\x00") is None
        reader.feed(b"\x03\x00rest")
        assert reader.poll_until(b"\x00") == b"user:pw\x03\x00"
        assert reader.buffered() == 4

    def test_detached_reader_poll_until_limit(self):
        reader = BufferedSocketReader.detached()
        reader.feed(b"x" * 2000)
        with pytest.raises(ConnectionError):
            reader.poll_until(b"\x00", limit=1024)

    def test_detached_reader_blocking_take_raises(self):
        reader = BufferedSocketReader.detached()
        reader.feed(b"ab")
        with pytest.raises(ProtocolError):
            reader.take(4)

    def test_poll_message_across_partial_feeds(self):
        payload = encode_value(QAtom(QType.LONG, 7))
        framed = frame(QipcMessage(MessageType.SYNC, payload))
        reader = BufferedSocketReader.detached()
        for i in range(len(framed)):
            assert poll_message(reader) is None or i >= len(framed)
            reader.feed(framed[i : i + 1])
        message = poll_message(reader)
        assert message is not None
        assert message.msg_type == MessageType.SYNC
        assert message.payload == payload
        assert poll_message(reader) is None

    def test_poll_message_rejects_oversized(self):
        import struct

        reader = BufferedSocketReader.detached()
        reader.feed(struct.pack("<BBBBI", 1, 1, 0, 0, 10_000_000))
        with pytest.raises(ProtocolError):
            poll_message(reader, max_bytes=1024)

    def test_pg_stream_poll_frame_partial(self):
        framed = encode_backend(m.CommandComplete("SELECT 1"))
        stream = PgFrameStream.detached()
        stream.feed(framed[:3])
        assert stream.poll_frame() is None
        stream.feed(framed[3:])
        type_byte, body = stream.poll_frame()
        assert type_byte == b"C"
        assert body == b"SELECT 1\x00"
        assert stream.poll_frame() is None

    def test_pg_stream_poll_startup_partial(self):
        framed = encode_startup(m.StartupMessage(user="hq", database="db"))
        stream = PgFrameStream.detached()
        stream.feed(framed[:5])
        assert stream.poll_startup() is None
        stream.feed(framed[5:])
        startup = stream.poll_startup()
        assert startup.user == "hq"
        assert startup.database == "db"


class _FakeReactor:
    """Runs callbacks inline and records timers (never fires them)."""

    def __init__(self):
        self.timers = []
        self._seq = 0

    def call_soon_threadsafe(self, callback):
        callback()

    def call_later(self, delay, callback):
        handle = TimerHandle(delay, self._seq, callback)
        self._seq += 1
        self.timers.append(handle)
        return handle


class _FakeTransport:
    def __init__(self):
        self.reactor = _FakeReactor()
        self.out = bytearray()
        self.closed = False

    def write(self, data):
        self.out += data

    def close(self):
        self.closed = True

    def abort(self, exc=None):
        self.closed = True


class _InlineWorkers:
    """Runs submitted jobs synchronously (deterministic FSM stepping)."""

    def submit(self, job):
        job()


class TestQipcProtocolFsm:
    """The per-connection FSM driven directly, no sockets anywhere."""

    def _protocol(self, fn=lambda q: QAtom(QType.LONG, 42)):
        endpoint = QipcEndpoint.from_function(fn)
        endpoint.workers = _InlineWorkers()
        protocol = endpoint.build_protocol()
        transport = _FakeTransport()
        protocol.connection_made(transport)
        return protocol, transport

    def test_handshake_then_query_walks_the_states(self):
        protocol, transport = self._protocol()
        assert protocol.fsm.state == "hello"
        protocol.data_received(client_hello(Credentials("u", "p")))
        assert protocol.fsm.state == "ready"
        assert bytes(transport.out[:1]) == b"\x03"  # the capability ack

        query = QVector(QType.CHAR, list("1+1"))
        del transport.out[:]
        protocol.data_received(
            frame(QipcMessage(MessageType.SYNC, encode_value(query)))
        )
        # inline workers mean the whole execute completed synchronously
        assert protocol.fsm.state == "ready"
        response = unframe(bytes(transport.out))
        assert response.msg_type == MessageType.RESPONSE
        assert ("hello", "authenticated", "ready") in protocol.fsm.history
        assert ("ready", "message", "executing") in protocol.fsm.history
        assert ("executing", "finished", "ready") in protocol.fsm.history

    def test_fragmented_hello_and_frame(self):
        protocol, transport = self._protocol()
        hello = client_hello(Credentials("u", "p"))
        framed = frame(
            QipcMessage(
                MessageType.SYNC,
                encode_value(QVector(QType.CHAR, list("1"))),
            )
        )
        blob = hello + framed
        for i in range(len(blob)):
            protocol.data_received(blob[i : i + 1])
        assert protocol.fsm.state == "ready"
        assert len(transport.out) > 1

    def test_queued_messages_dispatch_fifo(self):
        seen = []

        def record(query):
            seen.append(query)
            return QAtom(QType.LONG, len(seen))

        protocol, transport = self._protocol(record)
        protocol.data_received(client_hello(Credentials("u", "p")))
        batch = b"".join(
            frame(
                QipcMessage(
                    MessageType.SYNC,
                    encode_value(QVector(QType.CHAR, list(text))),
                )
            )
            for text in ("first", "second", "third")
        )
        protocol.data_received(batch)
        assert seen == ["first", "second", "third"]

    def test_bad_payload_type_answers_error_and_stays_open(self):
        protocol, transport = self._protocol()
        protocol.data_received(client_hello(Credentials("u", "p")))
        del transport.out[:]
        protocol.data_received(
            frame(
                QipcMessage(
                    MessageType.SYNC, encode_value(QAtom(QType.LONG, 1))
                )
            )
        )
        response = unframe(bytes(transport.out))
        assert response.msg_type == MessageType.RESPONSE
        assert not transport.closed
        assert protocol.fsm.state == "ready"

    def test_disconnect_from_any_state(self):
        protocol, transport = self._protocol()
        protocol.connection_lost(None)
        assert protocol.fsm.state == "closed"


class _SleepyBackend(DirectGateway):
    """A backend that ignores deadlines entirely: only the reactor's
    loop timer can answer the client before the sleep ends."""

    def __init__(self, engine, delay):
        super().__init__(engine)
        self.delay = delay

    def run_sql(self, sql):
        time.sleep(self.delay)
        return self.engine.execute(sql)


SOURCE = "trades: ([] Symbol:`GOOG`IBM; Price:100.0 50.0; Size:10 20)"


class TestLoopTimerDeadline:
    def test_deadline_timer_answers_while_worker_is_stuck(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        config = HyperQConfig(
            wlm=WlmConfig(
                default_deadline=0.25, faults=FaultConfig(enabled=False)
            )
        )
        backend = _SleepyBackend(engine, delay=1.5)
        with HyperQServer(backend=backend, config=config) as server:
            with QConnection(*server.address) as q:
                started = time.perf_counter()
                with pytest.raises(QError) as excinfo:
                    q.query("select from trades")
                elapsed = time.perf_counter() - started
        # answered by the loop timer at ~0.25s, not by the 1.5s sleep
        assert elapsed < 1.0
        assert excinfo.value.signal == "wlm-deadline"

    def test_no_deadline_config_means_no_timer(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        config = HyperQConfig(
            wlm=WlmConfig(default_deadline=0.0)
        )
        with HyperQServer(engine=engine, config=config) as server:
            assert server.request_deadline() is None
            with QConnection(*server.address) as q:
                assert len(q.query("select from trades")) == 2


class TestConnectionGauge:
    def test_connections_open_tracks_connects_and_disconnects(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        with HyperQServer(engine=engine) as server:
            with QConnection(*server.address) as q:
                q.query("1")
                assert server.reactor.connections_open == 1
                with QConnection(*server.address) as q2:
                    q2.query("2")
                    assert server.reactor.connections_open == 2
            # disconnect is processed asynchronously by the loop
            deadline = time.monotonic() + 5.0
            while (
                server.reactor.connections_open > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.reactor.connections_open == 0
