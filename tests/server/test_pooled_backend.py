"""Tests for PooledBackend: pool mechanics plus the concurrent-server
acceptance scenario (more sessions than pooled connections)."""

import threading
import time

import pytest

from repro.config import BackendPoolConfig, HyperQConfig
from repro.core.backends import PooledBackend
from repro.core.platform import DirectGateway
from repro.errors import PoolTimeoutError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom
from repro.server.client import QConnection
from repro.server.hyperq_server import HyperQServer
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source


class FakeConnection:
    """A scriptable in-memory backend connection for pool tests."""

    def __init__(self, registry):
        registry.append(self)
        self.statements = []
        self.alive = True
        self.closed = False
        self._version = 0
        #: set to an exception instance to raise it on the next run_sql
        self.fail_next = None
        #: event the next run_sql blocks on before returning (for holding
        #: a connection checked out from another thread)
        self.block_on = None

    def run_sql(self, sql):
        if self.fail_next is not None:
            exc, self.fail_next = self.fail_next, None
            raise exc
        if self.block_on is not None:
            self.block_on.wait(timeout=10)
        self.statements.append(sql)
        if sql.startswith("CREATE"):
            self._version += 1
        return f"ok:{sql}"

    def catalog_version(self):
        return self._version

    def ping(self):
        return self.alive and not self.closed

    def close(self):
        self.closed = True


@pytest.fixture()
def conns():
    return []


@pytest.fixture()
def pool(conns):
    with PooledBackend(lambda: FakeConnection(conns), size=3,
                       checkout_timeout=0.2) as p:
        yield p


class TestPoolMechanics:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            PooledBackend(lambda: None, size=0)

    def test_lazy_growth_reuses_one_connection(self, pool, conns):
        for __ in range(5):
            pool.run_sql("SELECT 1")
        assert len(conns) == 1
        assert pool.open_connections == 1
        assert conns[0].statements == ["SELECT 1"] * 5

    def test_bound_respected_under_contention(self, conns):
        release = threading.Event()

        def slow_connection():
            conn = FakeConnection(conns)
            conn.block_on = release  # every statement blocks until released
            return conn

        pool = PooledBackend(slow_connection, size=2, checkout_timeout=5.0)
        threads = [
            threading.Thread(target=pool.run_sql, args=("SELECT slow",))
            for __ in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.2)  # let the workers fight over the pool
        assert pool.open_connections <= 2
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(conns) <= 2
        pool.close()

    def test_checkout_timeout_raises(self, conns):
        release = threading.Event()
        created = threading.Event()

        def slow_connection():
            conn = FakeConnection(conns)
            conn.block_on = release
            created.set()
            return conn

        pool = PooledBackend(slow_connection, size=1, checkout_timeout=0.05)
        holder = threading.Thread(target=pool.run_sql, args=("SELECT held",))
        holder.start()
        assert created.wait(timeout=5)
        time.sleep(0.05)  # let the holder reach the blocking statement
        with pytest.raises(PoolTimeoutError):
            pool.run_sql("SELECT 2")
        release.set()
        holder.join(timeout=10)
        pool.close()

    def test_dead_idle_connection_replaced(self, pool, conns):
        pool.run_sql("SELECT 1")
        conns[0].alive = False  # dies while sitting idle
        assert pool.run_sql("SELECT 2") == "ok:SELECT 2"
        assert len(conns) == 2
        assert conns[0].closed
        assert conns[1].statements == ["SELECT 2"]
        assert pool.open_connections == 1

    def test_transport_error_discards_connection(self, pool, conns):
        pool.run_sql("SELECT 1")
        conns[0].fail_next = ConnectionError("backend went away")
        with pytest.raises(ConnectionError):
            pool.run_sql("SELECT 2")
        assert pool.open_connections == 0
        assert conns[0].closed
        # the pool recovers on the next statement with a fresh connection
        assert pool.run_sql("SELECT 3") == "ok:SELECT 3"
        assert len(conns) == 2

    def test_sql_error_keeps_connection(self, pool, conns):
        pool.run_sql("SELECT 1")
        conns[0].fail_next = ValueError("42P01: relation does not exist")
        with pytest.raises(ValueError):
            pool.run_sql("SELECT * FROM missing")
        # same healthy connection serves the next statement
        assert pool.run_sql("SELECT 2") == "ok:SELECT 2"
        assert len(conns) == 1
        assert not conns[0].closed

    def test_ddl_bumps_pool_catalog_version(self, pool, conns):
        assert pool.catalog_version() == 0
        pool.run_sql("SELECT 1")
        assert pool.catalog_version() == 0
        pool.run_sql("CREATE TABLE t (x bigint)")
        assert pool.catalog_version() == 1
        pool.run_sql("CREATE TABLE u (y bigint)")
        assert pool.catalog_version() == 2

    def test_preexisting_catalog_version_reported_not_delta(self, conns):
        """Regression: the pool version is the *max observed* across
        connections, not a delta accumulated from zero.  A backend that
        already carries catalog version 7 must be reported as 7 — the old
        delta accounting reported 0 until the next DDL, leaving stale
        translations keyed at the wrong version."""

        def seasoned_connection():
            conn = FakeConnection(conns)
            conn._version = 7  # backend has seen DDL before the pool opened
            return conn

        pool = PooledBackend(seasoned_connection, size=2)
        # before any statement the pool primes one connection to probe
        assert pool.catalog_version() == 7
        assert pool.open_connections == 1
        # a plain statement must not re-add the version (max, not sum)
        pool.run_sql("SELECT 1")
        assert pool.catalog_version() == 7
        pool.run_sql("CREATE TABLE t (x bigint)")
        assert pool.catalog_version() == 8
        pool.close()

    def test_out_of_band_ddl_visible_through_idle_peek(self, pool, conns):
        pool.run_sql("SELECT 1")
        assert pool.catalog_version() == 0
        # DDL applied directly on the backend, bypassing the pool
        conns[0]._version = 3
        assert pool.catalog_version() == 3

    def test_catalog_version_probe_holds_the_connection(self, pool, conns):
        # catalog_version may be a wire round-trip on real backends: the
        # probed connection must leave the idle list for the duration so
        # a concurrent checkout cannot run a statement on it mid-probe
        pool.run_sql("SELECT 1")
        probed = conns[0]
        idle_during_probe = []
        original = FakeConnection.catalog_version

        def spying_version(self):
            idle_during_probe.append(self in pool._idle)
            return original(self)

        FakeConnection.catalog_version = spying_version
        try:
            pool.catalog_version()
        finally:
            FakeConnection.catalog_version = original
        assert idle_during_probe == [False]
        # and the probe checks it back in: pool accounting is balanced
        assert pool.in_use == 0
        assert probed in pool._idle

    def test_close_drains_and_rejects(self, conns):
        pool = PooledBackend(lambda: FakeConnection(conns), size=2)
        pool.run_sql("SELECT 1")
        pool.close()
        assert conns[0].closed
        assert pool.open_connections == 0
        with pytest.raises(PoolTimeoutError):
            pool.run_sql("SELECT 2")


class TestPoolRaces:
    """Regression tests for the checkout accounting races: the open-count
    bound must hold at every instant (not just at rest), one checkout
    observes one overall timeout, and a connection returned after close()
    is closed rather than leaked into the dead pool."""

    def test_open_never_exceeds_size_with_slow_factory(self, conns):
        """Concurrent first checkouts race the factory: each must reserve
        its slot *before* creating, so a slow factory cannot let the pool
        transiently overshoot its bound."""
        size = 3
        peak = []
        lock = threading.Lock()

        def slow_factory():
            time.sleep(0.02)  # widen the reserve→create window
            with lock:
                peak.append(len(conns) + 1)
            return FakeConnection(conns)

        pool = PooledBackend(slow_factory, size=size, checkout_timeout=5.0)
        errors = []

        def worker():
            try:
                for __ in range(5):
                    pool.run_sql("SELECT 1")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for __ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(conns) <= size  # the factory never overshot
        assert max(peak) <= size
        assert pool.open_connections <= size
        assert pool.in_use == 0
        pool.close()

    def test_hammer_with_transport_errors_keeps_invariants(self, conns):
        """Mixed success/transport-failure traffic from many threads:
        discards and replacements must leave the accounting exact."""
        pool = PooledBackend(
            lambda: FakeConnection(conns), size=3, checkout_timeout=5.0
        )
        errors = []
        lock = threading.Lock()

        def worker(n):
            for i in range(20):
                try:
                    if (n + i) % 5 == 0:
                        with lock:
                            for c in conns:
                                if not c.closed and c.fail_next is None:
                                    c.fail_next = ConnectionError("boom")
                                    break
                    pool.run_sql(f"SELECT {n}")
                except ConnectionError:
                    pass  # expected: injected transport failure
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert pool.in_use == 0
        assert 0 <= pool.open_connections <= 3
        # every connection the pool ever dropped was actually closed
        open_now = [c for c in conns if not c.closed]
        assert len(open_now) == pool.open_connections
        pool.close()
        assert all(c.closed for c in conns)

    def test_checkin_after_close_does_not_leak(self, conns):
        """close() while a statement is in flight: the connection coming
        back afterwards must be closed, not parked in the idle list."""
        release = threading.Event()

        def blocking_factory():
            conn = FakeConnection(conns)
            conn.block_on = release
            return conn

        pool = PooledBackend(blocking_factory, size=2, checkout_timeout=1.0)
        holder = threading.Thread(target=pool.run_sql, args=("SELECT held",))
        holder.start()
        for __ in range(100):  # wait for the checkout to land
            if pool.in_use == 1:
                break
            time.sleep(0.01)
        assert pool.in_use == 1
        pool.close()
        release.set()
        holder.join(timeout=10)
        assert pool.open_connections == 0
        assert all(c.closed for c in conns)

    def test_waiters_fail_fast_on_close(self, conns):
        """A checkout blocked on a full pool should raise as soon as the
        pool closes, not sit out its full timeout."""
        release = threading.Event()

        def blocking_factory():
            conn = FakeConnection(conns)
            conn.block_on = release
            return conn

        pool = PooledBackend(blocking_factory, size=1, checkout_timeout=30.0)
        holder = threading.Thread(target=pool.run_sql, args=("SELECT held",))
        holder.start()
        for __ in range(100):
            if pool.in_use == 1:
                break
            time.sleep(0.01)
        outcome = {}

        def waiter():
            start = time.monotonic()
            try:
                pool.run_sql("SELECT 2")
            except PoolTimeoutError:
                outcome["elapsed"] = time.monotonic() - start

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.1)  # let the waiter block on the condition
        pool.close()
        t.join(timeout=5)
        release.set()
        holder.join(timeout=10)
        assert outcome["elapsed"] < 5.0  # nowhere near the 30s timeout


SOURCE = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40)
"""


class TestPooledServerAcceptance:
    def test_more_sessions_than_pooled_connections(self):
        """The issue's acceptance scenario: >=8 concurrent QIPC sessions
        over a pool smaller than the session count, with per-session
        state intact and shared-table results consistent."""
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        config = HyperQConfig(
            backend_pool=BackendPoolConfig(size=3, checkout_timeout=10.0)
        )
        server = HyperQServer.pooled(
            lambda: DirectGateway(engine), config=config
        )
        clients = 9
        outcome = {}
        errors = []
        lock = threading.Lock()

        def client(tag):
            try:
                with QConnection(*server.address) as q:
                    q.query(f"mine: {tag}")
                    total = q.query("exec sum Size from trades")
                    mine = q.query("mine")
                with lock:
                    outcome[tag] = (total, mine)
            except Exception as exc:  # pragma: no cover - diagnostic
                with lock:
                    errors.append(exc)

        with server:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(1, clients + 1)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors
        assert len(outcome) == clients
        # the server wraps the pool in the WLM's ResilientBackend; the
        # pool itself sits underneath
        pool = getattr(server.backend, "inner", server.backend)
        assert isinstance(pool, PooledBackend)
        # the pool never grew past its bound despite 9 sessions
        assert pool.open_connections <= 3
        for tag, (total, mine) in outcome.items():
            assert total == QAtom(QType.LONG, 100)
            # session variables never leaked across pooled sessions
            assert mine == QAtom(QType.LONG, tag)

    def test_pooled_server_sees_ddl_in_translation_cache_key(self):
        """DDL through one pooled connection moves the pool's catalog
        version, so translation-cache keys change for every session."""
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        server = HyperQServer.pooled(lambda: DirectGateway(engine))
        session = server.create_session()
        q = "select from trades where Size > 15"
        session.run(q)
        assert session.run(q).cache_hits == 1
        server.backend.run_sql("CREATE TABLE pool_bump (x BIGINT)")
        assert session.run(q).cache_hits == 0
        session.close()
