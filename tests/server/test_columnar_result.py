"""Tests for the columnar result path: ``collect_result`` + ``ResultSet``.

The gateway accumulates DataRow traffic straight into per-column lists
(one resolved decoder per column); ``ResultSet`` then serves both the
columnar view (free for ``pivot_result``) and the row view (for the SQL
engine and the testing harness).
"""

import socket

import pytest

from repro.core.crosscompiler import pivot_result
from repro.errors import SqlExecutionError
from repro.pgwire import messages as m
from repro.pgwire.codec import PgFrameStream, encode_backend, encode_data_rows
from repro.qlang.qtypes import QType
from repro.server.gateway import collect_result
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType


def _serve(script_bytes: bytes) -> PgFrameStream:
    left, right = socket.socketpair()
    right.sendall(script_bytes)
    right.close()
    return PgFrameStream.over(left)


def _result_wire(fields, rows, tag="SELECT"):
    return b"".join(
        (
            encode_backend(m.RowDescription(fields)),
            encode_data_rows(rows),
            encode_backend(m.CommandComplete(tag)),
            encode_backend(m.ReadyForQuery("I")),
        )
    )


class TestCollectResult:
    FIELDS = [
        m.FieldDescription("n", 20),  # bigint
        m.FieldDescription("x", 701),  # double
        m.FieldDescription("s", 25),  # text
        m.FieldDescription("flag", 16),  # boolean
    ]
    ROWS = [
        [b"1", b"1.5", "café".encode("utf-8"), b"t"],
        [b"-2", None, b"", b"f"],
        [None, b"0.25", b"plain", None],
    ]

    def test_columnar_accumulation(self):
        stream = _serve(_result_wire(self.FIELDS, self.ROWS, "SELECT 3"))
        columns, data, command, error, saw_ddl = collect_result(stream)
        assert [c.name for c in columns] == ["n", "x", "s", "flag"]
        assert [c.sql_type for c in columns] == [
            SqlType.BIGINT, SqlType.DOUBLE, SqlType.TEXT, SqlType.BOOLEAN,
        ]
        assert data == [
            [1, -2, None],
            [1.5, None, 0.25],
            ["café", "", "plain"],
            [True, False, None],
        ]
        assert command == "SELECT 3"
        assert error is None
        assert not saw_ddl

    def test_decoded_types_are_per_column(self):
        stream = _serve(_result_wire(self.FIELDS, self.ROWS))
        __, data, *___ = collect_result(stream)
        assert all(isinstance(v, int) for v in data[0] if v is not None)
        assert all(isinstance(v, float) for v in data[1] if v is not None)
        assert all(isinstance(v, str) for v in data[2] if v is not None)

    def test_error_captured_not_raised(self):
        wire = b"".join(
            (
                encode_backend(
                    m.ErrorResponse(message="boom", code="42P01")
                ),
                encode_backend(m.ReadyForQuery("I")),
            )
        )
        __, data, ___, error, ____ = collect_result(_serve(wire))
        assert error is not None and error.code == "42P01"
        assert data == []

    def test_ddl_flagged(self):
        wire = b"".join(
            (
                encode_backend(m.CommandComplete("CREATE TABLE")),
                encode_backend(m.ReadyForQuery("I")),
            )
        )
        *__, saw_ddl = collect_result(_serve(wire))
        assert saw_ddl

    def test_gateway_resultset_is_columnar(self):
        stream = _serve(_result_wire(self.FIELDS, self.ROWS, "SELECT 3"))
        columns, data, command, __, ___ = collect_result(stream)
        result = ResultSet.from_columns(columns, data, command=command)
        assert result.is_columnar
        assert result.rows == [
            (1, 1.5, "café", True),
            (-2, None, "", False),
            (None, 0.25, "plain", None),
        ]


class TestResultSetViews:
    COLUMNS = [Column("a", SqlType.BIGINT), Column("b", SqlType.TEXT)]

    def test_rows_to_columns(self):
        result = ResultSet(self.COLUMNS, [(1, "x"), (2, "y")])
        assert not result.is_columnar
        assert result.column_data == [[1, 2], ["x", "y"]]

    def test_columns_to_rows(self):
        result = ResultSet.from_columns(self.COLUMNS, [[1, 2], ["x", "y"]])
        assert result.rows == [(1, "x"), (2, "y")]

    def test_row_rebind_invalidates_columnar_view(self):
        result = ResultSet.from_columns(self.COLUMNS, [[1, 2], ["x", "y"]])
        result.rows = result.rows[1:]  # what LIMIT/OFFSET slicing does
        assert result.rows == [(2, "y")]
        assert result.column_data == [[2], ["y"]]

    def test_empty_columnar_result(self):
        result = ResultSet.from_columns(self.COLUMNS, [[], []])
        assert result.rows == []
        assert result.column_data == [[], []]

    def test_empty_row_result_has_per_column_lists(self):
        result = ResultSet(self.COLUMNS, [])
        assert result.column_data == [[], []]

    def test_commandonly_result(self):
        result = ResultSet([], command="CREATE TABLE")
        assert result.rows == []
        assert result.column_data == []

    def test_scalar(self):
        assert ResultSet.from_columns(
            [self.COLUMNS[0]], [[42]]
        ).scalar() == 42
        with pytest.raises(SqlExecutionError):
            ResultSet(self.COLUMNS, [(1, "x")]).scalar()

    def test_pivot_consumes_columns_without_transpose(self):
        result = ResultSet.from_columns(self.COLUMNS, [[1, 2], ["x", "y"]])
        value = pivot_result(result, "table", [])
        assert value.columns == ["a", "b"]
        assert value.data[0].qtype == QType.LONG
        assert value.data[0].items == [1, 2]
        assert value.data[1].qtype == QType.SYMBOL
        assert value.data[1].items == ["x", "y"]
        # the row view was never materialized by the pivot
        assert result._rows is None
