"""Regression tests: NetworkGateway must surface PG ErrorResponse details.

Before the backends refactor, a backend error came back as a bare
"backend reported an error" with the severity/code/message fields of the
ErrorResponse dropped on the floor.
"""

import pytest

from repro.errors import BackendSqlError, SqlExecutionError
from repro.server.gateway import NetworkGateway
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine


@pytest.fixture()
def pg_server():
    engine = Engine()
    engine.execute("CREATE TABLE t (a bigint, b varchar)")
    engine.execute("INSERT INTO t VALUES (1, 'x')")
    with PgWireServer(engine) as server:
        yield server


class TestGatewayErrorDetails:
    def test_missing_table_surfaces_code_and_message(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            with pytest.raises(BackendSqlError) as excinfo:
                gateway.run_sql("SELECT * FROM missing")
            error = excinfo.value
            assert error.code == "42P01"
            assert error.severity == "ERROR"
            assert "missing" in error.backend_message
            # the formatted message carries all three fields
            assert "42P01" in str(error)
            assert "ERROR" in str(error)

    def test_syntax_error_maps_to_42601(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            with pytest.raises(BackendSqlError) as excinfo:
                gateway.run_sql("SELEKT 1")
            assert excinfo.value.code == "42601"

    def test_backend_sql_error_is_still_sql_execution_error(self, pg_server):
        """Existing catch sites keyed on SqlExecutionError keep working."""
        with NetworkGateway(*pg_server.address) as gateway:
            with pytest.raises(SqlExecutionError):
                gateway.run_sql("SELECT * FROM missing")

    def test_connection_usable_after_backend_error(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            with pytest.raises(BackendSqlError):
                gateway.run_sql("SELECT * FROM missing")
            assert gateway.run_sql("SELECT a FROM t").rows == [(1,)]
