"""Concurrency tests: the paper's "configurable concurrency" enhancement.

kdb+ executes one request at a time (its main loop serializes); Hyper-Q
with an MPP backend can serve many clients concurrently, and the paper
lists configurable concurrency among the areas where Hyper-Q improves on
kdb+ without breaking application code.
"""

import threading

from repro.config import HyperQConfig
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom
from repro.server.client import QConnection
from repro.server.hyperq_server import HyperQServer, KdbServer
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source

SOURCE = "trades: ([] Symbol:`GOOG`IBM; Price:100.0 50.0; Size:10 20)"


def hammer(address, queries_per_client=5, clients=6):
    """N clients issuing queries concurrently; returns (results, errors)."""
    results, errors = [], []
    lock = threading.Lock()

    def worker():
        try:
            with QConnection(*address) as q:
                for __ in range(queries_per_client):
                    value = q.query("exec sum Size from trades")
                    with lock:
                        results.append(value)
        except Exception as exc:  # pragma: no cover - diagnostic path
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    return results, errors


def make_server(**config_kwargs):
    engine = Engine()
    load_q_source(engine, Interpreter(), SOURCE, ["trades"])
    return HyperQServer(engine=engine, config=HyperQConfig(**config_kwargs))


class TestHyperQConcurrency:
    def test_many_clients_consistent_results(self):
        with make_server() as server:
            results, errors = hammer(server.address)
            assert not errors
            assert len(results) == 30
            assert all(r == QAtom(QType.LONG, 30) for r in results)

    def test_configurable_limit_serializes(self):
        with make_server(max_concurrency=1) as server:
            results, errors = hammer(server.address, clients=4)
            assert not errors
            assert len(results) == 20
            assert server.peak_concurrency == 1

    def test_unlimited_reaches_higher_concurrency(self):
        # statistical: with 6 clients and no limit, at least two queries
        # should overlap at some point (the GIL still allows interleaving
        # because the engine releases control between statements)
        with make_server() as server:
            hammer(server.address, queries_per_client=10, clients=6)
            assert server.peak_concurrency >= 1  # tracked at all

    def test_session_variables_stay_isolated_under_load(self):
        with make_server() as server:
            outcome = {}

            def client(tag):
                with QConnection(*server.address) as q:
                    q.query(f"mine: {tag}")
                    outcome[tag] = q.query("mine")

            threads = [
                threading.Thread(target=client, args=(i,)) for i in (1, 2, 3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            for tag, value in outcome.items():
                assert value == QAtom(QType.LONG, tag)


class TestKdbServerSerial:
    def test_kdb_server_is_serial_but_correct(self):
        server = KdbServer()
        server.interpreter.eval_text(SOURCE)
        with server:
            results, errors = hammer(server.address, clients=4)
            assert not errors
            assert all(r == QAtom(QType.LONG, 30) for r in results)
