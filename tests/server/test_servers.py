"""Integration tests over real localhost sockets.

The headline test mirrors the paper's claim: the same Q application code
(the QConnection client) runs unchanged against a kdb+-style server and
against Hyper-Q fronting a PG-compatible backend, and sees the same
results.
"""

import pytest

from repro.errors import AuthenticationError, QError
from repro.pgwire.auth import CleartextAuth, KerberosStubAuth, Md5Auth
from repro.qipc.handshake import UserPassword
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom, QTable
from repro.server.client import QConnection
from repro.server.gateway import NetworkGateway
from repro.server.hyperq_server import HyperQServer, KdbServer
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.testing.comparators import compare_values
from repro.workload.loader import load_q_source

SOURCE = (
    "trades: ([] Symbol:`GOOG`IBM`GOOG; Price:100.0 50.0 101.0; "
    "Size:10 20 30)"
)


@pytest.fixture()
def kdb_server():
    server = KdbServer()
    server.interpreter.eval_text(SOURCE)
    with server:
        yield server


@pytest.fixture()
def hyperq_server():
    engine = Engine()
    load_q_source(engine, Interpreter(), SOURCE, ["trades"])
    server = HyperQServer(engine=engine)
    with server:
        yield server


class TestKdbServer:
    def test_scalar_roundtrip(self, kdb_server):
        with QConnection(*kdb_server.address) as q:
            assert q.query("1+2") == QAtom(QType.LONG, 3)

    def test_table_roundtrip(self, kdb_server):
        with QConnection(*kdb_server.address) as q:
            result = q.query("select from trades where Price > 60")
            assert isinstance(result, QTable)
            assert len(result) == 2

    def test_error_becomes_signal(self, kdb_server):
        with QConnection(*kdb_server.address) as q:
            with pytest.raises(QError):
                q.query("undefined_thing")

    def test_global_state_shared_across_connections(self, kdb_server):
        with QConnection(*kdb_server.address) as q1:
            q1.query("shared_var: 99")
        with QConnection(*kdb_server.address) as q2:
            assert q2.query("shared_var") == QAtom(QType.LONG, 99)

    def test_async_message_does_not_reply(self, kdb_server):
        with QConnection(*kdb_server.address) as q:
            q.query_async("async_var: 5")
            assert q.query("async_var") == QAtom(QType.LONG, 5)

    def test_authentication_rejects(self):
        server = KdbServer(authenticator=UserPassword({"alice": "pw"}))
        with server:
            with pytest.raises(AuthenticationError):
                QConnection(
                    *server.address, username="alice", password="wrong"
                ).connect()
            with QConnection(
                *server.address, username="alice", password="pw"
            ) as q:
                assert q.query("1") == QAtom(QType.LONG, 1)


class TestHyperQServer:
    def test_q_app_runs_unchanged(self, hyperq_server):
        with QConnection(*hyperq_server.address) as q:
            result = q.query("select Price from trades where Symbol=`GOOG")
            assert isinstance(result, QTable)
            assert result.column("Price").items == [100.0, 101.0]

    def test_aggregation(self, hyperq_server):
        with QConnection(*hyperq_server.address) as q:
            result = q.query("exec max Price from trades")
            assert result == QAtom(QType.FLOAT, 101.0)

    def test_error_verbose(self, hyperq_server):
        with QConnection(*hyperq_server.address) as q:
            with pytest.raises(QError):
                q.query("select from no_such_table")

    def test_session_isolation_of_locals(self, hyperq_server):
        with QConnection(*hyperq_server.address) as q1:
            q1.query("mine: select from trades where Size > 15")
            assert len(q1.query("select from mine")) == 2

    def test_same_results_as_kdb(self, kdb_server, hyperq_server):
        queries = [
            "select from trades",
            "select sum Size by Symbol from trades",
            "select max Price from trades",
            "update N: Price*Size from trades",
        ]
        with QConnection(*kdb_server.address) as qk, QConnection(
            *hyperq_server.address
        ) as qh:
            for query in queries:
                left = qk.query(query)
                right = qh.query(query)
                comparison = compare_values(left, right)
                assert comparison, f"{query}: {comparison.reason}"


class TestPgWireServer:
    @pytest.fixture()
    def pg_server(self):
        engine = Engine()
        engine.execute("CREATE TABLE t (a bigint, b varchar)")
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        with PgWireServer(engine) as server:
            yield server

    def test_simple_query(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            result = gateway.run_sql("SELECT a, b FROM t ORDER BY a")
            assert result.rows == [(1, "x"), (2, "y")]
            assert result.column_names == ["a", "b"]

    def test_null_round_trip(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            result = gateway.run_sql("SELECT NULL::bigint AS n")
            assert result.rows == [(None,)]

    def test_ddl_and_reuse(self, pg_server):
        with NetworkGateway(*pg_server.address) as gateway:
            gateway.run_sql("CREATE TABLE made (x bigint)")
            gateway.run_sql("INSERT INTO made VALUES (7)")
            assert gateway.run_sql("SELECT x FROM made").rows == [(7,)]

    def test_error_propagates(self, pg_server):
        from repro.errors import SqlExecutionError

        with NetworkGateway(*pg_server.address) as gateway:
            with pytest.raises(SqlExecutionError):
                gateway.run_sql("SELECT * FROM missing")
            # connection still usable after an error
            assert gateway.run_sql("SELECT 1").rows == [(1,)]

    def test_cleartext_auth(self):
        engine = Engine()
        server = PgWireServer(engine, auth=CleartextAuth({"hq": "pw"}))
        with server:
            gateway = NetworkGateway(
                *server.address, user="hq", password="pw",
                auth=CleartextAuth({"hq": "pw"}),
            )
            with gateway:
                assert gateway.run_sql("SELECT 1").rows == [(1,)]
            bad = NetworkGateway(
                *server.address, user="hq", password="wrong",
                auth=CleartextAuth({"hq": "pw"}),
            )
            with pytest.raises(AuthenticationError):
                bad.connect()

    def test_md5_auth(self):
        engine = Engine()
        server = PgWireServer(engine, auth=Md5Auth({"hq": "pw"}))
        with server:
            auth = Md5Auth({"hq": "pw"})
            with NetworkGateway(
                *server.address, user="hq", password="pw", auth=auth
            ) as gateway:
                assert gateway.run_sql("SELECT 1").rows == [(1,)]

    def test_kerberos_stub_auth(self):
        engine = Engine()
        auth = KerberosStubAuth(b"realm", principals={"svc_hq"})
        server = PgWireServer(engine, auth=auth)
        with server:
            with NetworkGateway(
                *server.address, user="svc_hq", auth=auth
            ) as gateway:
                assert gateway.run_sql("SELECT 1").rows == [(1,)]


class TestFullStack:
    """Q app -> QIPC -> Hyper-Q -> PG v3 wire -> PG server, per Figure 1."""

    def test_three_tier_deployment(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        with PgWireServer(engine) as pg_server:
            gateway = NetworkGateway(*pg_server.address).connect()
            try:
                hyperq = HyperQServer(backend=gateway)
                with hyperq:
                    with QConnection(*hyperq.address) as q:
                        result = q.query(
                            "select sum Size by Symbol from trades"
                        )
                        flat = result.unkey()
                        assert flat.column("Symbol").items == ["GOOG", "IBM"]
                        assert flat.column("Size").items == [40, 20]
            finally:
                gateway.close()

    def test_three_tier_temp_table_workflow(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        with PgWireServer(engine) as pg_server:
            gateway = NetworkGateway(*pg_server.address).connect()
            try:
                with HyperQServer(backend=gateway) as hyperq:
                    with QConnection(*hyperq.address) as q:
                        q.query("dt: select from trades where Price > 60")
                        result = q.query("exec max Price from dt")
                        assert result == QAtom(QType.FLOAT, 101.0)
            finally:
                gateway.close()
