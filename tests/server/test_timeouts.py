"""Configurable connect/read timeouts on the QIPC client and the PG-wire
gateway, plumbed from WlmConfig (no more hard-coded 10.0s literals)."""

import pytest

from repro.config import HyperQConfig, WlmConfig
from repro.errors import DeadlineExceededError
from repro.qlang.interp import Interpreter
from repro.server.client import QConnection
from repro.server.gateway import NetworkGateway
from repro.server.hyperq_server import HyperQServer
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.wlm.deadline import Deadline, request_scope
from repro.workload.loader import load_q_source

SOURCE = "trades: ([] Symbol:`GOOG`IBM; Price:100.0 50.0; Size:10 20)"


@pytest.fixture()
def pg_server():
    engine = Engine()
    engine.execute("CREATE TABLE t (a bigint)")
    engine.execute("INSERT INTO t VALUES (1)")
    server = PgWireServer(engine)
    server.start()
    yield server
    server.stop()


class TestGatewayTimeouts:
    def test_defaults_preserved(self):
        gateway = NetworkGateway("127.0.0.1", 5432)
        assert gateway.connect_timeout == 10.0
        assert gateway.read_timeout is None

    def test_configured_timeouts_applied_to_socket(self, pg_server):
        gateway = NetworkGateway(
            *pg_server.address, connect_timeout=2.0, read_timeout=3.0
        ).connect()
        try:
            assert gateway._sock.gettimeout() == 3.0
            assert gateway.run_sql("SELECT a FROM t").rows == [(1,)]
        finally:
            gateway.close()

    def test_wlm_config_plumbs_gateway_timeouts(self, pg_server):
        config = WlmConfig(connect_timeout=2.5, read_timeout=4.0)
        gateway = NetworkGateway(
            *pg_server.address, **config.gateway_timeouts()
        )
        assert gateway.connect_timeout == 2.5
        assert gateway.read_timeout == 4.0
        # read_timeout=0 means "no read timeout" (blocking socket)
        unbounded = WlmConfig(read_timeout=0.0).gateway_timeouts()
        assert unbounded["read_timeout"] is None

    def test_expired_deadline_fails_before_sending(self, pg_server):
        gateway = NetworkGateway(*pg_server.address).connect()
        try:
            expired = Deadline(expires_at=-1.0, clock=lambda: 0.0)
            with request_scope(expired):
                with pytest.raises(DeadlineExceededError):
                    gateway.run_sql("SELECT a FROM t")
            # the connection was never dirtied: it still works
            assert gateway.run_sql("SELECT a FROM t").rows == [(1,)]
        finally:
            gateway.close()

    def test_socket_timeout_expiry_names_the_stage(
        self, pg_server, monkeypatch
    ):
        """A deadline-driven socket timeout raises a real error (message,
        ``what``) and bumps the deadline-exceeded counter, same as the
        cooperative Deadline.check paths."""
        from repro.wlm.deadline import DEADLINE_EXCEEDED

        gateway = NetworkGateway(*pg_server.address).connect()
        try:
            now = [0.0]
            deadline = Deadline(expires_at=1.0, clock=lambda: now[0])

            def stall(sql):
                now[0] = 2.0  # deadline expires mid-read
                raise TimeoutError("timed out")

            monkeypatch.setattr(gateway, "_collect_result", stall)
            before = DEADLINE_EXCEEDED.value(what="gateway.read")
            with request_scope(deadline):
                with pytest.raises(DeadlineExceededError) as err:
                    gateway.run_sql("SELECT a FROM t")
            assert err.value.what == "gateway.read"
            assert "deadline exceeded" in str(err.value)
            assert DEADLINE_EXCEEDED.value(what="gateway.read") == before + 1
        finally:
            gateway.close()

    def test_deadline_caps_the_read_timeout(self, pg_server):
        gateway = NetworkGateway(
            *pg_server.address, read_timeout=30.0
        ).connect()
        try:
            with request_scope(Deadline.after(5.0)):
                gateway.run_sql("SELECT a FROM t")
            # after the scoped statement the socket timeout is restored
            assert gateway._sock.gettimeout() == 30.0
        finally:
            gateway.close()


class TestClientTimeouts:
    def test_defaults_preserved(self):
        q = QConnection("127.0.0.1", 5000)
        assert q.connect_timeout == 10.0
        assert q.read_timeout is None

    def test_configured_timeouts_applied(self):
        engine = Engine()
        load_q_source(engine, Interpreter(), SOURCE, ["trades"])
        with HyperQServer(engine=engine) as server:
            q = QConnection(
                *server.address, connect_timeout=2.0, read_timeout=5.0
            ).connect()
            try:
                assert q._sock.gettimeout() == 5.0
                assert q.query("count select from trades").value == 2
            finally:
                q.close()

    def test_connect_timeout_respected(self):
        # RFC 5737 TEST-NET address: unroutable, so connect must time out
        q = QConnection("192.0.2.1", 9999, connect_timeout=0.1)
        with pytest.raises(OSError):
            q.connect()


class TestHyperQConfigWlm:
    def test_wlm_config_reachable_from_hyperq_config(self):
        config = HyperQConfig()
        assert config.wlm.enabled
        assert config.wlm.connect_timeout == 10.0
        assert set(config.wlm.classes) == {
            "admin", "point_lookup", "analytical", "materializing",
        }
