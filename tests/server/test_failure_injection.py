"""Failure injection: the man-in-the-middle must degrade gracefully."""

import socket
import struct

import pytest

from repro.errors import QError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom
from repro.server.client import QConnection
from repro.server.gateway import NetworkGateway
from repro.server.hyperq_server import HyperQServer
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.workload.loader import load_q_source

SOURCE = "trades: ([] Symbol:`GOOG`IBM; Price:100.0 50.0; Size:10 20)"


def make_server():
    engine = Engine()
    load_q_source(engine, Interpreter(), SOURCE, ["trades"])
    return HyperQServer(engine=engine)


class TestEndpointResilience:
    def test_garbage_hello_does_not_kill_server(self):
        with make_server() as server:
            raw = socket.create_connection(server.address, timeout=5)
            raw.sendall(b"\xff" * 64 + b"\x00")
            raw.close()
            # the server must still accept well-formed clients
            with QConnection(*server.address) as q:
                assert q.query("1") == QAtom(QType.LONG, 1)

    def test_truncated_message_drops_only_that_connection(self):
        with make_server() as server:
            raw = socket.create_connection(server.address, timeout=5)
            raw.sendall(b"user\x03\x00")
            assert raw.recv(1)  # handshake accepted
            # header claims 100 bytes but the connection dies first
            raw.sendall(struct.pack("<BBBBI", 1, 1, 0, 0, 100))
            raw.close()
            with QConnection(*server.address) as q:
                assert q.query("1") == QAtom(QType.LONG, 1)

    def test_query_error_keeps_connection_alive(self):
        with make_server() as server:
            with QConnection(*server.address) as q:
                with pytest.raises(QError):
                    q.query("select from missing")
                assert q.query("count select from trades").value == 2

    def test_bad_query_payload_type_signalled(self):
        from repro.qipc.encode import encode_value
        from repro.qipc.messages import MessageType, QipcMessage, frame
        from repro.qipc.decode import decode_value
        from repro.server.common import recv_exact
        from repro.qipc.messages import read_message

        with make_server() as server:
            raw = socket.create_connection(server.address, timeout=5)
            raw.sendall(b"user\x03\x00")
            raw.recv(1)
            # send a long atom instead of the expected query string
            payload = encode_value(QAtom(QType.LONG, 42))
            raw.sendall(frame(QipcMessage(MessageType.SYNC, payload)))
            response = read_message(lambda n: recv_exact(raw, n))
            with pytest.raises(QError):
                decode_value(response.payload)
            raw.close()


class TestGatewayResilience:
    def test_backend_death_surfaces_as_error(self):
        engine = Engine()
        engine.execute("CREATE TABLE t (a bigint)")
        server = PgWireServer(engine)
        server.start()
        gateway = NetworkGateway(*server.address).connect()
        assert gateway.run_sql("SELECT 1").rows == [(1,)]
        server.stop()
        with pytest.raises((ConnectionError, OSError)):
            gateway.run_sql("SELECT 1")
        gateway.close()

    def test_sql_error_does_not_poison_connection(self):
        from repro.errors import SqlExecutionError

        engine = Engine()
        with PgWireServer(engine) as server:
            with NetworkGateway(*server.address) as gateway:
                for __ in range(3):
                    with pytest.raises(SqlExecutionError):
                        gateway.run_sql("SELECT * FROM nope")
                assert gateway.run_sql("SELECT 2").rows == [(2,)]


class TestLargeResults:
    def test_large_result_roundtrips_with_compression(self):
        """Results above the QIPC compression threshold survive the full
        socket round trip (frame flag, decompression, pivot)."""
        engine = Engine()
        interp = Interpreter()
        interp.eval_text("big: ([] v: til 20000)")
        load_q_source(engine, interp, "", ["big"])
        with HyperQServer(engine=engine) as server:
            with QConnection(*server.address) as q:
                result = q.query("select from big")
                assert len(result) == 20000
                assert result.column("v").items[:3] == [0, 1, 2]
                assert result.column("v").items[-1] == 19999
