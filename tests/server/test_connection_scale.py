"""Connection-scale stress tests for the event-loop server core.

The paper's motivation for Erlang actor FSMs is that one gateway holds
thousands of concurrent client connections; these tests prove the
reactor holds hundreds of *real* concurrent QIPC clients in-process with
correct per-session results, and that one misbehaving (slow-loris)
connection cannot stall anyone else — the property thread-per-connection
gave for free and an event loop must earn.
"""

import socket
import threading
import time

from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom
from repro.server.client import QConnection
from repro.server.hyperq_server import HyperQServer, KdbServer
from repro.sqlengine.engine import Engine

#: concurrent clients for the stress tests; hundreds is enough to prove
#: the loop shape without slowing the tier-1 suite
N_CLIENTS = 200
#: queries each client runs
QUERIES_EACH = 3


class TestManyConcurrentClients:
    def test_hundreds_of_clients_all_get_correct_results(self):
        server = KdbServer()
        results: dict[int, list] = {}
        errors: list = []
        barrier = threading.Barrier(N_CLIENTS)

        def client(idx: int) -> None:
            try:
                barrier.wait(timeout=30)
                with QConnection(*server.address) as q:
                    mine = []
                    for round_no in range(QUERIES_EACH):
                        value = idx * 10 + round_no
                        mine.append(q.query(f"{value}+1"))
                    results[idx] = mine
            except Exception as exc:
                errors.append((idx, exc))

        with server:
            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors, f"{len(errors)} clients failed: {errors[:3]}"
        assert len(results) == N_CLIENTS
        for idx, values in results.items():
            expected = [
                QAtom(QType.LONG, idx * 10 + round_no + 1)
                for round_no in range(QUERIES_EACH)
            ]
            assert values == expected

    def test_sessions_stay_isolated_under_concurrency(self):
        """Each HyperQ connection keeps private locals while running
        concurrently with every other connection."""
        engine = Engine()
        engine.execute("CREATE TABLE base (x bigint)")
        engine.execute("INSERT INTO base VALUES (1), (2), (3)")
        server = HyperQServer(engine=engine)
        errors: list = []
        n = 32

        def client(idx: int) -> None:
            try:
                with QConnection(*server.address) as q:
                    q.query(f"mine: {idx}")
                    for __ in range(QUERIES_EACH):
                        got = q.query("mine")
                        assert got == QAtom(QType.LONG, idx), got
            except Exception as exc:
                errors.append((idx, exc))

        with server:
            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(n)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors, f"{len(errors)} clients failed: {errors[:3]}"


class TestSlowLoris:
    def test_stalled_connection_does_not_block_others(self):
        """A client dribbling one byte of its hello at a time holds a
        connection open but must never delay other sessions' queries
        (with a blocking accept loop it would wedge the whole server)."""
        server = KdbServer()
        with server:
            loris = socket.create_connection(server.address)
            try:
                # park a half-finished hello on the server
                loris.sendall(b"u")
                latencies = []
                for i in range(5):
                    started = time.perf_counter()
                    with QConnection(*server.address) as q:
                        assert q.query(f"{i}+{i}") == QAtom(QType.LONG, 2 * i)
                    latencies.append(time.perf_counter() - started)
                    # keep the loris dribbling between healthy sessions
                    loris.sendall(b"x")
                # healthy traffic is answered promptly while the loris
                # connection is still open and incomplete
                assert max(latencies) < 5.0
            finally:
                loris.close()

    def test_slow_loris_mid_frame_does_not_block_others(self):
        """A stalled *query frame* (header promised, body withheld) must
        not block other sessions either."""
        from repro.qipc.handshake import Credentials, client_hello

        server = KdbServer()
        with server:
            loris = socket.create_connection(server.address)
            try:
                loris.sendall(client_hello(Credentials("u", "p")))
                loris.recv(1)  # the ack
                # promise a 64-byte message, send only the header
                import struct

                loris.sendall(struct.pack("<BBBBI", 1, 1, 0, 0, 64))
                for i in range(3):
                    with QConnection(*server.address) as q:
                        assert q.query("7*7") == QAtom(QType.LONG, 49)
            finally:
                loris.close()
