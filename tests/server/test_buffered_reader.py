"""Tests for :class:`repro.server.common.BufferedSocketReader`.

The buffered reader is the substrate of the streaming data plane: both
PG-wire sides and the QIPC endpoints read through it, so its blocking,
timeout, and close semantics must match bare ``recv_exact`` exactly.
"""

import socket
import threading

import pytest

from repro.server.common import BufferedSocketReader, recv_exact


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestTake:
    def test_exact_read(self, pair):
        left, right = pair
        right.sendall(b"hello world")
        reader = BufferedSocketReader(left)
        assert reader.take(5) == b"hello"
        assert reader.take(6) == b" world"

    def test_many_frames_from_one_recv(self, pair):
        left, right = pair
        right.sendall(b"ab" * 500)
        reader = BufferedSocketReader(left)
        chunks = [reader.take(2) for __ in range(500)]
        assert chunks == [b"ab"] * 500
        # everything after the first take was served from the buffer
        assert reader.buffered() == 0

    def test_spans_partial_deliveries(self, pair):
        left, right = pair
        reader = BufferedSocketReader(left)

        def dribble():
            for piece in (b"ab", b"cd", b"ef"):
                right.sendall(piece)

        thread = threading.Thread(target=dribble)
        thread.start()
        assert reader.take(6) == b"abcdef"
        thread.join()

    def test_zero_bytes(self, pair):
        left, __ = pair
        assert BufferedSocketReader(left).take(0) == b""

    def test_peer_close_raises_connection_error(self, pair):
        left, right = pair
        right.sendall(b"abc")
        right.close()
        reader = BufferedSocketReader(left)
        with pytest.raises(ConnectionError):
            reader.take(10)

    def test_recv_exact_alias_is_drop_in(self, pair):
        left, right = pair
        right.sendall(b"xyz")
        reader = BufferedSocketReader(left)
        # same calling convention as functools.partial(recv_exact, sock)
        assert reader.recv_exact(3) == b"xyz"

    def test_matches_bare_recv_exact(self, pair):
        left, right = pair
        right.sendall(b"0123456789")
        reader = BufferedSocketReader(left)
        assert reader.take(4) == b"0123"
        # remaining bytes are in the reader's buffer, not the socket
        assert reader.take(6) == b"456789"
        right.sendall(b"tail")
        assert recv_exact(left, 4) == b"tail"


class TestTimeouts:
    def test_timeout_leaves_buffered_bytes_intact(self, pair):
        left, right = pair
        left.settimeout(0.05)
        reader = BufferedSocketReader(left)
        right.sendall(b"par")
        with pytest.raises((socket.timeout, TimeoutError)):
            reader.take(6)
        # the partial delivery was not lost: completing the send lets the
        # same request succeed (same contract as bare recv loops)
        right.sendall(b"tial!")
        left.settimeout(None)
        assert reader.take(6) == b"partia"

    def test_no_socket_touch_when_buffer_satisfies(self, pair):
        left, right = pair
        right.sendall(b"buffered")
        reader = BufferedSocketReader(left)
        assert reader.take(4) == b"buff"
        # nothing else on the wire; a buffered read must not block even
        # with no timeout configured
        left.settimeout(0.05)
        assert reader.take(4) == b"ered"


class TestTakeUntil:
    def test_includes_delimiter(self, pair):
        left, right = pair
        right.sendall(b"user:pw\x03\x00rest")
        reader = BufferedSocketReader(left)
        assert reader.take_until(b"\x00") == b"user:pw\x03\x00"
        assert reader.take(4) == b"rest"

    def test_limit_enforced(self, pair):
        left, right = pair
        right.sendall(b"a" * 2048)
        reader = BufferedSocketReader(left, recv_size=4096)
        with pytest.raises(ConnectionError):
            reader.take_until(b"\x00", limit=1024)
