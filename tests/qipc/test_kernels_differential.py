"""Differential tests: batched QIPC kernels vs the scalar reference.

The batched encoder must be byte-for-byte identical to the retained
per-element reference for every Q vector type — including typed nulls,
NaN-coded nulls, empty vectors, booleans of odd truthiness, and
multi-byte UTF-8 symbols — and every encoding must round-trip through
the batched decoder.
"""

import math
import struct

import pytest

from repro.errors import ProtocolError
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_value
from repro.qipc.kernels import (
    INT_NULLS,
    STRUCT_CODES,
    guid_bytes,
    pack_fixed,
    pack_fixed_reference,
    reference_encode_vector,
    unpack_fixed,
    unpack_symbols,
)
from repro.qlang.qtypes import (
    NULL_INT,
    NULL_LONG,
    NULL_SHORT,
    QType,
)
from repro.qlang.values import QTable, QVector, q_match

#: one representative payload per vector type, exercising negatives,
#: nulls, NaN and boundary values
VECTOR_CASES = [
    QVector(QType.BOOLEAN, [True, False, True, 1, 0]),
    QVector(QType.BYTE, [0, 1, 127, 255]),
    QVector(QType.SHORT, [0, -1, 32767, NULL_SHORT]),
    QVector(QType.INT, [0, -1, 2**31 - 1, NULL_INT]),
    QVector(QType.LONG, [0, -1, 2**63 - 1, NULL_LONG]),
    QVector(QType.REAL, [0.0, -1.5, float("nan"), float("inf")]),
    QVector(QType.FLOAT, [0.0, 3.14159, float("nan"), float("-inf")]),
    QVector(QType.TIMESTAMP, [0, 86_400_000_000_000, NULL_LONG]),
    QVector(QType.MONTH, [0, 12, -12, NULL_INT]),
    QVector(QType.DATE, [0, 7305, -365, NULL_INT]),
    QVector(QType.DATETIME, [0.0, 1.5, float("nan")]),
    QVector(QType.TIMESPAN, [0, 1_000_000_000, NULL_LONG]),
    QVector(QType.MINUTE, [0, 90, NULL_INT]),
    QVector(QType.SECOND, [0, 3600, NULL_INT]),
    QVector(QType.TIME, [0, 43_200_000, NULL_INT]),
    QVector(QType.SYMBOL, ["abc", "", "naïve", "株式会社", "a b"]),
    QVector(QType.CHAR, list("hello")),
    QVector(
        QType.GUID,
        [
            "00000000-0000-0000-0000-000000000000",
            "deadbeef-cafe-babe-f00d-0123456789ab",
        ],
    ),
]

_IDS = [case.qtype.name for case in VECTOR_CASES]


class TestEncoderDifferential:
    @pytest.mark.parametrize("vector", VECTOR_CASES, ids=_IDS)
    def test_batched_matches_reference(self, vector):
        assert encode_value(vector) == reference_encode_vector(vector)

    @pytest.mark.parametrize(
        "qtype",
        sorted(set(STRUCT_CODES), key=lambda t: t.code),
        ids=lambda t: t.name,
    )
    def test_empty_vector_matches_reference(self, qtype):
        vector = QVector(qtype, [])
        assert encode_value(vector) == reference_encode_vector(vector)

    @pytest.mark.parametrize(
        "qtype", sorted(INT_NULLS, key=lambda t: t.code), ids=lambda t: t.name
    )
    def test_nan_coded_null_in_integral_vector(self, qtype):
        # the engine encodes SQL NULL as the qtype's null; a float NaN
        # leaking into an integral vector must hit the normalizing
        # fallback and still match the reference
        vector = QVector(qtype, [1, float("nan"), 2])
        assert encode_value(vector) == reference_encode_vector(vector)

    def test_floats_in_integral_vector_truncate_like_reference(self):
        vector = QVector(QType.LONG, [1.0, 2.9, -3.1])
        assert encode_value(vector) == reference_encode_vector(vector)

    def test_ints_in_float_vector(self):
        vector = QVector(QType.FLOAT, [1, 2, 3])
        assert encode_value(vector) == reference_encode_vector(vector)

    def test_boolean_truthiness_normalized(self):
        vector = QVector(QType.BOOLEAN, [5, 0, "", "x", None, True])
        encoded = encode_value(vector)
        assert encoded == reference_encode_vector(vector)
        assert encoded[6:] == bytes([1, 0, 0, 1, 0, 1])

    def test_pack_fixed_matches_scalar_reference_directly(self):
        for qtype, items in (
            (QType.LONG, list(range(-500, 500))),
            (QType.FLOAT, [i / 7 for i in range(1000)]),
            (QType.SHORT, [NULL_SHORT, 0, 1, -1] * 50),
        ):
            assert pack_fixed(qtype, items) == pack_fixed_reference(
                qtype, items
            )


class TestRoundTrips:
    @pytest.mark.parametrize("vector", VECTOR_CASES, ids=_IDS)
    def test_encode_decode_roundtrip(self, vector):
        decoded = decode_value(encode_value(vector))
        assert isinstance(decoded, QVector)
        assert decoded.qtype == vector.qtype
        assert q_match(decoded, decode_value(reference_encode_vector(vector)))

    def test_table_of_every_fixed_type_roundtrips(self):
        vectors = [
            QVector(case.qtype, list(case.items[:3]))
            for case in VECTOR_CASES[:5]
        ]
        columns = [vector.qtype.name.lower() for vector in vectors]
        table = QTable(columns, vectors)
        decoded = decode_value(encode_value(table))
        assert q_match(decoded, table)

    def test_unpack_fixed_truncation_raises(self):
        data = struct.pack("<3q", 1, 2, 3)
        with pytest.raises(ProtocolError):
            unpack_fixed(QType.LONG, data, 0, 4)

    def test_unpack_symbols_missing_terminator_raises(self):
        with pytest.raises(ProtocolError):
            unpack_symbols(b"abc\x00def", 0, 2)

    def test_unpack_symbols_offset_tracking(self):
        data = b"??a\x00\x00caf\xc3\xa9\x00tail"
        symbols, offset = unpack_symbols(data, 2, 3)
        assert symbols == ["a", "", "café"]
        assert data[offset:] == b"tail"

    def test_nan_survives_roundtrip(self):
        decoded = decode_value(
            encode_value(QVector(QType.FLOAT, [1.0, float("nan")]))
        )
        assert decoded.items[0] == 1.0
        assert math.isnan(decoded.items[1])


class TestGuidValidation:
    def test_valid_guid(self):
        assert guid_bytes("deadbeef-cafe-babe-f00d-0123456789ab") == (
            bytes.fromhex("deadbeefcafebabef00d0123456789ab")
        )

    def test_undashed_guid(self):
        assert (
            guid_bytes("deadbeefcafebabef00d0123456789ab")
            == bytes.fromhex("deadbeefcafebabef00d0123456789ab")
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "too-short",
            "",
            "deadbeef-cafe-babe-f00d-0123456789",  # 30 digits
            "deadbeef-cafe-babe-f00d-0123456789abcd",  # 34 digits
            "gggggggg-gggg-gggg-gggg-gggggggggggg",  # non-hex
        ],
    )
    def test_malformed_guid_raises_protocol_error(self, bad):
        # the old encoder silently ljust/truncated these onto the wire
        with pytest.raises(ProtocolError):
            guid_bytes(bad)

    def test_malformed_guid_in_vector_raises(self):
        with pytest.raises(ProtocolError):
            encode_value(QVector(QType.GUID, ["nope"]))
