"""Property-based tests: QIPC codec and compression round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qipc.compress import compress, decompress
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_value
from repro.qipc.messages import MessageType, QipcMessage, frame, unframe
from repro.qlang.qtypes import NULL_INT, QType
from repro.qlang.values import QAtom, QDict, QList, QTable, QVector, q_match

# -- value strategies -----------------------------------------------------------

longs = st.integers(min_value=-(2**62), max_value=2**62)
floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
symbols = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters="\x00`"),
    max_size=12,
)
booleans = st.booleans()


@st.composite
def atoms(draw):
    qtype = draw(
        st.sampled_from(
            [QType.LONG, QType.FLOAT, QType.SYMBOL, QType.BOOLEAN,
             QType.INT, QType.SHORT, QType.DATE, QType.TIME]
        )
    )
    if qtype == QType.LONG:
        return QAtom(qtype, draw(longs))
    if qtype == QType.FLOAT:
        return QAtom(qtype, draw(floats))
    if qtype == QType.SYMBOL:
        return QAtom(qtype, draw(symbols))
    if qtype == QType.BOOLEAN:
        return QAtom(qtype, draw(booleans))
    if qtype == QType.INT:
        return QAtom(qtype, draw(st.integers(NULL_INT, 2**31 - 1)))
    if qtype == QType.SHORT:
        return QAtom(qtype, draw(st.integers(-(2**15) + 1, 2**15 - 1)))
    if qtype == QType.DATE:
        return QAtom(qtype, draw(st.integers(-10_000, 40_000)))
    return QAtom(qtype, draw(st.integers(0, 86_399_999)))


@st.composite
def vectors(draw):
    qtype = draw(
        st.sampled_from([QType.LONG, QType.FLOAT, QType.SYMBOL, QType.BOOLEAN])
    )
    size = draw(st.integers(0, 30))
    if qtype == QType.LONG:
        items = draw(st.lists(longs, min_size=size, max_size=size))
    elif qtype == QType.FLOAT:
        items = draw(st.lists(floats, min_size=size, max_size=size))
    elif qtype == QType.SYMBOL:
        items = draw(st.lists(symbols, min_size=size, max_size=size))
    else:
        items = draw(st.lists(booleans, min_size=size, max_size=size))
    return QVector(qtype, items)


@st.composite
def tables(draw):
    n_cols = draw(st.integers(1, 4))
    n_rows = draw(st.integers(0, 10))
    names = [f"c{i}" for i in range(n_cols)]
    data = []
    for __ in range(n_cols):
        qtype = draw(st.sampled_from([QType.LONG, QType.FLOAT, QType.SYMBOL]))
        if qtype == QType.LONG:
            col = draw(st.lists(longs, min_size=n_rows, max_size=n_rows))
        elif qtype == QType.FLOAT:
            col = draw(st.lists(floats, min_size=n_rows, max_size=n_rows))
        else:
            col = draw(st.lists(symbols, min_size=n_rows, max_size=n_rows))
        data.append(QVector(qtype, col))
    return QTable(names, data)


q_values = st.one_of(
    atoms(),
    vectors(),
    tables(),
    st.lists(atoms(), max_size=6).map(QList),
)


# -- properties -----------------------------------------------------------------


@given(q_values)
@settings(max_examples=200, deadline=None)
def test_qipc_object_roundtrip(value):
    assert q_match(decode_value(encode_value(value)), value)


@given(q_values, st.sampled_from(list(MessageType)))
@settings(max_examples=100, deadline=None)
def test_qipc_frame_roundtrip(value, msg_type):
    framed = frame(QipcMessage(msg_type, encode_value(value)))
    message = unframe(framed)
    assert message.msg_type == msg_type
    assert q_match(decode_value(message.payload), value)


@given(st.binary(max_size=4096))
@settings(max_examples=300, deadline=None)
def test_compression_roundtrip(data):
    assert decompress(compress(data)) == data


@given(st.binary(min_size=1, max_size=64), st.integers(1, 200))
@settings(max_examples=100, deadline=None)
def test_compression_roundtrip_repetitive(chunk, repeats):
    data = chunk * repeats
    packed = compress(data)
    assert decompress(packed) == data


@given(vectors())
@settings(max_examples=100, deadline=None)
def test_dict_roundtrip(values):
    keys = QVector(QType.SYMBOL, [f"k{i}" for i in range(len(values))])
    value = QDict(keys, values)
    assert q_match(decode_value(encode_value(value)), value)
