"""Tests for the QIPC wire protocol: codec, framing, compression, handshake."""

import math
import struct

import pytest

from repro.errors import AuthenticationError, ProtocolError, QError
from repro.qipc.compress import compress, decompress
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_error, encode_value
from repro.qipc.handshake import (
    AllowAll,
    Credentials,
    UserPassword,
    client_hello,
    parse_hello,
    server_ack,
)
from repro.qipc.messages import (
    HEADER_SIZE,
    MessageType,
    QipcMessage,
    frame,
    unframe,
)
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QVector,
    q_match,
)


def roundtrip(value):
    return decode_value(encode_value(value))


class TestObjectCodec:
    def test_long_atom(self):
        assert roundtrip(QAtom(QType.LONG, 42)) == QAtom(QType.LONG, 42)

    def test_negative_long(self):
        assert roundtrip(QAtom(QType.LONG, -7)) == QAtom(QType.LONG, -7)

    def test_long_null(self):
        assert roundtrip(QAtom(QType.LONG, NULL_LONG)).is_null

    def test_float_atom(self):
        assert roundtrip(QAtom(QType.FLOAT, 1.5)).value == 1.5

    def test_float_nan(self):
        assert math.isnan(roundtrip(QAtom(QType.FLOAT, float("nan"))).value)

    def test_boolean(self):
        assert roundtrip(QAtom(QType.BOOLEAN, True)).value is True

    def test_symbol(self):
        assert roundtrip(QAtom(QType.SYMBOL, "GOOG")).value == "GOOG"

    def test_empty_symbol(self):
        assert roundtrip(QAtom(QType.SYMBOL, "")).value == ""

    def test_char(self):
        assert roundtrip(QAtom(QType.CHAR, "x")).value == "x"

    def test_temporal_atoms(self):
        for qtype, raw in [
            (QType.DATE, 6021),
            (QType.TIME, 34_200_000),
            (QType.TIMESTAMP, 520_300_000_000_000_000),
            (QType.MINUTE, 570),
        ]:
            atom = QAtom(qtype, raw)
            assert roundtrip(atom) == atom

    def test_long_vector(self):
        vec = QVector(QType.LONG, [1, 2, 3])
        assert roundtrip(vec) == vec

    def test_symbol_vector(self):
        vec = QVector(QType.SYMBOL, ["a", "bb", "ccc"])
        assert roundtrip(vec) == vec

    def test_char_vector_is_string(self):
        vec = QVector(QType.CHAR, list("hello"))
        assert roundtrip(vec) == vec

    def test_boolean_vector(self):
        vec = QVector(QType.BOOLEAN, [True, False, True])
        assert roundtrip(vec) == vec

    def test_empty_vector(self):
        vec = QVector(QType.FLOAT, [])
        assert roundtrip(vec) == vec

    def test_general_list(self):
        value = QList([QAtom(QType.LONG, 1), QAtom(QType.SYMBOL, "x")])
        assert q_match(roundtrip(value), value)

    def test_dict(self):
        value = QDict(
            QVector(QType.SYMBOL, ["a", "b"]), QVector(QType.LONG, [1, 2])
        )
        assert q_match(roundtrip(value), value)

    def test_table_column_oriented(self):
        table = QTable(
            ["c1", "c2"],
            [QVector(QType.LONG, [1, 2]), QVector(QType.LONG, [1, 2])],
        )
        payload = encode_value(table)
        # figure 5: type 98, attributes, then a dict (99) of columns
        assert payload[0] == 98
        assert payload[2] == 99
        assert q_match(decode_value(payload), table)

    def test_keyed_table(self):
        keyed = QKeyedTable(
            QTable(["k"], [QVector(QType.SYMBOL, ["a", "b"])]),
            QTable(["v"], [QVector(QType.LONG, [1, 2])]),
        )
        assert q_match(roundtrip(keyed), keyed)

    def test_nested_list_of_vectors(self):
        value = QList(
            [QVector(QType.LONG, [1, 2]), QVector(QType.SYMBOL, ["x"])]
        )
        assert q_match(roundtrip(value), value)

    def test_error_response_raises(self):
        with pytest.raises(QError) as excinfo:
            decode_value(encode_error("type"))
        assert excinfo.value.signal == "type"

    def test_truncated_payload(self):
        payload = encode_value(QVector(QType.LONG, [1, 2, 3]))
        with pytest.raises(ProtocolError):
            decode_value(payload[:-2])


class TestFraming:
    def test_roundtrip_sync(self):
        payload = encode_value(QAtom(QType.LONG, 1))
        framed = frame(QipcMessage(MessageType.SYNC, payload))
        message = unframe(framed)
        assert message.msg_type == MessageType.SYNC
        assert message.payload == payload

    def test_header_layout(self):
        payload = b"abc"
        framed = frame(QipcMessage(MessageType.RESPONSE, payload))
        endian, mtype, compressed, __, total = struct.unpack(
            "<BBBBI", framed[:HEADER_SIZE]
        )
        assert endian == 1
        assert mtype == 2
        assert compressed == 0
        assert total == len(framed)

    def test_large_payload_compressed(self):
        vec = QVector(QType.LONG, [7] * 5000)
        payload = encode_value(vec)
        framed = frame(QipcMessage(MessageType.RESPONSE, payload))
        assert framed[2] == 1  # compressed flag
        assert len(framed) < len(payload)
        assert q_match(decode_value(unframe(framed).payload), vec)

    def test_compression_can_be_disabled(self):
        payload = encode_value(QVector(QType.LONG, [7] * 5000))
        framed = frame(
            QipcMessage(MessageType.RESPONSE, payload), allow_compression=False
        )
        assert framed[2] == 0

    def test_bad_length_rejected(self):
        payload = encode_value(QAtom(QType.LONG, 1))
        framed = bytearray(frame(QipcMessage(MessageType.SYNC, payload)))
        framed[4] = 0xFF
        with pytest.raises(ProtocolError):
            unframe(bytes(framed))


class TestCompression:
    def test_roundtrip_repetitive(self):
        data = b"abcabcabc" * 500
        packed = compress(data)
        assert decompress(packed) == data
        assert len(packed) < len(data)

    def test_roundtrip_incompressible(self):
        data = bytes(range(256)) * 4
        assert decompress(compress(data)) == data

    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_single_byte(self):
        assert decompress(compress(b"x")) == b"x"

    def test_long_single_run(self):
        data = b"\x00" * 10_000
        packed = compress(data)
        assert decompress(packed) == data
        assert len(packed) < 400

    def test_truncated_raises(self):
        packed = compress(b"hello world hello world hello world")
        with pytest.raises(ProtocolError):
            decompress(packed[: len(packed) // 2])


class TestHandshake:
    def test_hello_roundtrip(self):
        hello = client_hello(Credentials("alice", "secret"))
        parsed = parse_hello(hello)
        assert parsed.username == "alice"
        assert parsed.password == "secret"
        assert parsed.capability == 3

    def test_hello_without_password(self):
        parsed = parse_hello(b"bob\x03\x00")
        assert parsed.username == "bob"
        assert parsed.password == ""

    def test_server_ack_negotiates_down(self):
        assert server_ack(6) == bytes([3])
        assert server_ack(1) == bytes([1])

    def test_allow_all(self):
        AllowAll().authenticate(Credentials("anyone", "pw"))

    def test_user_password_rejects(self):
        auth = UserPassword({"alice": "secret"})
        auth.authenticate(Credentials("alice", "secret"))
        with pytest.raises(AuthenticationError):
            auth.authenticate(Credentials("alice", "wrong"))
        with pytest.raises(AuthenticationError):
            auth.authenticate(Credentials("mallory", "secret"))

    def test_malformed_hello(self):
        with pytest.raises(ProtocolError):
            parse_hello(b"no-terminator")
