"""Suite-wide test configuration.

The static-analysis subsystem (``repro.analysis``) is off by default in
production but on throughout the test suite: every statement the tests
push through a pipeline also runs the qcheck rules and the XTRA invariant
checker, so a rewrite bug or analyzer false positive fails loudly here
first.  Benchmarks keep their own conftest and stay un-instrumented (the
obs-overhead budget is measured without analysis).

Set before ``repro.config`` can be imported: ``AnalysisConfig.enabled``
reads the environment at dataclass-default time.
"""

import os

os.environ.setdefault("REPRO_ANALYSIS", "1")
