"""Suite-wide test configuration.

The static-analysis subsystem (``repro.analysis``) is off by default in
production but on throughout the test suite: every statement the tests
push through a pipeline also runs the qcheck rules and the XTRA invariant
checker, so a rewrite bug or analyzer false positive fails loudly here
first.  Benchmarks keep their own conftest and stay un-instrumented (the
obs-overhead budget is measured without analysis).

Set before ``repro.config`` can be imported: ``AnalysisConfig.enabled``
reads the environment at dataclass-default time.

Under ``REPRO_LOCKCHECK=1`` (CI's wlm-faults and shard-matrix jobs) the
lock factories hand out instrumented :class:`OrderedLock` instances and
a session-teardown hook asserts the whole run recorded **zero
lock-order cycles** (CC005) — any ABBA pattern the suite exercises
fails the run with the cycle and its acquisition sites — and exports
the record as ``concurrency_*`` metrics.
"""

import os

import pytest

os.environ.setdefault("REPRO_ANALYSIS", "1")


@pytest.fixture(scope="session", autouse=True)
def _lockcheck_gate():
    """Fail the session if instrumented locks recorded any CC005 cycle."""
    from repro.analysis.concurrency.locks import (
        export_metrics,
        lockcheck_enabled,
        lockcheck_state,
    )

    yield
    if not lockcheck_enabled():
        return
    export_metrics()
    report = lockcheck_state().report()
    assert not report["cycles"], (
        "lock-order cycles recorded under REPRO_LOCKCHECK "
        f"(CC005): {report['cycles']}"
    )
