"""Unit tests for the engine catalog (DDL semantics, temp shadowing,
version bumps, pg_catalog emulation)."""

import pytest

from repro.errors import SqlCatalogError
from repro.sqlengine.catalog import Catalog, Column, Table
from repro.sqlengine.types import SqlType


def col(name, sql_type=SqlType.BIGINT):
    return Column(name, sql_type)


class TestCatalogDdl:
    def test_create_and_resolve(self):
        catalog = Catalog()
        catalog.create_table("t", [col("a")])
        assert isinstance(catalog.resolve("t"), Table)

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [col("a")])
        with pytest.raises(SqlCatalogError):
            catalog.create_table("t", [col("a")])

    def test_if_not_exists_idempotent(self):
        catalog = Catalog()
        first = catalog.create_table("t", [col("a")])
        again = catalog.create_table("t", [col("b")], if_not_exists=True)
        assert again is first

    def test_temp_shadows_permanent(self):
        catalog = Catalog()
        catalog.create_table("t", [col("perm")])
        catalog.create_table("t", [col("temp")], temporary=True)
        assert catalog.resolve("t").columns[0].name == "temp"
        catalog.drop_temp_tables()
        assert catalog.resolve("t").columns[0].name == "perm"

    def test_drop_unknown_raises(self):
        catalog = Catalog()
        with pytest.raises(SqlCatalogError):
            catalog.drop("missing")

    def test_drop_if_exists(self):
        Catalog().drop("missing", if_exists=True)

    def test_version_bumps_on_ddl(self):
        catalog = Catalog()
        v0 = catalog.version
        catalog.create_table("t", [col("a")])
        v1 = catalog.version
        catalog.drop("t")
        v2 = catalog.version
        assert v0 < v1 < v2

    def test_view_name_conflicts_with_table(self):
        catalog = Catalog()
        catalog.create_table("t", [col("a")])
        with pytest.raises(SqlCatalogError):
            catalog.create_view("t", query=None)

    def test_or_replace_view(self):
        catalog = Catalog()
        catalog.create_view("v", query="q1")
        catalog.create_view("v", query="q2", or_replace=True)
        assert catalog.resolve("v").query == "q2"

    def test_column_index(self):
        table = Table("t", [col("a"), col("b")])
        assert table.column_index("b") == 1
        with pytest.raises(SqlCatalogError):
            table.column_index("z")


class TestSystemCatalog:
    def test_pg_tables_lists_both_namespaces(self):
        catalog = Catalog()
        catalog.create_table("perm", [col("a")])
        catalog.create_table("tmp", [col("a")], temporary=True)
        rows = catalog.resolve("pg_tables").rows
        schemas = {(r[0], r[1]) for r in rows}
        assert ("public", "perm") in schemas
        assert ("pg_temp", "tmp") in schemas

    def test_information_schema_columns(self):
        catalog = Catalog()
        catalog.create_table(
            "t", [col("a", SqlType.BIGINT), col("b", SqlType.VARCHAR)]
        )
        rows = catalog.resolve("columns", schema="information_schema").rows
        mine = [r for r in rows if r[1] == "t"]
        assert [(r[2], r[4]) for r in mine] == [
            ("a", "bigint"), ("b", "varchar"),
        ]
        assert [r[3] for r in mine] == [1, 2]  # ordinal positions

    def test_pg_views(self):
        catalog = Catalog()
        catalog.create_view("v", query=None, sql="SELECT 1")
        rows = catalog.resolve("pg_views").rows
        assert rows == [["public", "v", "SELECT 1"]]

    def test_unknown_system_relation(self):
        with pytest.raises(SqlCatalogError):
            Catalog().resolve("pg_shadow")
