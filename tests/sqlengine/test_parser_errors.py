"""Negative and edge-case tests for the SQL parser and engine surface."""

import pytest

from repro.errors import SqlExecutionError, SqlSyntaxError
from repro.sqlengine.engine import Engine
from repro.sqlengine.parser import parse_one, parse_sql


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "INSERT INTO",
            "CREATE TABLE t",
            "SELECT a FROM t ORDER",
            "SELECT (a FROM t",
            "DELETE t",
            "UPDATE t SET",
        ],
    )
    def test_malformed_statements(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_one(bad)

    def test_dangling_not(self):
        with pytest.raises(SqlSyntaxError):
            parse_one("SELECT * FROM t WHERE a NOT 5")

    def test_two_statements_via_parse_one(self):
        with pytest.raises(SqlSyntaxError):
            parse_one("SELECT 1; SELECT 2")

    def test_empty_input(self):
        assert parse_sql("") == []
        assert parse_sql(" ; ; ") == []


class TestEngineEdges:
    @pytest.fixture()
    def engine(self):
        e = Engine()
        e.execute("CREATE TABLE t (a bigint, b varchar)")
        return e

    def test_select_without_from(self, engine):
        assert engine.execute("SELECT 1 + 1").scalar() == 2

    def test_empty_table_aggregate(self, engine):
        assert engine.execute("SELECT count(*) FROM t").scalar() == 0
        assert engine.execute("SELECT sum(a) FROM t").scalar() is None

    def test_group_by_empty_table_no_groups(self, engine):
        result = engine.execute("SELECT b, count(*) FROM t GROUP BY b")
        assert result.rows == []

    def test_unknown_column_error(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT zzz FROM t")

    def test_ambiguous_column_error(self, engine):
        engine.execute("CREATE TABLE u (a bigint)")
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT a FROM t, u")

    def test_qualified_resolves_ambiguity(self, engine):
        engine.execute("CREATE TABLE u (a bigint)")
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        engine.execute("INSERT INTO u VALUES (2)")
        result = engine.execute("SELECT t.a, u.a FROM t, u")
        assert result.rows == [(1, 2)]

    def test_scalar_subquery_multiple_rows_error(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT (SELECT a FROM t)")

    def test_aliased_subquery_scoping(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        result = engine.execute(
            "SELECT s.total FROM (SELECT sum(a) AS total FROM t) AS s"
        )
        assert result.rows == [(1,)]

    def test_case_without_else_defaults_null(self, engine):
        assert engine.execute(
            "SELECT CASE WHEN FALSE THEN 1 END"
        ).scalar() is None

    def test_simple_case_with_operand(self, engine):
        assert engine.execute(
            "SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END"
        ).scalar() == "b"

    def test_string_functions(self, engine):
        assert engine.execute("SELECT upper('ab')").scalar() == "AB"
        assert engine.execute("SELECT substring('hello', 2, 3)").scalar() == "ell"
        assert engine.execute("SELECT length('abc')").scalar() == 3

    def test_like_escaping_regex_chars(self, engine):
        assert engine.execute("SELECT 'a.c' LIKE 'a.c'").scalar() is True
        assert engine.execute("SELECT 'abc' LIKE 'a.c'").scalar() is False
        assert engine.execute("SELECT 'abc' LIKE 'a_c'").scalar() is True

    def test_order_by_alias(self, engine):
        engine.execute("INSERT INTO t VALUES (2, 'x'), (1, 'y')")
        result = engine.execute("SELECT a * 10 AS tens FROM t ORDER BY tens")
        assert [r[0] for r in result.rows] == [10, 20]

    def test_distinct_with_nulls(self, engine):
        engine.execute("INSERT INTO t VALUES (NULL, 'x'), (NULL, 'x')")
        result = engine.execute("SELECT DISTINCT a, b FROM t")
        assert result.rows == [(None, "x")]

    def test_truncate(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        engine.execute("TRUNCATE TABLE t")
        assert engine.execute("SELECT count(*) FROM t").scalar() == 0
