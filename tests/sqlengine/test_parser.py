"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlengine import sqlast as sa
from repro.sqlengine.lexer import SqlTokenKind, tokenize_sql
from repro.sqlengine.parser import parse_one, parse_sql
from repro.sqlengine.types import SqlType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("SeLeCt * FrOm t")
        assert tokens[0].kind == SqlTokenKind.KEYWORD
        assert tokens[0].value == "select"

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize_sql('"MixedCase"')
        assert tokens[0].kind == SqlTokenKind.IDENT
        assert tokens[0].value == "MixedCase"

    def test_unquoted_identifier_lowercased(self):
        tokens = tokenize_sql("MyTable")
        assert tokens[0].value == "mytable"

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("'it''s'")
        assert tokens[0].value == "it's"

    def test_line_comment(self):
        tokens = tokenize_sql("1 -- comment\n+ 2")
        kinds = [t.kind for t in tokens]
        assert SqlTokenKind.OPERATOR in kinds

    def test_block_comment(self):
        tokens = tokenize_sql("/* hi */ 42")
        assert tokens[0].kind == SqlTokenKind.NUMBER

    def test_numbers(self):
        assert tokenize_sql("42")[0].value == 42
        assert tokenize_sql("4.5")[0].value == 4.5
        assert tokenize_sql("1e3")[0].value == 1000.0

    def test_cast_operator(self):
        tokens = tokenize_sql("x::int")
        assert any(
            t.kind == SqlTokenKind.OPERATOR and t.text == "::" for t in tokens
        )

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize_sql("'oops")


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert isinstance(stmt, sa.Select)
        assert len(stmt.items) == 2

    def test_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, sa.Star)

    def test_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse_one("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_where_precedence(self):
        stmt = parse_one("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, sa.BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_group_by_having(self):
        stmt = parse_one(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_desc_nulls(self):
        stmt = parse_one("SELECT a FROM t ORDER BY a DESC NULLS FIRST")
        assert stmt.order_by[0].descending
        assert stmt.order_by[0].nulls_first is True

    def test_limit_offset(self):
        stmt = parse_one("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit.value == 10
        assert stmt.offset.value == 5

    def test_joins(self):
        stmt = parse_one(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y "
            "INNER JOIN c ON c.z = a.x"
        )
        outer_join = stmt.from_clause
        assert isinstance(outer_join, sa.Join)
        assert outer_join.kind == "inner"
        assert outer_join.left.kind == "left"

    def test_subquery_in_from(self):
        stmt = parse_one("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.from_clause, sa.SubqueryRef)
        assert stmt.from_clause.alias == "s"

    def test_union_all(self):
        stmt = parse_one("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.set_op == "union all"

    def test_distinct(self):
        stmt = parse_one("SELECT DISTINCT a FROM t")
        assert stmt.distinct

    def test_is_not_distinct_from(self):
        stmt = parse_one("SELECT * FROM t WHERE a IS NOT DISTINCT FROM b")
        assert stmt.where.op == "IS NOT DISTINCT FROM"

    def test_in_list(self):
        stmt = parse_one("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, sa.InList)

    def test_not_in(self):
        stmt = parse_one("SELECT * FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse_one("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, sa.Between)

    def test_like(self):
        stmt = parse_one("SELECT * FROM t WHERE a LIKE 'x%'")
        assert isinstance(stmt.where, sa.LikeOp)

    def test_case_expression(self):
        stmt = parse_one(
            "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t"
        )
        assert isinstance(stmt.items[0].expr, sa.Case)

    def test_cast_postfix(self):
        stmt = parse_one("SELECT a::bigint FROM t")
        cast = stmt.items[0].expr
        assert isinstance(cast, sa.Cast)
        assert cast.target == SqlType.BIGINT

    def test_cast_function(self):
        stmt = parse_one("SELECT CAST(a AS double precision) FROM t")
        assert stmt.items[0].expr.target == SqlType.DOUBLE

    def test_window_function(self):
        stmt = parse_one(
            "SELECT row_number() OVER (PARTITION BY a ORDER BY b DESC) FROM t"
        )
        window = stmt.items[0].expr
        assert isinstance(window, sa.WindowFunc)
        assert len(window.window.partition_by) == 1
        assert window.window.order_by[0].descending

    def test_window_frame_text(self):
        stmt = parse_one(
            "SELECT sum(x) OVER (ORDER BY y ROWS BETWEEN 2 PRECEDING AND "
            "CURRENT ROW) FROM t"
        )
        assert "2 preceding" in stmt.items[0].expr.window.frame

    def test_scalar_subquery(self):
        stmt = parse_one("SELECT (SELECT max(a) FROM t) FROM u")
        assert isinstance(stmt.items[0].expr, sa.ScalarSubquery)

    def test_exists(self):
        stmt = parse_one("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(stmt.where, sa.ExistsSubquery)

    def test_count_star(self):
        stmt = parse_one("SELECT count(*) FROM t")
        assert stmt.items[0].expr.star

    def test_schema_qualified_table(self):
        stmt = parse_one("SELECT * FROM information_schema.columns")
        assert stmt.from_clause.schema == "information_schema"


class TestDdlDmlParsing:
    def test_create_table(self):
        stmt = parse_one("CREATE TABLE t (a bigint, b varchar(10))")
        assert isinstance(stmt, sa.CreateTable)
        assert stmt.columns[0].sql_type == SqlType.BIGINT
        assert stmt.columns[1].sql_type == SqlType.VARCHAR

    def test_create_temp_table_as(self):
        stmt = parse_one("CREATE TEMPORARY TABLE t AS SELECT 1")
        assert isinstance(stmt, sa.CreateTableAs)
        assert stmt.temporary

    def test_create_view(self):
        stmt = parse_one("CREATE OR REPLACE VIEW v AS SELECT 1")
        assert isinstance(stmt, sa.CreateView)
        assert stmt.or_replace

    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, sa.Insert)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT * FROM u")
        assert stmt.query is not None

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, sa.Delete)

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = 2 WHERE c = 3")
        assert isinstance(stmt, sa.Update)
        assert len(stmt.assignments) == 2

    def test_drop_if_exists(self):
        stmt = parse_one("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_one("SELECT FROM WHERE")
