"""Unit tests for SQL types, casts, and three-valued-logic evaluation."""

import pytest

from repro.errors import SqlTypeError
from repro.sqlengine.engine import Engine
from repro.sqlengine.types import (
    SqlType,
    cast_value,
    promote,
    render_value,
    type_from_name,
)


class TestTypeNames:
    def test_aliases(self):
        assert type_from_name("int8") == SqlType.BIGINT
        assert type_from_name("float8") == SqlType.DOUBLE
        assert type_from_name("bool") == SqlType.BOOLEAN

    def test_length_arguments_ignored(self):
        assert type_from_name("varchar(255)") == SqlType.VARCHAR
        assert type_from_name("numeric(10,2)") == SqlType.NUMERIC

    def test_multiword(self):
        assert type_from_name("double precision") == SqlType.DOUBLE
        assert type_from_name("character varying") == SqlType.VARCHAR

    def test_unknown_raises(self):
        with pytest.raises(SqlTypeError):
            type_from_name("blob")


class TestPromotion:
    def test_numeric_widening(self):
        assert promote(SqlType.SMALLINT, SqlType.BIGINT) == SqlType.BIGINT
        assert promote(SqlType.BIGINT, SqlType.DOUBLE) == SqlType.DOUBLE

    def test_null_yields_other(self):
        assert promote(SqlType.NULL, SqlType.DATE) == SqlType.DATE

    def test_temporal_plus_numeric(self):
        assert promote(SqlType.DATE, SqlType.INTEGER) == SqlType.DATE

    def test_text_combines_to_text(self):
        assert promote(SqlType.VARCHAR, SqlType.CHAR) == SqlType.TEXT

    def test_incompatible(self):
        with pytest.raises(SqlTypeError):
            promote(SqlType.BOOLEAN, SqlType.DATE)


class TestCasts:
    def test_null_passthrough(self):
        assert cast_value(None, SqlType.BIGINT) is None

    def test_string_to_int(self):
        assert cast_value(" 42 ", SqlType.BIGINT) == 42

    def test_string_to_bool(self):
        assert cast_value("t", SqlType.BOOLEAN) is True
        assert cast_value("false", SqlType.BOOLEAN) is False
        with pytest.raises(SqlTypeError):
            cast_value("maybe", SqlType.BOOLEAN)

    def test_bool_to_text(self):
        assert cast_value(True, SqlType.TEXT) == "t"

    def test_date_text_roundtrip(self):
        days = cast_value("2016-06-26", SqlType.DATE)
        assert render_value(days, SqlType.DATE) == "2016-06-26"

    def test_time_text_roundtrip(self):
        millis = cast_value("09:30:00.123", SqlType.TIME)
        assert render_value(millis, SqlType.TIME) == "09:30:00.123"

    def test_timestamp_text_roundtrip(self):
        nanos = cast_value("2016-06-26 09:30:00.5", SqlType.TIMESTAMP)
        assert render_value(nanos, SqlType.TIMESTAMP).startswith(
            "2016-06-26 09:30:00.5"
        )


class TestThreeValuedLogic:
    @pytest.fixture()
    def engine(self):
        return Engine()

    def q(self, engine, expr):
        return engine.execute(f"SELECT {expr}").scalar()

    def test_null_comparisons_are_null(self, engine):
        assert self.q(engine, "NULL = 1") is None
        assert self.q(engine, "NULL <> 1") is None
        assert self.q(engine, "NULL < 1") is None

    def test_kleene_and(self, engine):
        assert self.q(engine, "FALSE AND NULL") is False
        assert self.q(engine, "TRUE AND NULL") is None
        assert self.q(engine, "NULL AND NULL") is None

    def test_kleene_or(self, engine):
        assert self.q(engine, "TRUE OR NULL") is True
        assert self.q(engine, "FALSE OR NULL") is None

    def test_not_null(self, engine):
        assert self.q(engine, "NOT NULL::boolean") is None

    def test_is_distinct_from(self, engine):
        assert self.q(engine, "NULL IS DISTINCT FROM 1") is True
        assert self.q(engine, "NULL IS DISTINCT FROM NULL") is False
        assert self.q(engine, "1 IS NOT DISTINCT FROM 1") is True

    def test_in_with_null_member(self, engine):
        assert self.q(engine, "1 IN (1, NULL)") is True
        assert self.q(engine, "2 IN (1, NULL)") is None

    def test_null_arithmetic(self, engine):
        assert self.q(engine, "1 + NULL") is None
        assert self.q(engine, "NULL * 0") is None

    def test_null_concat(self, engine):
        assert self.q(engine, "'a' || NULL") is None

    def test_between_with_null_bound(self, engine):
        assert self.q(engine, "1 BETWEEN NULL AND 2") is None

    def test_case_null_condition_not_taken(self, engine):
        assert self.q(engine, "CASE WHEN NULL THEN 1 ELSE 2 END") == 2

    def test_coalesce_chain(self, engine):
        assert self.q(engine, "coalesce(NULL, NULL, 3)") == 3

    def test_nullif(self, engine):
        assert self.q(engine, "nullif(5, 5)") is None
        assert self.q(engine, "nullif(5, 6)") == 5

    def test_like_null(self, engine):
        assert self.q(engine, "NULL LIKE 'a%'") is None

    def test_greatest_ignores_nulls(self, engine):
        assert self.q(engine, "greatest(1, NULL, 3)") == 3
