"""Integration tests for the SQL engine (executor + engine facade)."""

import math
from decimal import Decimal
from fractions import Fraction

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.engine import Engine
from repro.sqlengine.functions import AGGREGATES


@pytest.fixture()
def engine():
    e = Engine()
    e.execute(
        "CREATE TABLE trades (sym varchar, price double precision, "
        "size bigint, ordcol bigint)"
    )
    e.execute(
        "INSERT INTO trades VALUES "
        "('GOOG', 100.0, 10, 0), ('IBM', 50.0, 20, 1), "
        "('GOOG', 101.0, 30, 2), ('MSFT', NULL, 40, 3)"
    )
    return e


class TestBasics:
    def test_select_star(self, engine):
        result = engine.execute("SELECT * FROM trades")
        assert len(result.rows) == 4
        assert result.column_names == ["sym", "price", "size", "ordcol"]

    def test_projection_expression(self, engine):
        result = engine.execute("SELECT price * size AS n FROM trades WHERE sym='IBM'")
        assert result.rows == [(1000.0,)]

    def test_where_excludes_nulls(self, engine):
        result = engine.execute("SELECT sym FROM trades WHERE price > 0")
        assert len(result.rows) == 3  # NULL price row filtered

    def test_is_null(self, engine):
        result = engine.execute("SELECT sym FROM trades WHERE price IS NULL")
        assert result.rows == [("MSFT",)]

    def test_is_not_distinct_from_null(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades WHERE price IS NOT DISTINCT FROM NULL"
        )
        assert result.rows == [("MSFT",)]

    def test_order_by_nulls_last_by_default(self, engine):
        result = engine.execute("SELECT price FROM trades ORDER BY price")
        assert result.rows[-1] == (None,)

    def test_order_by_desc_nulls_first_by_default(self, engine):
        result = engine.execute("SELECT price FROM trades ORDER BY price DESC")
        assert result.rows[0] == (None,)

    def test_order_by_ordinal(self, engine):
        result = engine.execute("SELECT sym FROM trades ORDER BY 1")
        assert result.rows[0] == ("GOOG",)

    def test_limit_offset(self, engine):
        result = engine.execute(
            "SELECT ordcol FROM trades ORDER BY ordcol LIMIT 2 OFFSET 1"
        )
        assert result.rows == [(1,), (2,)]

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT sym FROM trades ORDER BY sym")
        assert [r[0] for r in result.rows] == ["GOOG", "IBM", "MSFT"]

    def test_case(self, engine):
        result = engine.execute(
            "SELECT CASE WHEN size >= 20 THEN 'big' ELSE 'small' END "
            "FROM trades ORDER BY ordcol"
        )
        assert [r[0] for r in result.rows] == ["small", "big", "big", "big"]

    def test_integer_division_truncates(self, engine):
        assert engine.execute("SELECT 7 / 2").scalar() == 3

    def test_division_by_zero_raises(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT 1 / 0")


class TestAggregation:
    def test_count_star(self, engine):
        assert engine.execute("SELECT count(*) FROM trades").scalar() == 4

    def test_count_column_skips_nulls(self, engine):
        assert engine.execute("SELECT count(price) FROM trades").scalar() == 3

    def test_sum_avg(self, engine):
        assert engine.execute("SELECT sum(size) FROM trades").scalar() == 100
        assert engine.execute("SELECT avg(size) FROM trades").scalar() == 25.0

    def test_group_by(self, engine):
        result = engine.execute(
            "SELECT sym, sum(size) FROM trades GROUP BY sym ORDER BY sym"
        )
        assert result.rows == [("GOOG", 40), ("IBM", 20), ("MSFT", 40)]

    def test_group_preserves_first_appearance_before_order(self, engine):
        result = engine.execute("SELECT sym, count(*) FROM trades GROUP BY sym")
        assert [r[0] for r in result.rows] == ["GOOG", "IBM", "MSFT"]

    def test_having(self, engine):
        result = engine.execute(
            "SELECT sym, sum(size) s FROM trades GROUP BY sym HAVING sum(size) > 25"
        )
        assert {r[0] for r in result.rows} == {"GOOG", "MSFT"}

    def test_empty_scalar_aggregate(self, engine):
        result = engine.execute("SELECT max(price) FROM trades WHERE size > 999")
        assert result.rows == [(None,)]

    def test_first_last_keep_row_order(self, engine):
        assert engine.execute("SELECT first(sym) FROM trades").scalar() == "GOOG"
        assert engine.execute("SELECT last(sym) FROM trades").scalar() == "MSFT"

    def test_last_sees_nulls(self, engine):
        assert engine.execute("SELECT last(price) FROM trades").scalar() is None

    def test_stddev(self, engine):
        value = engine.execute("SELECT stddev_pop(size) FROM trades").scalar()
        assert value == pytest.approx(11.18033988749895)

    def test_aggregate_outside_group_raises(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT sym FROM trades WHERE sum(size) > 1")

    def test_avg_with_mixed_infinities_is_nan(self):
        # fsum raises on inf + -inf; the fallback must re-sum the whole
        # input, not resume the partially consumed generator
        assert math.isnan(
            AGGREGATES["avg"]([float("inf"), float("-inf"), 5.0])
        )
        assert math.isnan(
            AGGREGATES["stddev"]([float("inf"), float("-inf"), 5.0])
        )

    def test_sum_exact_with_non_binary_denominators(self):
        # Decimal/Fraction denominators are not powers of two: the
        # binary-shift accumulator must hand off to rational arithmetic
        assert AGGREGATES["sum_exact"]([Decimal("0.1")] * 3) == Fraction(3, 10)
        assert AGGREGATES["sum_exact"](
            [Fraction(1, 3), Fraction(1, 6)]
        ) == Fraction(1, 2)
        # non-finite values still degrade to float semantics
        assert AGGREGATES["sum_exact"](
            [Decimal("0.1"), float("inf")]
        ) == float("inf")


class TestJoins:
    @pytest.fixture(autouse=True)
    def quotes(self, engine):
        engine.execute("CREATE TABLE q (sym varchar, bid double precision)")
        engine.execute(
            "INSERT INTO q VALUES ('GOOG', 99.0), ('IBM', 49.0), ('TSLA', 1.0)"
        )

    def test_inner_join(self, engine):
        result = engine.execute(
            "SELECT t.sym, q.bid FROM trades t JOIN q ON t.sym = q.sym"
        )
        assert len(result.rows) == 3  # two GOOG + one IBM

    def test_left_join_null_fill(self, engine):
        result = engine.execute(
            "SELECT t.sym, q.bid FROM trades t LEFT JOIN q ON t.sym = q.sym "
            "ORDER BY t.ordcol"
        )
        assert result.rows[3] == ("MSFT", None)

    def test_right_join(self, engine):
        result = engine.execute(
            "SELECT t.sym, q.sym FROM trades t RIGHT JOIN q ON t.sym = q.sym"
        )
        assert ("TSLA",) in {(r[1],) for r in result.rows}

    def test_cross_join_count(self, engine):
        result = engine.execute("SELECT * FROM trades CROSS JOIN q")
        assert len(result.rows) == 12

    def test_join_with_range_residual(self, engine):
        # the shape Hyper-Q emits for aj: equality + range conjunct
        result = engine.execute(
            "SELECT t.sym FROM trades t JOIN q ON t.sym = q.sym "
            "AND t.price > q.bid"
        )
        assert len(result.rows) == 3

    def test_null_keys_never_match_equality(self, engine):
        engine.execute("INSERT INTO q VALUES (NULL, 0.0)")
        engine.execute("INSERT INTO trades VALUES (NULL, 1.0, 1, 4)")
        result = engine.execute(
            "SELECT * FROM trades t JOIN q ON t.sym = q.sym"
        )
        assert len(result.rows) == 3


class TestWindows:
    def test_row_number(self, engine):
        result = engine.execute(
            "SELECT sym, row_number() OVER (ORDER BY ordcol) FROM trades"
        )
        assert [r[1] for r in result.rows] == [1, 2, 3, 4]

    def test_partitioned_lead(self, engine):
        result = engine.execute(
            "SELECT sym, lead(price) OVER (PARTITION BY sym ORDER BY ordcol) "
            "FROM trades ORDER BY ordcol"
        )
        by_row = [r[1] for r in result.rows]
        assert by_row == [101.0, None, None, None]

    def test_lag_with_offset_and_default(self, engine):
        result = engine.execute(
            "SELECT lag(size, 1, 0) OVER (ORDER BY ordcol) FROM trades"
        )
        assert [r[0] for r in result.rows] == [0, 10, 20, 30]

    def test_running_sum(self, engine):
        result = engine.execute(
            "SELECT sum(size) OVER (ORDER BY ordcol) FROM trades"
        )
        assert [r[0] for r in result.rows] == [10, 30, 60, 100]

    def test_full_frame_aggregate(self, engine):
        result = engine.execute(
            "SELECT max(size) OVER (ORDER BY ordcol ROWS BETWEEN UNBOUNDED "
            "PRECEDING AND UNBOUNDED FOLLOWING) FROM trades"
        )
        assert all(r[0] == 40 for r in result.rows)

    def test_bounded_frame_moving_avg(self, engine):
        result = engine.execute(
            "SELECT avg(size) OVER (ORDER BY ordcol ROWS BETWEEN 1 PRECEDING "
            "AND CURRENT ROW) FROM trades"
        )
        assert [r[0] for r in result.rows] == [10.0, 15.0, 25.0, 35.0]

    def test_rank_with_ties(self, engine):
        engine.execute("INSERT INTO trades VALUES ('X', 100.0, 10, 4)")
        result = engine.execute(
            "SELECT size, rank() OVER (ORDER BY size) FROM trades ORDER BY size"
        )
        ranks = [r[1] for r in result.rows]
        assert ranks == [1, 1, 3, 4, 5]


class TestDdlDml:
    def test_create_table_as(self, engine):
        engine.execute("CREATE TABLE big AS SELECT * FROM trades WHERE size > 15")
        assert engine.execute("SELECT count(*) FROM big").scalar() == 3

    def test_temp_table_shadows_and_dies(self, engine):
        engine.execute("CREATE TEMPORARY TABLE trades AS SELECT 1 AS one")
        assert engine.execute("SELECT * FROM trades").column_names == ["one"]
        engine.end_session()
        assert len(engine.execute("SELECT * FROM trades").rows) == 4

    def test_view(self, engine):
        engine.execute("CREATE VIEW goog AS SELECT * FROM trades WHERE sym = 'GOOG'")
        assert engine.execute("SELECT count(*) FROM goog").scalar() == 2

    def test_update(self, engine):
        engine.execute("UPDATE trades SET size = 0 WHERE sym = 'IBM'")
        assert engine.execute(
            "SELECT size FROM trades WHERE sym='IBM'"
        ).scalar() == 0

    def test_delete_rows(self, engine):
        engine.execute("DELETE FROM trades WHERE sym = 'GOOG'")
        assert engine.execute("SELECT count(*) FROM trades").scalar() == 2

    def test_drop_missing_raises(self, engine):
        with pytest.raises(SqlCatalogError):
            engine.execute("DROP TABLE missing")

    def test_drop_if_exists_silent(self, engine):
        engine.execute("DROP TABLE IF EXISTS missing")

    def test_insert_casts_to_column_type(self, engine):
        engine.execute("INSERT INTO trades VALUES ('X', '1.5', '7', 9)")
        result = engine.execute("SELECT price, size FROM trades WHERE sym='X'")
        assert result.rows == [(1.5, 7)]

    def test_catalog_emulation(self, engine):
        result = engine.execute(
            "SELECT column_name FROM information_schema.columns "
            "WHERE table_name = 'trades' ORDER BY ordinal_position"
        )
        assert [r[0] for r in result.rows] == ["sym", "price", "size", "ordcol"]


class TestSetOps:
    def test_union_dedupes(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades UNION SELECT sym FROM trades"
        )
        assert len(result.rows) == 3

    def test_union_all_keeps_duplicates(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades UNION ALL SELECT sym FROM trades"
        )
        assert len(result.rows) == 8

    def test_except(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades EXCEPT SELECT 'GOOG'"
        )
        assert {r[0] for r in result.rows} == {"IBM", "MSFT"}

    def test_intersect(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades INTERSECT SELECT 'IBM'"
        )
        assert result.rows == [("IBM",)]


class TestSubqueries:
    def test_scalar_subquery(self, engine):
        result = engine.execute(
            "SELECT sym FROM trades WHERE size = (SELECT max(size) FROM trades)"
        )
        assert result.rows == [("MSFT",)]

    def test_correlated_exists(self, engine):
        engine.execute("CREATE TABLE q2 (sym varchar)")
        engine.execute("INSERT INTO q2 VALUES ('GOOG')")
        result = engine.execute(
            "SELECT DISTINCT sym FROM trades t WHERE EXISTS "
            "(SELECT 1 FROM q2 WHERE q2.sym = t.sym)"
        )
        assert result.rows == [("GOOG",)]

    def test_in_subquery(self, engine):
        result = engine.execute(
            "SELECT DISTINCT sym FROM trades WHERE sym IN "
            "(SELECT sym FROM trades WHERE size > 25)"
        )
        assert {r[0] for r in result.rows} == {"GOOG", "MSFT"}
