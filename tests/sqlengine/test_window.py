"""Dedicated tests for window-function semantics."""

import pytest

from repro.sqlengine.engine import Engine


@pytest.fixture()
def engine():
    e = Engine()
    e.execute("CREATE TABLE t (g varchar, v bigint, ordcol bigint)")
    e.execute(
        "INSERT INTO t VALUES "
        "('a', 10, 0), ('a', 20, 1), ('a', 20, 2), ('a', 30, 3), "
        "('b', 5, 4), ('b', NULL, 5)"
    )
    return e


def col(engine, sql):
    return [r[0] for r in engine.execute(sql).rows]


class TestRanking:
    def test_rank_vs_dense_rank_on_ties(self, engine):
        ranks = col(
            engine,
            "SELECT rank() OVER (ORDER BY v) FROM t WHERE g='a' ORDER BY ordcol",
        )
        dense = col(
            engine,
            "SELECT dense_rank() OVER (ORDER BY v) FROM t WHERE g='a' "
            "ORDER BY ordcol",
        )
        assert ranks == [1, 2, 2, 4]
        assert dense == [1, 2, 2, 3]

    def test_ntile(self, engine):
        buckets = col(
            engine,
            "SELECT ntile(2) OVER (ORDER BY ordcol) FROM t ORDER BY ordcol",
        )
        assert buckets == [1, 1, 1, 2, 2, 2]

    def test_row_number_without_order_is_input_order(self, engine):
        rows = col(engine, "SELECT row_number() OVER () FROM t")
        assert rows == [1, 2, 3, 4, 5, 6]


class TestValueFunctions:
    def test_first_value(self, engine):
        values = col(
            engine,
            "SELECT first_value(v) OVER (PARTITION BY g ORDER BY ordcol) "
            "FROM t ORDER BY ordcol",
        )
        assert values == [10, 10, 10, 10, 5, 5]

    def test_last_value_default_frame_is_current_peer_group(self, engine):
        values = col(
            engine,
            "SELECT last_value(v) OVER (PARTITION BY g ORDER BY v) "
            "FROM t WHERE g='a' ORDER BY ordcol",
        )
        # peers (the two 20s) share a frame end
        assert values == [10, 20, 20, 30]

    def test_last_value_unbounded_following(self, engine):
        values = col(
            engine,
            "SELECT last_value(v) OVER (PARTITION BY g ORDER BY v ROWS "
            "BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) "
            "FROM t WHERE g='a' ORDER BY ordcol",
        )
        assert values == [30, 30, 30, 30]

    def test_nth_value(self, engine):
        values = col(
            engine,
            "SELECT nth_value(v, 2) OVER (ORDER BY ordcol ROWS BETWEEN "
            "UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) FROM t "
            "WHERE g='a' ORDER BY ordcol",
        )
        assert values == [20, 20, 20, 20]

    def test_lead_lag_defaults(self, engine):
        leads = col(
            engine,
            "SELECT lead(v) OVER (PARTITION BY g ORDER BY ordcol) FROM t "
            "ORDER BY ordcol",
        )
        assert leads == [20, 20, 30, None, None, None]


class TestWindowAggregates:
    def test_running_sum_includes_peers(self, engine):
        sums = col(
            engine,
            "SELECT sum(v) OVER (ORDER BY v) FROM t WHERE g='a' "
            "ORDER BY ordcol",
        )
        # ORDER BY v: peers 20,20 share the running total 50
        assert sums == [10, 50, 50, 80]

    def test_rows_frame_excludes_peers(self, engine):
        sums = col(
            engine,
            "SELECT sum(v) OVER (ORDER BY ordcol ROWS BETWEEN UNBOUNDED "
            "PRECEDING AND CURRENT ROW) FROM t WHERE g='a' ORDER BY ordcol",
        )
        assert sums == [10, 30, 50, 80]

    def test_count_star_over_window(self, engine):
        counts = col(
            engine,
            "SELECT count(*) OVER (PARTITION BY g) FROM t ORDER BY ordcol",
        )
        assert counts == [4, 4, 4, 4, 2, 2]

    def test_window_aggregate_skips_nulls(self, engine):
        sums = col(
            engine,
            "SELECT sum(v) OVER (PARTITION BY g) FROM t WHERE g='b' "
            "ORDER BY ordcol",
        )
        assert sums == [5, 5]

    def test_bounded_lookback(self, engine):
        avgs = col(
            engine,
            "SELECT avg(v) OVER (ORDER BY ordcol ROWS BETWEEN 1 PRECEDING "
            "AND CURRENT ROW) FROM t WHERE g='a' ORDER BY ordcol",
        )
        assert avgs == [10.0, 15.0, 20.0, 25.0]

    def test_nulls_order_within_window(self, engine):
        values = col(
            engine,
            "SELECT v FROM (SELECT v, row_number() OVER (ORDER BY v) rn "
            "FROM t WHERE g='b') s ORDER BY rn",
        )
        # default asc: null sorts last
        assert values == [5, None]
