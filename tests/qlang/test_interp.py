"""Unit tests for the reference Q interpreter (the mini-kdb+ substrate)."""

import math

import pytest

from repro.errors import QError, QLengthError, QNameError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QTable,
    QVector,
    q_match,
)


@pytest.fixture()
def interp():
    return Interpreter()


@pytest.fixture()
def market(interp):
    interp.eval_text(
        "trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT; "
        "Price:100.0 50.0 101.0 30.0; Size:10 20 30 40)"
    )
    interp.eval_text(
        "quotes: ([] Symbol:`GOOG`GOOG`IBM; "
        "Time:09:30:00 09:31:00 09:30:30; Bid:99.0 100.5 49.0; Ask:99.5 101.0 49.5)"
    )
    return interp


def atom(value):
    return QAtom(QType.LONG, value)


class TestScalars:
    def test_right_to_left(self, interp):
        assert interp.eval_text("2*3+4") == atom(14)

    def test_division_is_float(self, interp):
        result = interp.eval_text("7%2")
        assert result.qtype == QType.FLOAT
        assert result.value == 3.5

    def test_division_by_zero_is_inf(self, interp):
        assert interp.eval_text("1%0").value == float("inf")

    def test_null_propagates_through_arithmetic(self, interp):
        assert interp.eval_text("1+0N").value == NULL_LONG

    def test_two_nulls_compare_equal(self, interp):
        assert interp.eval_text("0N = 0N") == QAtom(QType.BOOLEAN, True)

    def test_float_nulls_compare_equal(self, interp):
        assert interp.eval_text("0n = 0n") == QAtom(QType.BOOLEAN, True)

    def test_null_not_equal_value(self, interp):
        assert interp.eval_text("0N = 5") == QAtom(QType.BOOLEAN, False)

    def test_and_is_min(self, interp):
        assert interp.eval_text("3 & 5") == atom(3)

    def test_or_is_max(self, interp):
        assert interp.eval_text("3 | 5") == atom(5)

    def test_fill_caret(self, interp):
        assert interp.eval_text("7 ^ 0N") == atom(7)
        assert interp.eval_text("7 ^ 3") == atom(3)

    def test_match_tilde(self, interp):
        assert interp.eval_text("1 2 3 ~ 1 2 3").value is True
        assert interp.eval_text("1 2 ~ 1 2 3").value is False

    def test_cast(self, interp):
        assert interp.eval_text("`float$3") == QAtom(QType.FLOAT, 3.0)

    def test_xbar(self, interp):
        assert interp.eval_text("5 xbar 13") == atom(10)

    def test_mod(self, interp):
        assert interp.eval_text("7 mod 3") == atom(1)

    def test_signum(self, interp):
        assert interp.eval_text("signum -5").value == -1


class TestBroadcasting:
    def test_atom_vector(self, interp):
        assert interp.eval_text("10 + 1 2 3") == QVector(QType.LONG, [11, 12, 13])

    def test_vector_vector(self, interp):
        assert interp.eval_text("1 2 3 * 4 5 6") == QVector(QType.LONG, [4, 10, 18])

    def test_length_error(self, interp):
        with pytest.raises(QLengthError):
            interp.eval_text("1 2 + 1 2 3")

    def test_comparison_vectorizes(self, interp):
        result = interp.eval_text("1 2 3 > 2")
        assert result == QVector(QType.BOOLEAN, [False, False, True])

    def test_dict_broadcast(self, interp):
        result = interp.eval_text("(`a`b!1 2) + 10")
        assert result.values == QVector(QType.LONG, [11, 12])


class TestListVerbs:
    def test_til(self, interp):
        assert interp.eval_text("til 4") == QVector(QType.LONG, [0, 1, 2, 3])

    def test_count(self, interp):
        assert interp.eval_text("count 1 2 3") == atom(3)

    def test_sum_skips_nulls(self, interp):
        assert interp.eval_text("sum 1 0N 2") == atom(3)

    def test_avg_skips_nulls(self, interp):
        assert interp.eval_text("avg 1 0N 3").value == 2.0

    def test_min_max(self, interp):
        assert interp.eval_text("min 3 1 2") == atom(1)
        assert interp.eval_text("max 3 1 2") == atom(3)

    def test_med(self, interp):
        assert interp.eval_text("med 1 2 3 4").value == 2.5

    def test_dev(self, interp):
        assert interp.eval_text("dev 2 2 2").value == 0.0

    def test_first_last(self, interp):
        assert interp.eval_text("first 5 6 7") == atom(5)
        assert interp.eval_text("last 5 6 7") == atom(7)

    def test_distinct_preserves_order(self, interp):
        assert interp.eval_text("distinct 3 1 3 2 1") == QVector(
            QType.LONG, [3, 1, 2]
        )

    def test_where_booleans(self, interp):
        assert interp.eval_text("where 101b") == QVector(QType.LONG, [0, 2])

    def test_where_counts(self, interp):
        assert interp.eval_text("where 0 2 1") == QVector(QType.LONG, [1, 1, 2])

    def test_iasc(self, interp):
        assert interp.eval_text("iasc 30 10 20") == QVector(QType.LONG, [1, 2, 0])

    def test_asc_desc(self, interp):
        assert interp.eval_text("asc 3 1 2") == QVector(QType.LONG, [1, 2, 3])
        assert interp.eval_text("desc 3 1 2") == QVector(QType.LONG, [3, 2, 1])

    def test_nulls_sort_first(self, interp):
        assert interp.eval_text("asc 2 0N 1") == QVector(
            QType.LONG, [NULL_LONG, 1, 2]
        )

    def test_sums(self, interp):
        assert interp.eval_text("sums 1 2 3") == QVector(QType.LONG, [1, 3, 6])

    def test_deltas(self, interp):
        assert interp.eval_text("deltas 1 3 6") == QVector(QType.LONG, [1, 2, 3])

    def test_fills(self, interp):
        assert interp.eval_text("fills 1 0N 0N 2") == QVector(
            QType.LONG, [1, 1, 1, 2]
        )

    def test_next_prev(self, interp):
        assert interp.eval_text("next 1 2 3") == QVector(
            QType.LONG, [2, 3, NULL_LONG]
        )
        assert interp.eval_text("prev 1 2 3") == QVector(
            QType.LONG, [NULL_LONG, 1, 2]
        )

    def test_take_cycles(self, interp):
        assert interp.eval_text("5#1 2") == QVector(QType.LONG, [1, 2, 1, 2, 1])

    def test_take_negative(self, interp):
        assert interp.eval_text("-2#1 2 3") == QVector(QType.LONG, [2, 3])

    def test_drop(self, interp):
        assert interp.eval_text("2_1 2 3 4") == QVector(QType.LONG, [3, 4])

    def test_sublist_does_not_cycle(self, interp):
        assert interp.eval_text("5 sublist 1 2") == QVector(QType.LONG, [1, 2])

    def test_concat(self, interp):
        assert interp.eval_text("1 2,3") == QVector(QType.LONG, [1, 2, 3])

    def test_reverse(self, interp):
        assert interp.eval_text("reverse 1 2 3") == QVector(QType.LONG, [3, 2, 1])

    def test_in(self, interp):
        assert interp.eval_text("2 in 1 2 3").value is True

    def test_within(self, interp):
        assert interp.eval_text("2 5 9 within 3 7") == QVector(
            QType.BOOLEAN, [False, True, False]
        )

    def test_except(self, interp):
        assert interp.eval_text("1 2 3 except 2") == QVector(QType.LONG, [1, 3])

    def test_inter(self, interp):
        assert interp.eval_text("1 2 3 inter 2 3 4") == QVector(QType.LONG, [2, 3])

    def test_find(self, interp):
        assert interp.eval_text("`a`b`c ? `b") == atom(1)

    def test_find_missing_returns_count(self, interp):
        assert interp.eval_text("`a`b ? `z") == atom(2)

    def test_group(self, interp):
        result = interp.eval_text("group `a`b`a")
        assert isinstance(result, QDict)
        assert result.keys == QVector(QType.SYMBOL, ["a", "b"])

    def test_mavg(self, interp):
        result = interp.eval_text("2 mavg 1.0 2 3")
        assert result.items == [1.0, 1.5, 2.5]

    def test_wavg(self, interp):
        assert interp.eval_text("1 2 wavg 10.0 20").value == pytest.approx(
            (10 + 40) / 3
        )

    def test_bin(self, interp):
        assert interp.eval_text("1 3 5 bin 4") == atom(1)

    def test_raze(self, interp):
        assert interp.eval_text("raze (1 2; 3)") == QVector(QType.LONG, [1, 2, 3])

    def test_vs_splits_strings(self, interp):
        result = interp.eval_text('"," vs "a,b"')
        assert len(result.items) == 2

    def test_sv_joins_strings(self, interp):
        result = interp.eval_text('"," sv ("a";"b")')
        assert "".join(result.items) == "a,b"


class TestVariables:
    def test_assign_and_read(self, interp):
        interp.eval_text("x: 42")
        assert interp.eval_text("x") == atom(42)

    def test_dynamic_retyping(self, interp):
        interp.eval_text("x: 1")
        interp.eval_text("x: 1 2 3")
        assert isinstance(interp.eval_text("x"), QVector)
        interp.eval_text("x: ([] a: 1 2)")
        assert isinstance(interp.eval_text("x"), QTable)

    def test_compound_assign(self, interp):
        interp.eval_text("x: 10")
        interp.eval_text("x+:5")
        assert interp.eval_text("x") == atom(15)

    def test_undefined_raises(self, interp):
        with pytest.raises(QNameError):
            interp.eval_text("nosuchvar")

    def test_indexed_amend(self, interp):
        interp.eval_text("x: 1 2 3")
        interp.eval_text("x[1]: 99")
        assert interp.eval_text("x") == QVector(QType.LONG, [1, 99, 3])

    def test_local_shadows_global(self, interp):
        interp.eval_text("v: 1")
        interp.eval_text("f: {[v] v+100}")
        assert interp.eval_text("f[5]") == atom(105)
        assert interp.eval_text("v") == atom(1)

    def test_local_assignment_stays_local(self, interp):
        interp.eval_text("g: {tmp: 42; tmp}")
        interp.eval_text("g[]")
        with pytest.raises(QNameError):
            interp.eval_text("tmp")

    def test_global_assign_from_function(self, interp):
        interp.eval_text("h: {gv:: x; 0}")
        interp.eval_text("h[7]")
        assert interp.eval_text("gv") == atom(7)


class TestFunctions:
    def test_explicit_params(self, interp):
        interp.eval_text("add: {[a;b] a+b}")
        assert interp.eval_text("add[3;4]") == atom(7)

    def test_implicit_params(self, interp):
        assert interp.eval_text("{x*y}[3;4]") == atom(12)

    def test_early_return(self, interp):
        interp.eval_text("f: {:x+1; 99}")
        assert interp.eval_text("f[1]") == atom(2)

    def test_partial_application_projection(self, interp):
        interp.eval_text("add: {[a;b] a+b}")
        interp.eval_text("inc: add[1]")
        assert interp.eval_text("inc[10]") == atom(11)

    def test_elided_projection(self, interp):
        interp.eval_text("sub: {[a;b] a-b}")
        interp.eval_text("dec: sub[;1]")
        assert interp.eval_text("dec[10]") == atom(9)

    def test_function_stored_and_reinvoked(self, interp):
        interp.eval_text("f: {x+1}")
        interp.eval_text("f: {x+2}")  # redefinition, as the paper notes
        assert interp.eval_text("f[1]") == atom(3)

    def test_signal(self, interp):
        with pytest.raises(QError):
            interp.eval_text("f: {'badinput}; f[]")

    def test_conditional(self, interp):
        assert interp.eval_text("$[1b; `yes; `no]").value == "yes"
        assert interp.eval_text("$[0b; `yes; `no]").value == "no"

    def test_conditional_chain(self, interp):
        assert interp.eval_text("$[0b; 1; 1b; 2; 3]") == atom(2)


class TestAdverbs:
    def test_over_fold(self, interp):
        assert interp.eval_text("+/ 1 2 3 4") == atom(10)

    def test_over_with_seed(self, interp):
        assert interp.eval_text("100 +/ 1 2 3") == atom(106)

    def test_scan(self, interp):
        assert interp.eval_text("+\\ 1 2 3") == QVector(QType.LONG, [1, 3, 6])

    def test_each_monadic(self, interp):
        assert interp.eval_text("{x*x} each 1 2 3") == QVector(QType.LONG, [1, 4, 9])

    def test_each_dyadic_pairwise(self, interp):
        assert interp.eval_text("1 2 {x+y}' 10 20") == QVector(QType.LONG, [11, 22])

    def test_each_right(self, interp):
        assert interp.eval_text("10 +/: 1 2 3") == QVector(QType.LONG, [11, 12, 13])

    def test_each_left(self, interp):
        assert interp.eval_text("1 2 3 +\\: 10") == QVector(QType.LONG, [11, 12, 13])

    def test_each_prior(self, interp):
        result = interp.eval_text("-': 1 3 6")
        assert result.items[1:] == [2, 3]

    def test_max_over(self, interp):
        assert interp.eval_text("|/ 3 9 4") == atom(9)


class TestTemplates:
    def test_select_all(self, market):
        result = market.eval_text("select from trades")
        assert isinstance(result, QTable)
        assert len(result) == 4

    def test_select_projection(self, market):
        result = market.eval_text("select Price from trades")
        assert result.columns == ["Price"]

    def test_where_filter(self, market):
        result = market.eval_text("select from trades where Symbol=`GOOG")
        assert len(result) == 2

    def test_where_sequential_conjuncts(self, market):
        result = market.eval_text(
            "select from trades where Price>40, Size>15"
        )
        assert len(result) == 2  # IBM(50,20) and GOOG(101,30)

    def test_aggregate_returns_single_row(self, market):
        result = market.eval_text("select max Price from trades")
        assert len(result) == 1
        assert result.column("Price").items == [101.0]

    def test_group_by(self, market):
        result = market.eval_text("select sum Size by Symbol from trades")
        assert isinstance(result, QKeyedTable)
        assert result.key.column("Symbol").items == ["GOOG", "IBM", "MSFT"]
        assert result.value.column("Size").items == [40, 20, 40]

    def test_named_column(self, market):
        result = market.eval_text("select notional: Price*Size from trades")
        assert result.columns == ["notional"]

    def test_select_limit(self, market):
        result = market.eval_text("select[2] from trades")
        assert len(result) == 2

    def test_exec_single_column_returns_vector(self, market):
        result = market.eval_text("exec Price from trades")
        assert isinstance(result, QVector)
        assert len(result) == 4

    def test_exec_multi_returns_dict(self, market):
        result = market.eval_text("exec Price, Size from trades")
        assert isinstance(result, QDict)

    def test_exec_by(self, market):
        result = market.eval_text("exec sum Size by Symbol from trades")
        assert isinstance(result, QDict)

    def test_update_adds_column(self, market):
        result = market.eval_text("update Notional: Price*Size from trades")
        assert "Notional" in result.columns
        assert result.column("Notional").items[0] == 1000.0

    def test_update_does_not_persist(self, market):
        market.eval_text("update Price: 0.0 from trades")
        original = market.eval_text("select from trades")
        assert original.column("Price").items[0] == 100.0

    def test_update_by_group(self, market):
        result = market.eval_text("update s: sums Size by Symbol from trades")
        assert result.column("s").items == [10, 20, 40, 40]

    def test_delete_rows(self, market):
        result = market.eval_text("delete from trades where Symbol=`GOOG")
        assert len(result) == 2

    def test_delete_columns(self, market):
        result = market.eval_text("delete Size from trades")
        assert "Size" not in result.columns

    def test_nested_template(self, market):
        result = market.eval_text(
            "select from (select from trades where Price>40) where Size>15"
        )
        assert len(result) == 2

    def test_virtual_row_index_i(self, market):
        result = market.eval_text("select from trades where i<2")
        assert len(result) == 2

    def test_select_by_without_columns_keeps_last(self, market):
        result = market.eval_text("select by Symbol from trades")
        assert isinstance(result, QKeyedTable)
        goog_row = result.value.column("Price").items[0]
        assert goog_row == 101.0


class TestJoins:
    def test_aj_prevailing_quote(self, market):
        market.eval_text(
            "t2: ([] Symbol:`GOOG`IBM; Time:09:30:30 09:31:00; Price:100.0 50.0)"
        )
        result = market.eval_text("aj[`Symbol`Time; t2; quotes]")
        assert result.column("Bid").items == [99.0, 49.0]

    def test_aj_no_match_gives_null(self, market):
        market.eval_text(
            "t3: ([] Symbol:`TSLA; Time:09:30:30; Price:1.0)"
        )
        result = market.eval_text("aj[`Symbol`Time; t3; quotes]")
        bid = result.column("Bid").items[0]
        assert math.isnan(bid)

    def test_aj_takes_latest_not_first(self, market):
        market.eval_text(
            "t4: ([] Symbol:`GOOG; Time:09:40:00; Price:1.0)"
        )
        result = market.eval_text("aj[`Symbol`Time; t4; quotes]")
        assert result.column("Bid").items == [100.5]

    def test_lj(self, market):
        market.eval_text("kt: ([Symbol:`GOOG`IBM] Rating:`buy`hold)")
        result = market.eval_text("trades lj kt")
        assert result.column("Rating").items == ["buy", "hold", "buy", ""]

    def test_ij_drops_unmatched(self, market):
        market.eval_text("kt: ([Symbol:`GOOG] Rating:`buy)")
        result = market.eval_text("trades ij kt")
        assert len(result) == 2

    def test_uj_unions_columns(self, market):
        market.eval_text("a: ([] x: 1 2)")
        market.eval_text("b: ([] y: 3 4)")
        result = market.eval_text("a uj b")
        assert result.columns == ["x", "y"]
        assert len(result) == 4

    def test_ej(self, market):
        market.eval_text("ref: ([] Symbol:`GOOG`GOOG; Venue:`N`B)")
        result = market.eval_text("ej[`Symbol; trades; ref]")
        # two GOOG trades x two venues
        assert len(result) == 4

    def test_xkey_and_unkey(self, market):
        result = market.eval_text("1!trades")
        assert isinstance(result, QKeyedTable)
        flat = market.eval_text("0!1!trades")
        assert isinstance(flat, QTable)


class TestTables:
    def test_table_literal(self, interp):
        t = interp.eval_text("([] a:1 2; b:`x`y)")
        assert t.columns == ["a", "b"]

    def test_atom_column_broadcast(self, interp):
        t = interp.eval_text("([] a:1 2 3; b:0)")
        assert t.column("b").items == [0, 0, 0]

    def test_cols(self, interp):
        interp.eval_text("t: ([] a:1 2; b:3 4)")
        assert interp.eval_text("cols t") == QVector(QType.SYMBOL, ["a", "b"])

    def test_meta_types(self, interp):
        interp.eval_text("t: ([] a:1 2; b:`x`y)")
        m = interp.eval_text("meta t")
        assert m.column("t").items == ["j", "s"]

    def test_flip_roundtrip(self, interp):
        interp.eval_text("t: ([] a:1 2; b:3 4)")
        assert q_match(interp.eval_text("flip flip t"), interp.eval_text("t"))

    def test_xasc(self, interp):
        interp.eval_text("t: ([] s:`b`a; v:1 2)")
        result = interp.eval_text("`s xasc t")
        assert result.column("s").items == ["a", "b"]

    def test_xcol_rename(self, interp):
        interp.eval_text("t: ([] a:1 2; b:3 4)")
        result = interp.eval_text("`x`y xcol t")
        assert result.columns == ["x", "y"]

    def test_insert_appends_to_global(self, interp):
        interp.eval_text("t: ([] a: 1 2)")
        interp.eval_text("`t insert ([] a: enlist 3)")
        assert len(interp.eval_text("t")) == 3

    def test_table_row_indexing(self, interp):
        interp.eval_text("t: ([] a:1 2; b:`x`y)")
        row = interp.eval_text("t[0]")
        assert isinstance(row, QDict)

    def test_dict_creation_and_lookup(self, interp):
        interp.eval_text("d: `a`b!1 2")
        assert interp.eval_text("d[`b]") == atom(2)

    def test_type_codes(self, interp):
        assert interp.eval_text("type 1 2 3").value == 7
        assert interp.eval_text("type `a").value == -11
        assert interp.eval_text("type ([] a: 1 2)").value == 98
