"""Unit tests for the Q tokenizer."""

import pytest

from repro.errors import QSyntaxError
from repro.qlang.lexer import TokenKind, date_from_days, days_from_2000, tokenize
from repro.qlang.qtypes import NULL_INT, NULL_LONG, QType
from repro.qlang.values import QAtom, QVector


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def first_value(source):
    return tokenize(source)[0].value


class TestNumbers:
    def test_long_literal(self):
        atom = first_value("42")
        assert atom == QAtom(QType.LONG, 42)

    def test_int_suffix(self):
        assert first_value("42i") == QAtom(QType.INT, 42)

    def test_short_suffix(self):
        assert first_value("7h") == QAtom(QType.SHORT, 7)

    def test_float_literal(self):
        assert first_value("1.5") == QAtom(QType.FLOAT, 1.5)

    def test_float_suffix_on_int(self):
        assert first_value("2f") == QAtom(QType.FLOAT, 2.0)

    def test_real_suffix(self):
        assert first_value("2e") == QAtom(QType.REAL, 2.0)

    def test_scientific_notation(self):
        assert first_value("1e3") == QAtom(QType.FLOAT, 1000.0)

    def test_boolean_atoms(self):
        assert first_value("1b") == QAtom(QType.BOOLEAN, True)
        assert first_value("0b") == QAtom(QType.BOOLEAN, False)

    def test_boolean_vector(self):
        assert first_value("101b") == QVector(QType.BOOLEAN, [True, False, True])

    def test_long_null(self):
        assert first_value("0N").value == NULL_LONG

    def test_int_null(self):
        assert first_value("0Ni").value == NULL_INT

    def test_float_null_is_nan(self):
        value = first_value("0n").value
        assert value != value

    def test_negative_literal_at_start(self):
        assert first_value("-5") == QAtom(QType.LONG, -5)

    def test_minus_after_name_is_operator(self):
        tokens = tokenize("x-5")
        assert tokens[1].kind == TokenKind.OPERATOR
        assert tokens[1].text == "-"

    def test_minus_after_paren_is_operator(self):
        tokens = tokenize("(x)-5")
        operator = [t for t in tokens if t.kind == TokenKind.OPERATOR]
        assert operator[0].text == "-"


class TestTemporals:
    def test_date(self):
        atom = first_value("2000.01.01")
        assert atom == QAtom(QType.DATE, 0)

    def test_date_2016(self):
        atom = first_value("2016.06.26")
        assert atom.qtype == QType.DATE
        assert date_from_days(atom.value) == (2016, 6, 26)

    def test_leap_year_day(self):
        assert days_from_2000(2000, 3, 1) == 60  # 2000 is a leap year

    def test_date_roundtrip_many(self):
        for days in range(0, 10000, 137):
            y, m, d = date_from_days(days)
            assert days_from_2000(y, m, d) == days

    def test_time_with_millis(self):
        atom = first_value("09:30:00.123")
        assert atom.qtype == QType.TIME
        assert atom.value == (9 * 3600 + 30 * 60) * 1000 + 123

    def test_minute(self):
        atom = first_value("09:30")
        assert atom == QAtom(QType.MINUTE, 570)

    def test_second(self):
        atom = first_value("09:30:15")
        assert atom == QAtom(QType.SECOND, 9 * 3600 + 30 * 60 + 15)

    def test_timestamp(self):
        atom = first_value("2000.01.02D00:00:01.000000000")
        assert atom.qtype == QType.TIMESTAMP
        assert atom.value == 86_400_000_000_000 + 1_000_000_000

    def test_month(self):
        atom = first_value("2016.06m")
        assert atom == QAtom(QType.MONTH, 16 * 12 + 5)


class TestSymbolsAndStrings:
    def test_single_symbol(self):
        assert first_value("`GOOG") == QAtom(QType.SYMBOL, "GOOG")

    def test_symbol_vector(self):
        assert first_value("`a`b`c") == QVector(QType.SYMBOL, ["a", "b", "c"])

    def test_empty_symbol(self):
        assert first_value("`") == QAtom(QType.SYMBOL, "")

    def test_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind == TokenKind.STRING
        assert token.value == "hello"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\"c"')[0].value == 'a\nb"c'

    def test_unterminated_string(self):
        with pytest.raises(QSyntaxError):
            tokenize('"oops')


class TestOperatorsAndAdverbs:
    def test_multichar_operators(self):
        texts = [t.text for t in tokenize("a<>b") if t.kind == TokenKind.OPERATOR]
        assert texts == ["<>"]

    def test_less_equal(self):
        texts = [t.text for t in tokenize("a<=b") if t.kind == TokenKind.OPERATOR]
        assert texts == ["<="]

    def test_glued_slash_is_adverb(self):
        tokens = tokenize("+/")
        assert tokens[1].kind == TokenKind.ADVERB
        assert tokens[1].text == "/"

    def test_spaced_slash_is_comment(self):
        tokens = tokenize("1 / this is a comment")
        assert [t.kind for t in tokens] == [TokenKind.NUMBER, TokenKind.EOF]

    def test_each_right_adverb(self):
        tokens = tokenize("f/:")
        assert tokens[1].text == "/:"

    def test_each_left_adverb(self):
        tokens = tokenize("f\\:")
        assert tokens[1].text == "\\:"

    def test_each_prior_adverb(self):
        tokens = tokenize("f':")
        assert tokens[1].text == "':"


class TestKeywordsAndNames:
    def test_template_keywords(self):
        assert kinds("select from where") == [TokenKind.KEYWORD] * 3

    def test_name_with_dots(self):
        token = tokenize("ns.table")[0]
        assert token.kind == TokenKind.NAME
        assert token.text == "ns.table"

    def test_builtin_names_are_plain_names(self):
        assert tokenize("count")[0].kind == TokenKind.NAME

    def test_comment_line(self):
        tokens = tokenize("/ full line comment\n42")
        assert tokens[0].kind == TokenKind.NUMBER


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(QSyntaxError):
            tokenize("§")
