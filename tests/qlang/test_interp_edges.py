"""Edge-case tests for the reference interpreter: adverbs with seeds,
amend forms, casts, strings, dictionaries, and error signals."""

import pytest

from repro.errors import (
    QDomainError,
    QError,
    QLengthError,
    QNotSupportedError,
    QRankError,
    QTypeError,
)
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import QAtom, QDict, QList, QVector, q_match


@pytest.fixture()
def interp():
    return Interpreter()


class TestAdverbEdges:
    def test_scan_with_seed(self, interp):
        assert interp.eval_text("10 +\\ 1 2 3") == QVector(
            QType.LONG, [11, 13, 16]
        )

    def test_each_prior_with_seed(self, interp):
        result = interp.eval_text("100 -': 103 110 120")
        assert result == QVector(QType.LONG, [3, 7, 10])

    def test_each_on_table_rows(self, interp):
        interp.eval_text("t: ([] a: 1 2 3)")
        result = interp.eval_text("count each t")
        assert result == QVector(QType.LONG, [1, 1, 1])

    def test_over_on_empty_list(self, interp):
        empty = interp.eval_text("+/ `long$()")
        assert isinstance(empty, QVector)
        assert len(empty) == 0

    def test_each_right_with_list_left(self, interp):
        result = interp.eval_text("1 2 ,/: 10 20")
        assert q_match(
            result,
            QList([QVector(QType.LONG, [1, 2, 10]),
                   QVector(QType.LONG, [1, 2, 20])]),
        )

    def test_fold_with_lambda(self, interp):
        assert interp.eval_text("{x*y} over 1 2 3 4").value == 24

    def test_functional_operator_application(self, interp):
        assert interp.eval_text("+[3;4]").value == 7


class TestAmendForms:
    def test_vector_indexed_amend_with_op(self, interp):
        interp.eval_text("x: 10 20 30")
        interp.eval_text("x[1]+:5")
        assert interp.eval_text("x") == QVector(QType.LONG, [10, 25, 30])

    def test_vector_multi_index_amend(self, interp):
        interp.eval_text("x: 0 0 0 0")
        interp.eval_text("x[0 2]: 7")
        assert interp.eval_text("x") == QVector(QType.LONG, [7, 0, 7, 0])

    def test_dict_amend_inserts_new_key(self, interp):
        interp.eval_text("d: `a`b!1 2")
        interp.eval_text("d[`c]: 3")
        assert interp.eval_text("d[`c]").value == 3

    def test_amend_undefined_raises(self, interp):
        from repro.errors import QNameError

        with pytest.raises(QNameError):
            interp.eval_text("nope[0]: 1")


class TestCastsAndStrings:
    def test_symbol_cast_of_string(self, interp):
        assert interp.eval_text('`$"hello"').value == "hello"

    def test_parse_float_from_string(self, interp):
        assert interp.eval_text('`float$"1.25"').value == 1.25

    def test_timestamp_to_date(self, interp):
        result = interp.eval_text("`date$2016.06.26D12:00:00.000000000")
        assert result.qtype == QType.DATE

    def test_time_to_minute(self, interp):
        result = interp.eval_text("`minute$09:45:30.000")
        assert result == QAtom(QType.MINUTE, 585)

    def test_string_of_symbol(self, interp):
        assert interp.eval_text("string `abc") == QVector(
            QType.CHAR, list("abc")
        )

    def test_upper_lower(self, interp):
        assert interp.eval_text("upper `goog").value == "GOOG"
        assert interp.eval_text('lower "ABC"') == QVector(
            QType.CHAR, list("abc")
        )

    def test_like_on_symbols(self, interp):
        assert interp.eval_text('`GOOG like "GO*"').value is True

    def test_null_cast_preserves_null(self, interp):
        assert interp.eval_text("`float$0N").is_null


class TestTemporalArithmetic:
    def test_date_plus_int(self, interp):
        result = interp.eval_text("2016.06.26 + 5")
        assert result.qtype == QType.DATE
        assert interp.eval_text("2016.06.26 + 5 = 2016.07.01")

    def test_date_difference_is_days(self, interp):
        result = interp.eval_text("2016.07.01 - 2016.06.26")
        assert result.value == 5
        assert result.qtype.is_integral

    def test_time_comparison(self, interp):
        assert interp.eval_text("09:30:00 < 09:31:00").value is True

    def test_time_within(self, interp):
        result = interp.eval_text("09:30:30 within 09:30:00 09:31:00")
        assert result.value is True


class TestDictOps:
    def test_dict_plus_dict_aligns_keys(self, interp):
        result = interp.eval_text("(`a`b!1 2) , (`b`c!20 30)")
        assert isinstance(result, QDict)
        assert result.lookup(QAtom(QType.SYMBOL, "b")).value == 20
        assert result.lookup(QAtom(QType.SYMBOL, "c")).value == 30

    def test_key_value(self, interp):
        interp.eval_text("d: `a`b!1 2")
        assert interp.eval_text("key d") == QVector(QType.SYMBOL, ["a", "b"])
        assert interp.eval_text("value d") == QVector(QType.LONG, [1, 2])

    def test_dict_of_lists(self, interp):
        result = interp.eval_text("`x`y!(1 2; 3 4 5)")
        assert isinstance(result.values, QList)

    def test_keys_of_keyed_table(self, interp):
        interp.eval_text("kt: ([k: `a`b] v: 1 2)")
        assert interp.eval_text("keys kt") == QVector(QType.SYMBOL, ["k"])


class TestErrorSignals:
    def test_type_signal_terse_form(self, interp):
        with pytest.raises(QTypeError) as excinfo:
            interp.eval_text("1 + `sym")
        assert excinfo.value.terse == "'type"

    def test_length_signal(self, interp):
        with pytest.raises(QLengthError) as excinfo:
            interp.eval_text("1 2 + 1 2 3")
        assert excinfo.value.signal == "length"

    def test_rank_error(self, interp):
        interp.eval_text("f: {[a] a}")
        with pytest.raises(QRankError):
            interp.eval_text("f[1;2]")

    def test_custom_signal_propagates_name(self, interp):
        with pytest.raises(QError) as excinfo:
            interp.eval_text("'custom")
        assert excinfo.value.signal == "custom"

    def test_moving_window_domain(self, interp):
        with pytest.raises(QDomainError):
            interp.eval_text("0 mavg 1 2 3")

    def test_reshape_not_supported(self, interp):
        with pytest.raises(QNotSupportedError):
            interp.eval_text("2 3 # til 6")


class TestMiscVerbs:
    def test_cut(self, interp):
        result = interp.eval_text("0 2 4 _ til 6")
        assert q_match(
            result,
            QList([
                QVector(QType.LONG, [0, 1]),
                QVector(QType.LONG, [2, 3]),
                QVector(QType.LONG, [4, 5]),
            ]),
        )

    def test_xprev(self, interp):
        assert interp.eval_text("2 xprev 1 2 3 4") == QVector(
            QType.LONG, [NULL_LONG, NULL_LONG, 1, 2]
        )

    def test_fills_after_amend(self, interp):
        interp.eval_text("x: 1 0N 0N 4")
        assert interp.eval_text("fills x") == QVector(QType.LONG, [1, 1, 1, 4])

    def test_fby_matches_manual_group(self, interp):
        interp.eval_text("t: ([] g:`a`b`a; v: 1 10 3)")
        result = interp.eval_text("select from t where v = (max; v) fby g")
        assert result.column("v").items == [10, 3]

    def test_differ(self, interp):
        result = interp.eval_text("differ `a`a`b`b`a")
        assert result == QVector(
            QType.BOOLEAN, [True, False, True, False, True]
        )

    def test_ratios(self, interp):
        result = interp.eval_text("ratios 2.0 4.0 8.0")
        assert result.items == [2.0, 2.0, 2.0]

    def test_bin_boundaries(self, interp):
        assert interp.eval_text("1 3 5 bin 0").value == -1
        assert interp.eval_text("1 3 5 bin 9").value == 2

    def test_union_dedupes(self, interp):
        assert interp.eval_text("1 2 3 union 3 4") == QVector(
            QType.LONG, [1, 2, 3, 4]
        )

    def test_med_on_even(self, interp):
        assert interp.eval_text("med 1 2 3 4").value == 2.5

    def test_table_literal_with_keyed_section(self, interp):
        result = interp.eval_text("([s: `a`b] v: 1 2)")
        from repro.qlang.values import QKeyedTable

        assert isinstance(result, QKeyedTable)
