"""Tests for join internals (including wj) and the value printer."""

import pytest

from repro.qlang.interp import Interpreter
from repro.qlang.printer import format_atom_raw, format_value
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import QAtom, QDict, QTable, QVector


@pytest.fixture()
def interp():
    it = Interpreter()
    it.eval_text(
        "t: ([] sym:`a`a`b; ts:09:30:00 09:31:00 09:30:30; v:1.0 2.0 3.0)"
    )
    it.eval_text(
        "q: ([] sym:`a`a`a`b; ts:09:29:00 09:30:30 09:31:30 09:30:00; "
        "p:10.0 11.0 12.0 20.0)"
    )
    return it


class TestWindowJoin:
    def test_wj_aggregates_over_window(self, interp):
        # window: +/- 60 seconds around each t row
        result = interp.eval_text(
            "wj[(t[`ts]-00:01:00; t[`ts]+00:01:00); `sym`ts; t; "
            "(q; (max; `p))]"
        )
        assert "p" in result.columns
        # row 0: sym=a ts=09:30 -> quotes at 09:29 and 09:30:30 -> max 11
        assert result.column("p").items[0] == 11.0

    def test_wj_empty_window_gives_null(self, interp):
        result = interp.eval_text(
            "wj[(t[`ts]+02:00:00; t[`ts]+03:00:00); `sym`ts; t; "
            "(q; (max; `p))]"
        )
        first = result.column("p").atom_at(0)
        assert first.is_null

    def test_wj_with_avg(self, interp):
        result = interp.eval_text(
            "wj[(t[`ts]-01:00:00; t[`ts]+01:00:00); `sym`ts; t; "
            "(q; (avg; `p))]"
        )
        assert result.column("p").items[0] == pytest.approx((10 + 11 + 12) / 3)


class TestAj0:
    def test_aj0_takes_right_time(self, interp):
        result = interp.eval_text("aj0[`sym`ts; t; q]")
        # first row matched quote at 09:29:00 -> ts replaced by quote time
        assert result.column("ts").items[0] == 9 * 3600 + 29 * 60

    def test_aj_keeps_left_time(self, interp):
        result = interp.eval_text("aj[`sym`ts; t; q]")
        assert result.column("ts").items[0] == 9 * 3600 + 30 * 60


class TestPrinter:
    def test_atom_suffixes(self):
        assert format_value(QAtom(QType.INT, 5)) == "5i"
        assert format_value(QAtom(QType.SHORT, 5)) == "5h"
        assert format_value(QAtom(QType.BOOLEAN, True)) == "1b"

    def test_symbol_backtick(self):
        assert format_value(QAtom(QType.SYMBOL, "GOOG")) == "`GOOG"

    def test_null_displays(self):
        assert format_value(QAtom(QType.LONG, NULL_LONG)) == "0N"
        assert format_value(QAtom(QType.SYMBOL, "")) == "`"

    def test_date_format(self):
        assert format_atom_raw(QAtom(QType.DATE, 0)) == "2000.01.01"

    def test_time_format(self):
        assert format_atom_raw(QAtom(QType.TIME, 34_200_000)) == "09:30:00.000"

    def test_timestamp_format(self):
        text = format_atom_raw(QAtom(QType.TIMESTAMP, 86_400_000_000_000))
        assert text == "2000.01.02D00:00:00.000000000"

    def test_vector_space_separated(self):
        assert format_value(QVector(QType.LONG, [1, 2, 3])) == "1 2 3"

    def test_singleton_vector_enlist_comma(self):
        assert format_value(QVector(QType.LONG, [7])) == ",7"

    def test_boolean_vector(self):
        assert format_value(QVector(QType.BOOLEAN, [True, False])) == "10b"

    def test_empty_typed_vector(self):
        assert "$()" in format_value(QVector(QType.FLOAT, []))

    def test_string(self):
        assert format_value(QVector(QType.CHAR, list("hi"))) == '"hi"'

    def test_dict_bang(self):
        d = QDict(QVector(QType.SYMBOL, ["a", "b"]), QVector(QType.LONG, [1, 2]))
        assert format_value(d) == "`a`b!1 2"

    def test_table_header_and_rows(self):
        t = QTable(["a", "b"], [QVector(QType.LONG, [1]), QVector(QType.SYMBOL, ["x"])])
        text = format_value(t)
        assert text.splitlines()[0].startswith("a")
        assert "x" in text

    def test_table_truncation(self):
        t = QTable(["a"], [QVector(QType.LONG, list(range(100)))])
        text = format_value(t, max_rows=5)
        assert ".." in text

    def test_roundtrip_through_interpreter(self):
        it = Interpreter()
        for literal in ["1 2 3", "`a`b", '"text"', "1.5", "0N", "09:30:00"]:
            value = it.eval_text(literal)
            again = it.eval_text(format_value(value))
            assert again == value, literal
