"""Direct unit tests for the builtin verb implementations."""

import math

import pytest

from repro.errors import QLengthError, QTypeError
from repro.qlang import builtins as bi
from repro.qlang.qtypes import NULL_LONG, QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QList,
    QTable,
    QVector,
    q_match,
)


def longs(*items):
    return QVector(QType.LONG, list(items))


class TestBroadcasting:
    def test_atom_atom(self):
        result = bi.broadcast_dyad(bi.add, QAtom(QType.LONG, 1), QAtom(QType.LONG, 2))
        assert result == QAtom(QType.LONG, 3)

    def test_atom_over_list(self):
        result = bi.broadcast_dyad(bi.multiply, QAtom(QType.LONG, 2), longs(1, 2, 3))
        assert result == longs(2, 4, 6)

    def test_list_lengths_checked(self):
        with pytest.raises(QLengthError):
            bi.broadcast_dyad(bi.add, longs(1), longs(1, 2))

    def test_general_list_recursion(self):
        nested = QList([longs(1, 2), QAtom(QType.LONG, 10)])
        result = bi.broadcast_dyad(bi.add, QAtom(QType.LONG, 1), nested)
        assert q_match(
            result, QList([longs(2, 3), QAtom(QType.LONG, 11)])
        )

    def test_dict_keeps_keys(self):
        d = QDict(QVector(QType.SYMBOL, ["a"]), longs(5))
        result = bi.broadcast_dyad(bi.add, d, QAtom(QType.LONG, 1))
        assert isinstance(result, QDict)
        assert result.values == longs(6)

    def test_table_broadcast_per_column(self):
        t = QTable(["x", "y"], [longs(1, 2), longs(3, 4)])
        result = bi.broadcast_dyad(bi.add, t, QAtom(QType.LONG, 10))
        assert result.column("x") == longs(11, 12)


class TestArithmetic:
    def test_type_promotion_int_float(self):
        result = bi.add(QAtom(QType.LONG, 1), QAtom(QType.FLOAT, 0.5))
        assert result.qtype == QType.FLOAT
        assert result.value == 1.5

    def test_null_propagation(self):
        result = bi.add(QAtom(QType.LONG, 1), QAtom(QType.LONG, NULL_LONG))
        assert result.is_null

    def test_divide_always_float(self):
        result = bi.divide(QAtom(QType.LONG, 7), QAtom(QType.LONG, 2))
        assert result == QAtom(QType.FLOAT, 3.5)

    def test_divide_by_zero_signed_infinity(self):
        assert bi.divide(QAtom(QType.LONG, 1), QAtom(QType.LONG, 0)).value == math.inf
        assert bi.divide(QAtom(QType.LONG, -1), QAtom(QType.LONG, 0)).value == -math.inf

    def test_temporal_difference_integral(self):
        result = bi.subtract(QAtom(QType.DATE, 10), QAtom(QType.DATE, 3))
        assert result.value == 7
        assert result.qtype.is_integral

    def test_multiply_temporal_rejected(self):
        with pytest.raises(QTypeError):
            bi.multiply(QAtom(QType.DATE, 1), QAtom(QType.DATE, 2))

    def test_xbar_zero_bucket_null(self):
        assert bi.xbar(QAtom(QType.LONG, 0), QAtom(QType.LONG, 7)).is_null

    def test_modulo_sign(self):
        assert bi.modulo(QAtom(QType.LONG, -7), QAtom(QType.LONG, 3)).value == 2


class TestComparisons:
    def test_q_equals_nulls(self):
        assert bi.q_equals(
            QAtom(QType.LONG, NULL_LONG), QAtom(QType.LONG, NULL_LONG)
        ).value is True
        assert bi.q_equals(
            QAtom(QType.LONG, NULL_LONG), QAtom(QType.LONG, 5)
        ).value is False

    def test_cross_type_numeric_equality(self):
        assert bi.q_equals(QAtom(QType.LONG, 5), QAtom(QType.FLOAT, 5.0)).value

    def test_ordering_nulls_first(self):
        assert bi.less(
            QAtom(QType.LONG, NULL_LONG), QAtom(QType.LONG, -999)
        ).value is True

    def test_symbol_vs_number_comparison_raises(self):
        with pytest.raises(QTypeError):
            bi.less(QAtom(QType.SYMBOL, "a"), QAtom(QType.LONG, 1))


class TestAggregatesDirect:
    def test_avg_all_null_nan(self):
        result = bi.q_avg(longs(NULL_LONG, NULL_LONG))
        assert math.isnan(result.value)

    def test_min_all_null(self):
        assert bi.q_min(longs(NULL_LONG)).is_null

    def test_sum_booleans_counts(self):
        result = bi.q_sum(QVector(QType.BOOLEAN, [True, True, False]))
        assert result == QAtom(QType.LONG, 2)

    def test_prd(self):
        assert bi.q_prd(longs(2, 3, 4)).value == 24

    def test_dev_population(self):
        result = bi.q_dev(QVector(QType.FLOAT, [1.0, 3.0]))
        assert result.value == pytest.approx(1.0)


class TestStructural:
    def test_take_cycles_forward(self):
        assert q_match(bi.take(QAtom(QType.LONG, 4), longs(1, 2)), longs(1, 2, 1, 2))

    def test_take_from_empty(self):
        result = bi.take(QAtom(QType.LONG, 3), QVector(QType.LONG, []))
        assert len(result) == 0

    def test_drop_more_than_length(self):
        assert len(bi.drop(QAtom(QType.LONG, 99), longs(1, 2))) == 0

    def test_sublist_pair(self):
        result = bi.sublist(QVector(QType.LONG, [1, 2]), longs(9, 8, 7, 6))
        assert result == longs(8, 7)

    def test_concat_promotes_to_general_list(self):
        result = bi.concat(longs(1), QAtom(QType.SYMBOL, "a"))
        assert isinstance(result, QList)

    def test_concat_tables_checks_columns(self):
        t1 = QTable(["a"], [longs(1)])
        t2 = QTable(["b"], [longs(2)])
        with pytest.raises(QTypeError):
            bi.concat(t1, t2)

    def test_index_at_symbol_column(self):
        t = QTable(["a"], [longs(1, 2)])
        assert bi.index_at(t, QAtom(QType.SYMBOL, "a")) == longs(1, 2)

    def test_index_out_of_range_null(self):
        assert bi.index_at(longs(1, 2), QAtom(QType.LONG, 9)).is_null

    def test_null_row(self):
        t = QTable(["a", "s"], [longs(1), QVector(QType.SYMBOL, ["x"])])
        row = bi.null_row(t)
        values = list(row.values.items)
        assert values[0].is_null
        assert values[1].is_null

    def test_group_preserves_first_appearance(self):
        result = bi.group(QVector(QType.SYMBOL, ["b", "a", "b"]))
        assert result.keys == QVector(QType.SYMBOL, ["b", "a"])

    def test_raze_mixed(self):
        value = QList([longs(1), QAtom(QType.LONG, 2)])
        assert bi.raze(value) == longs(1, 2)

    def test_within_inclusive_bounds(self):
        result = bi.within(longs(3, 7), longs(3, 7))
        assert result == QVector(QType.BOOLEAN, [True, True])

    def test_flip_requires_symbol_keys(self):
        d = QDict(longs(1), QList([longs(2)]))
        with pytest.raises(QTypeError):
            bi.flip(d)
