"""Unit tests for the Q value model and type system."""

import math

import pytest

from repro.errors import QLengthError, QTypeError
from repro.qlang.qtypes import (
    NULL_INT,
    NULL_LONG,
    QType,
    promote,
    sql_type_for,
    type_from_char,
)
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QVector,
    enlist,
    length_of,
    q_match,
    table_from_dict,
    take_value,
    vector_of_atoms,
)


class TestQTypeSystem:
    def test_type_codes_match_kdb(self):
        assert QType.BOOLEAN.code == 1
        assert QType.LONG.code == 7
        assert QType.FLOAT.code == 9
        assert QType.SYMBOL.code == 11
        assert QType.TIMESTAMP.code == 12

    def test_type_chars(self):
        assert QType.LONG.char == "j"
        assert QType.SYMBOL.char == "s"
        assert type_from_char("f") == QType.FLOAT
        with pytest.raises(QTypeError):
            type_from_char("?")

    def test_null_values(self):
        assert QType.LONG.null_value() == NULL_LONG
        assert QType.INT.null_value() == NULL_INT
        assert math.isnan(QType.FLOAT.null_value())
        assert QType.SYMBOL.null_value() == ""

    def test_is_null_nan_aware(self):
        assert QType.FLOAT.is_null(float("nan"))
        assert not QType.FLOAT.is_null(0.0)

    def test_numeric_promotion(self):
        assert promote(QType.SHORT, QType.LONG) == QType.LONG
        assert promote(QType.LONG, QType.FLOAT) == QType.FLOAT
        assert promote(QType.BOOLEAN, QType.INT) == QType.INT

    def test_temporal_promotion(self):
        assert promote(QType.DATE, QType.INT) == QType.DATE
        assert promote(QType.LONG, QType.TIME) == QType.TIME

    def test_incompatible_promotion(self):
        with pytest.raises(QTypeError):
            promote(QType.SYMBOL, QType.LONG)

    def test_sql_mapping(self):
        assert sql_type_for(QType.LONG) == "bigint"
        assert sql_type_for(QType.SYMBOL) == "varchar"
        assert sql_type_for(QType.FLOAT) == "double precision"


class TestAtomsAndVectors:
    def test_atom_equality_includes_type(self):
        assert QAtom(QType.LONG, 1) != QAtom(QType.INT, 1)
        assert QAtom(QType.LONG, 1) == QAtom(QType.LONG, 1)

    def test_nan_atoms_match(self):
        a = QAtom(QType.FLOAT, float("nan"))
        b = QAtom(QType.FLOAT, float("nan"))
        assert a == b  # two-valued logic: null matches null

    def test_atom_hashable_even_nan(self):
        assert hash(QAtom(QType.FLOAT, float("nan"))) == hash(
            QAtom(QType.FLOAT, float("nan"))
        )

    def test_vector_take_out_of_range_gives_null(self):
        vec = QVector(QType.LONG, [10, 20])
        taken = vec.take([0, 5, 1])
        assert taken.items == [10, NULL_LONG, 20]

    def test_vector_iteration_yields_atoms(self):
        vec = QVector(QType.SYMBOL, ["a", "b"])
        atoms = list(vec)
        assert atoms[0] == QAtom(QType.SYMBOL, "a")

    def test_enlist_atom(self):
        assert enlist(QAtom(QType.LONG, 5)) == QVector(QType.LONG, [5])

    def test_enlist_vector_nests(self):
        inner = QVector(QType.LONG, [1, 2])
        outer = enlist(inner)
        assert isinstance(outer, QList)
        assert q_match(outer.items[0], inner)

    def test_vector_of_atoms_homogeneous(self):
        result = vector_of_atoms([QAtom(QType.LONG, 1), QAtom(QType.LONG, 2)])
        assert isinstance(result, QVector)

    def test_vector_of_atoms_mixed_gives_general_list(self):
        result = vector_of_atoms(
            [QAtom(QType.LONG, 1), QAtom(QType.SYMBOL, "x")]
        )
        assert isinstance(result, QList)

    def test_length_of(self):
        assert length_of(QAtom(QType.LONG, 1)) == 1
        assert length_of(QVector(QType.LONG, [1, 2, 3])) == 3


class TestDictsAndTables:
    def test_dict_length_mismatch(self):
        with pytest.raises(QLengthError):
            QDict(QVector(QType.SYMBOL, ["a"]), QVector(QType.LONG, [1, 2]))

    def test_dict_lookup_missing_gives_null(self):
        d = QDict(QVector(QType.SYMBOL, ["a"]), QVector(QType.LONG, [1]))
        missing = d.lookup(QAtom(QType.SYMBOL, "zz"))
        assert missing.is_null

    def test_table_ragged_columns_rejected(self):
        with pytest.raises(QLengthError):
            QTable(
                ["a", "b"],
                [QVector(QType.LONG, [1]), QVector(QType.LONG, [1, 2])],
            )

    def test_table_unknown_column(self):
        t = table_from_dict({"a": QVector(QType.LONG, [1])})
        with pytest.raises(QTypeError):
            t.column("b")

    def test_table_row_is_dict(self):
        t = table_from_dict(
            {"a": QVector(QType.LONG, [1, 2]),
             "b": QVector(QType.SYMBOL, ["x", "y"])}
        )
        row = t.row(1)
        assert isinstance(row, QDict)
        assert row.lookup(QAtom(QType.SYMBOL, "b")) == QAtom(QType.SYMBOL, "y")

    def test_with_column_replace_and_append(self):
        t = table_from_dict({"a": QVector(QType.LONG, [1])})
        replaced = t.with_column("a", QVector(QType.LONG, [9]))
        appended = t.with_column("b", QVector(QType.LONG, [2]))
        assert replaced.column("a").items == [9]
        assert appended.columns == ["a", "b"]
        assert t.columns == ["a"]  # original untouched

    def test_keyed_table_unkey(self):
        kt = QKeyedTable(
            table_from_dict({"k": QVector(QType.SYMBOL, ["a"])}),
            table_from_dict({"v": QVector(QType.LONG, [1])}),
        )
        flat = kt.unkey()
        assert flat.columns == ["k", "v"]

    def test_keyed_table_row_count_check(self):
        with pytest.raises(QLengthError):
            QKeyedTable(
                table_from_dict({"k": QVector(QType.SYMBOL, ["a", "b"])}),
                table_from_dict({"v": QVector(QType.LONG, [1])}),
            )

    def test_q_match_deep(self):
        t1 = table_from_dict({"a": QVector(QType.LONG, [1, NULL_LONG])})
        t2 = table_from_dict({"a": QVector(QType.LONG, [1, NULL_LONG])})
        assert q_match(t1, t2)

    def test_take_value_on_table(self):
        t = table_from_dict({"a": QVector(QType.LONG, [10, 20, 30])})
        subset = take_value(t, [2, 0])
        assert subset.column("a").items == [30, 10]
