"""Unit tests for the lightweight Q parser."""

import pytest

from repro.errors import QSyntaxError
from repro.qlang import ast
from repro.qlang.parser import parse, parse_expression
from repro.qlang.qtypes import QType
from repro.qlang.values import QVector


class TestRightToLeft:
    def test_no_precedence(self):
        node = parse_expression("2*3+4")
        assert isinstance(node, ast.BinOp) and node.op == "*"
        assert isinstance(node.right, ast.BinOp) and node.right.op == "+"

    def test_chain_is_right_associated(self):
        node = parse_expression("1-2-3")
        assert isinstance(node, ast.BinOp)
        assert isinstance(node.right, ast.BinOp)
        assert isinstance(node.left, ast.Literal)

    def test_comparison_binds_like_any_verb(self):
        node = parse_expression("a<b+1")
        assert node.op == "<"
        assert isinstance(node.right, ast.BinOp)


class TestLiterals:
    def test_vector_merge(self):
        node = parse_expression("1 2 3")
        assert node.value == QVector(QType.LONG, [1, 2, 3])

    def test_mixed_run_promotes_to_float(self):
        node = parse_expression("1 2.5 3")
        assert node.value.qtype == QType.FLOAT
        assert node.value.items == [1.0, 2.5, 3.0]

    def test_symbol_vector(self):
        node = parse_expression("`a`b")
        assert node.value == QVector(QType.SYMBOL, ["a", "b"])

    def test_string_literal_is_char_vector(self):
        node = parse_expression('"hi"')
        assert node.value == QVector(QType.CHAR, ["h", "i"])

    def test_empty_list(self):
        node = parse_expression("()")
        assert isinstance(node, ast.Literal)
        assert len(node.value.items) == 0


class TestApplication:
    def test_bracket_apply(self):
        node = parse_expression("f[1;2]")
        assert isinstance(node, ast.Apply)
        assert len(node.args) == 2

    def test_juxtaposition(self):
        node = parse_expression("count trades")
        assert isinstance(node, ast.Apply)
        assert node.func.name == "count"

    def test_niladic_call(self):
        node = parse_expression("f[]")
        assert isinstance(node, ast.Apply)
        assert node.args == []

    def test_projection_elided_arg(self):
        node = parse_expression("f[;2]")
        assert node.args[0] is None
        assert isinstance(node.args[1], ast.Literal)

    def test_indexing_looks_like_application(self):
        node = parse_expression("t[0]")
        assert isinstance(node, ast.Apply)

    def test_chained_application(self):
        node = parse_expression("m[0][1]")
        assert isinstance(node, ast.Apply)
        assert isinstance(node.func, ast.Apply)


class TestAssignment:
    def test_simple_assign(self):
        node = parse_expression("x: 5")
        assert isinstance(node, ast.Assign)
        assert node.target == "x"
        assert node.op is None

    def test_compound_assign(self):
        node = parse_expression("x+:5")
        assert node.op == "+"

    def test_global_assign(self):
        node = parse_expression("x::5")
        assert node.global_scope

    def test_indexed_assign(self):
        node = parse_expression("x[2]: 7")
        assert node.indices and isinstance(node.indices[0], ast.Literal)

    def test_join_assign(self):
        node = parse_expression("x,:5")
        assert node.op == ","


class TestLambdas:
    def test_explicit_params(self):
        node = parse_expression("{[a;b] a+b}")
        assert node.params == ["a", "b"]

    def test_implicit_params_xy(self):
        node = parse_expression("{x+y}")
        assert node.params == ["x", "y"]

    def test_implicit_param_default_x(self):
        node = parse_expression("{1+1}")
        assert node.params == ["x"]

    def test_nested_lambda_params_do_not_leak(self):
        node = parse_expression("{x + {[q] q*z} 2}")
        # z is inside the nested lambda with explicit params: outer sees x only
        assert node.params == ["x"]

    def test_multi_statement_body(self):
        node = parse_expression("{a:1; a+x}")
        assert len(node.body) == 2

    def test_early_return(self):
        node = parse_expression("{:x; 99}")
        assert isinstance(node.body[0], ast.Return)

    def test_source_captured(self):
        node = parse_expression("{x+1}")
        assert node.source == "{x+1}"


class TestTemplates:
    def test_select_star(self):
        node = parse_expression("select from t")
        assert node.kind == "select"
        assert node.columns == []

    def test_select_columns(self):
        node = parse_expression("select a, b from t")
        assert [c.name for c in node.columns] == [None, None]
        assert [c.expr.name for c in node.columns] == ["a", "b"]

    def test_named_column(self):
        node = parse_expression("select total: sum x from t")
        assert node.columns[0].name == "total"

    def test_by_clause(self):
        node = parse_expression("select sum v by sym from t")
        assert len(node.by) == 1

    def test_where_conjuncts_ordered(self):
        node = parse_expression("select from t where a>1, b<2, c=3")
        assert len(node.where) == 3

    def test_comma_inside_brackets_not_a_separator(self):
        node = parse_expression("select from t where sym in f[a,b]")
        assert len(node.where) == 1

    def test_select_with_limit(self):
        node = parse_expression("select[10] from t")
        assert node.limit is not None

    def test_exec(self):
        node = parse_expression("exec Price from t")
        assert node.kind == "exec"

    def test_update(self):
        node = parse_expression("update v: v*2 from t")
        assert node.kind == "update"

    def test_delete_rows(self):
        node = parse_expression("delete from t where x=1")
        assert node.kind == "delete"
        assert node.where

    def test_delete_columns(self):
        node = parse_expression("delete c1 from t")
        assert node.columns[0].expr.name == "c1"

    def test_nested_template_as_source(self):
        node = parse_expression("select from select from t where a>0")
        assert isinstance(node.source, ast.Template)

    def test_template_in_function_body(self):
        node = parse_expression("{select from t where sym=x}")
        assert isinstance(node.body[0], ast.Template)


class TestStructures:
    def test_list_expr(self):
        node = parse_expression("(1;`a;2.5)")
        assert isinstance(node, ast.ListExpr)
        assert len(node.items) == 3

    def test_table_literal(self):
        node = parse_expression("([] a:1 2; b:`x`y)")
        assert isinstance(node, ast.TableExpr)
        assert [name for name, __ in node.columns] == ["a", "b"]

    def test_keyed_table_literal(self):
        node = parse_expression("([k:`a`b] v:1 2)")
        assert [name for name, __ in node.key_columns] == ["k"]

    def test_conditional(self):
        node = parse_expression("$[a;b;c]")
        assert isinstance(node, ast.Cond)
        assert len(node.branches) == 3

    def test_adverb_over(self):
        node = parse_expression("+/ x")
        assert isinstance(node, ast.Apply)
        assert isinstance(node.func, ast.AdverbApply)

    def test_infix_keyword(self):
        node = parse_expression("x in y")
        assert isinstance(node, ast.BinOp)
        assert node.op == "in"

    def test_multi_statements(self):
        program = parse("a:1; b:2; a+b")
        assert len(program.statements) == 3


class TestColumnNameInference:
    def test_plain_name(self):
        assert ast.infer_column_name(ast.Name("Price")) == "Price"

    def test_aggregate_application(self):
        node = parse_expression("select max Price from t")
        assert ast.infer_column_name(node.columns[0].expr) == "Price"

    def test_binop_uses_rightmost(self):
        expr = parse_expression("a+b")
        assert ast.infer_column_name(expr) == "b"

    def test_fallback(self):
        expr = parse_expression("1+2")
        assert ast.infer_column_name(expr) == "x"


class TestErrors:
    def test_unbalanced_bracket(self):
        with pytest.raises(QSyntaxError):
            parse_expression("f[1;2")

    def test_dangling_expression(self):
        with pytest.raises(QSyntaxError):
            parse_expression("select from")
